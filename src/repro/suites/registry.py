"""Suite registry: aggregates the full catalog and enforces its totals.

The paper's dataset covers **97 programs / 267 kernels**; the registry
asserts those exact totals at load time so any catalog edit that breaks
the accounting fails loudly rather than silently shrinking the study.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.errors import SuiteError
from repro.kernels.kernel import Kernel
from repro.suites import (
    amdapp,
    opendwarfs,
    pannotia,
    parboil,
    polybench,
    proxyapps,
    rodinia,
    shoc,
)
from repro.suites.catalog import Suite

#: The paper's headline totals.
EXPECTED_PROGRAMS = 97
EXPECTED_KERNELS = 267

#: Suite modules in canonical (report) order.
_SUITE_MODULES = (
    amdapp,
    opendwarfs,
    pannotia,
    parboil,
    polybench,
    proxyapps,
    rodinia,
    shoc,
)


@lru_cache(maxsize=1)
def all_suites() -> Tuple[Suite, ...]:
    """Build every suite once and validate the catalog totals."""
    suites = tuple(module.make_suite() for module in _SUITE_MODULES)
    names = [s.name for s in suites]
    if len(set(names)) != len(names):
        raise SuiteError(f"duplicate suite names in registry: {names}")
    programs = sum(s.program_count for s in suites)
    kernels = sum(s.kernel_count for s in suites)
    if programs != EXPECTED_PROGRAMS:
        raise SuiteError(
            f"catalog declares {programs} programs; the study requires "
            f"{EXPECTED_PROGRAMS} (per-suite: "
            f"{[(s.name, s.program_count) for s in suites]})"
        )
    if kernels != EXPECTED_KERNELS:
        raise SuiteError(
            f"catalog declares {kernels} kernels; the study requires "
            f"{EXPECTED_KERNELS} (per-suite: "
            f"{[(s.name, s.kernel_count) for s in suites]})"
        )
    return suites


def suite(name: str) -> Suite:
    """Look up one suite by name; raises :class:`SuiteError`."""
    for candidate in all_suites():
        if candidate.name == name:
            return candidate
    raise SuiteError(
        f"unknown suite {name!r}; available: {[s.name for s in all_suites()]}"
    )


def suite_names() -> List[str]:
    """Names of every suite in canonical order."""
    return [s.name for s in all_suites()]


def all_kernels(suite_name: Optional[str] = None) -> List[Kernel]:
    """Every kernel in the catalog (optionally restricted to one suite),
    in canonical order. This ordering defines the kernel axis of every
    :class:`~repro.sweep.dataset.ScalingDataset`."""
    if suite_name is not None:
        return list(suite(suite_name).kernels())
    kernels: List[Kernel] = []
    for s in all_suites():
        kernels.extend(s.kernels())
    return kernels


@lru_cache(maxsize=1)
def _kernel_index() -> Dict[str, Kernel]:
    """``full_name`` -> kernel, built once from the canonical order.

    The query service resolves thousands of kernel references per
    second through :func:`kernel_by_name`; a linear scan over 267
    kernels per lookup is measurable there, a dict hit is not. The
    index also pins object identity: every lookup of one name returns
    the *same* :class:`Kernel` instance, which keeps request payloads
    cheap to compare and hash.
    """
    return {kernel.full_name: kernel for kernel in all_kernels()}


def kernel_by_name(full_name: str) -> Kernel:
    """Look up one kernel by its ``suite/program.kernel`` identifier."""
    kernel = _kernel_index().get(full_name)
    if kernel is None:
        raise SuiteError(f"unknown kernel {full_name!r}")
    return kernel


def catalog_totals() -> Dict[str, Tuple[int, int]]:
    """Per-suite (programs, kernels) plus a ``total`` row."""
    totals = {
        s.name: (s.program_count, s.kernel_count) for s in all_suites()
    }
    totals["total"] = (
        sum(p for p, _ in totals.values()),
        sum(k for _, k in totals.values()),
    )
    return totals
