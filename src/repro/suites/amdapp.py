"""AMD APP SDK-like suite: 16 programs, 28 kernels.

The APP SDK samples are small, regular, well-tuned demonstration
codes: dense math (matmul, DCT, NBody), classic parallel primitives
(scan, reduction, radix sort) and a few financial/Monte-Carlo codes.
Most are compute- or LDS-bound and scale cleanly; the primitives have
multi-phase launches whose small upper-tree phases plateau.
"""

from __future__ import annotations

from repro.kernels.archetypes import (
    atomic_kernel,
    cache_resident_kernel,
    compute_kernel,
    divergent_kernel,
    latency_kernel,
    lds_kernel,
    limited_parallelism_kernel,
    streaming_kernel,
    tiny_kernel,
)
from repro.suites.catalog import ProgramBuilder, Suite

SUITE = "amdapp"


#: One-line description of the computation each program models.
DESCRIPTIONS = {
    'binarysearch': (
        'Sorted-array binary search: a pure pointer-chase with one '
        'dependent load per step. '
    ),
    'bitonicsort': (
        'Bitonic sorting network: global strided exchange stages '
        'and LDS-resident local stages. '
    ),
    'blackscholes': (
        'Black-Scholes European option pricing: heavy '
        'transcendental math per option. '
    ),
    'boxfilter': (
        'Separable box blur: horizontal and vertical LDS-tiled '
        'passes over an image. '
    ),
    'dct': (
        '8x8 block discrete cosine transform and its inverse, '
        'LDS-tiled. '
    ),
    'fastwalsh': (
        'Fast Walsh-Hadamard transform: global butterfly stages '
        'plus an LDS-resident tail. '
    ),
    'floydwarshall': (
        'All-pairs shortest paths: full-matrix relaxation passes '
        'and a cache-blocked variant. '
    ),
    'histogram': (
        '256-bin histogram: atomic binning over the input plus a '
        'small merge of partial histograms. '
    ),
    'mandelbrot': (
        'Mandelbrot set escape-time iteration: divergent, '
        'compute-dominated per-pixel loops. '
    ),
    'matrixmul': (
        'Dense SGEMM: LDS-tiled implementation and a naive '
        'global-memory-bound variant. '
    ),
    'matrixtranspose': (
        'Out-of-place matrix transpose staged through LDS for '
        'coalesced stores. '
    ),
    'montecarlo': (
        'Monte-Carlo Asian option pricing: long independent random '
        'walks plus a small reduction. '
    ),
    'nbody': (
        'All-pairs N-body gravity: O(N^2) force accumulation, the '
        'classic compute-bound showcase. '
    ),
    'radixsort': (
        'Radix sort passes: digit histogram (atomics), bucket scan '
        'and scatter permutation. '
    ),
    'reduction': (
        'Tree reduction over a large array: one bandwidth-bound '
        'pass per level. '
    ),
    'scan': (
        'Blelloch prefix sum: per-block scans, a single-workgroup '
        'top-level scan and offset addition. '
    ),
}


def make_suite() -> Suite:
    """Build the AMD APP SDK-like catalog (16 programs / 28 kernels)."""
    b = ProgramBuilder(SUITE, DESCRIPTIONS)

    b.program(
        "binarysearch",
        latency_kernel("binarysearch", "binary_search", suite=SUITE,
                       dependent_fraction=0.85, load_bytes=28.0,
                       memory_parallelism=1.0, global_size=1 << 18),
    )
    b.program(
        "bitonicsort",
        streaming_kernel("bitonicsort", "bitonic_global", suite=SUITE,
                         valu_ops=26.0, load_bytes=8.0, store_bytes=8.0,
                         coalescing=0.55),
        lds_kernel("bitonicsort", "bitonic_local", suite=SUITE,
                   valu_ops=130.0, lds_bytes=64.0, barriers=16.0),
    )
    b.program(
        "blackscholes",
        compute_kernel("blackscholes", "black_scholes", suite=SUITE,
                       valu_ops=680.0, load_bytes=20.0, store_bytes=8.0,
                       global_size=1 << 22),
    )
    b.program(
        "boxfilter",
        lds_kernel("boxfilter", "box_horizontal", suite=SUITE,
                   valu_ops=150.0, lds_bytes=56.0, barriers=4.0),
        lds_kernel("boxfilter", "box_vertical", suite=SUITE,
                   valu_ops=150.0, lds_bytes=56.0, barriers=4.0,
                   load_bytes=16.0),
    )
    b.program(
        "dct",
        lds_kernel("dct", "dct8x8", suite=SUITE, valu_ops=360.0,
                   lds_bytes=64.0, barriers=3.0),
        lds_kernel("dct", "idct8x8", suite=SUITE, valu_ops=360.0,
                   lds_bytes=64.0, barriers=3.0),
    )
    b.program(
        "fastwalsh",
        streaming_kernel("fastwalsh", "fwt_global", suite=SUITE,
                         valu_ops=20.0, load_bytes=16.0, store_bytes=16.0,
                         coalescing=0.6),
        lds_kernel("fastwalsh", "fwt_local", suite=SUITE, valu_ops=200.0,
                   lds_bytes=72.0, barriers=11.0),
    )
    b.program(
        "floydwarshall",
        streaming_kernel("floydwarshall", "fw_pass", suite=SUITE,
                         valu_ops=16.0, load_bytes=24.0, store_bytes=8.0,
                         footprint_mib=16.0),
        cache_resident_kernel("floydwarshall", "fw_blocked", suite=SUITE,
                              valu_ops=220.0, load_bytes=40.0,
                              footprint_kib=768.0),
    )
    b.program(
        "histogram",
        atomic_kernel("histogram", "histogram256", suite=SUITE,
                      atomic_ops=1.0, contention=0.3, valu_ops=24.0,
                      global_size=1 << 22),
        limited_parallelism_kernel("histogram", "merge_bins", suite=SUITE,
                                   num_workgroups=16, valu_ops=80.0),
    )
    b.program(
        "mandelbrot",
        divergent_kernel("mandelbrot", "mandelbrot", suite=SUITE,
                         valu_ops=3200.0, simd_efficiency=0.55,
                         load_bytes=4.0, global_size=1 << 21),
    )
    b.program(
        "matrixmul",
        lds_kernel("matrixmul", "mmul_tiled", suite=SUITE, valu_ops=1024.0,
                   lds_bytes=128.0, barriers=16.0, load_bytes=32.0,
                   lds_per_workgroup=32768, global_size=1 << 20),
        streaming_kernel("matrixmul", "mmul_naive", suite=SUITE,
                         valu_ops=512.0, load_bytes=2048.0,
                         store_bytes=4.0, coalescing=0.7,
                         global_size=1 << 18),
    )
    b.program(
        "matrixtranspose",
        streaming_kernel("matrixtranspose", "transpose_lds", suite=SUITE,
                         valu_ops=8.0, load_bytes=4.0, store_bytes=4.0,
                         coalescing=0.9),
    )
    b.program(
        "montecarlo",
        compute_kernel("montecarlo", "mc_simulation", suite=SUITE,
                       valu_ops=4100.0, load_bytes=12.0,
                       global_size=1 << 19),
        limited_parallelism_kernel("montecarlo", "mc_reduce", suite=SUITE,
                                   num_workgroups=32, valu_ops=120.0),
    )
    b.program(
        "nbody",
        compute_kernel("nbody", "nbody_sim", suite=SUITE, valu_ops=9800.0,
                       load_bytes=32.0, store_bytes=16.0,
                       global_size=1 << 16, vgprs=64),
    )
    b.program(
        "radixsort",
        atomic_kernel("radixsort", "histogram_pass", suite=SUITE,
                      atomic_ops=1.0, contention=0.15, valu_ops=30.0),
        limited_parallelism_kernel("radixsort", "scan_buckets", suite=SUITE,
                                   num_workgroups=16, valu_ops=90.0),
        streaming_kernel("radixsort", "permute", suite=SUITE,
                         valu_ops=18.0, load_bytes=8.0, store_bytes=8.0,
                         coalescing=0.3),
    )
    b.program(
        "reduction",
        streaming_kernel("reduction", "reduce_stage", suite=SUITE,
                         valu_ops=12.0, load_bytes=16.0, store_bytes=0.1,
                         coalescing=0.95),
    )
    b.program(
        "scan",
        streaming_kernel("scan", "scan_blocks", suite=SUITE, valu_ops=22.0,
                         load_bytes=8.0, store_bytes=8.0),
        tiny_kernel("scan", "scan_top", suite=SUITE, num_workgroups=1,
                    workgroup_size=256),
        streaming_kernel("scan", "add_offsets", suite=SUITE, valu_ops=6.0,
                         load_bytes=8.0, store_bytes=4.0),
    )
    return b.finish(
        description="Vendor SDK samples: regular, tuned demonstration "
        "kernels, mostly compute/LDS bound."
    )
