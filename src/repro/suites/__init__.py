"""The 97-program / 267-kernel synthetic benchmark catalog.

One module per suite; :mod:`repro.suites.registry` aggregates them and
enforces the paper's totals. Import the registry lazily-friendly
helpers from here::

    from repro.suites import all_kernels, all_suites, suite
"""

from repro.suites.catalog import (
    Program,
    ProgramBuilder,
    Suite,
    catalog_summary,
)

__all__ = [
    "Program",
    "ProgramBuilder",
    "Suite",
    "all_kernels",
    "all_suites",
    "catalog_summary",
    "catalog_totals",
    "kernel_by_name",
    "suite",
    "suite_names",
]


def __getattr__(name):
    # registry imports the suite modules, which import this package;
    # resolving its names lazily avoids the circular import.
    if name in (
        "all_suites",
        "all_kernels",
        "suite",
        "suite_names",
        "kernel_by_name",
        "catalog_totals",
    ):
        from repro.suites import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
