"""OpenDwarfs-like suite: 12 programs, 30 kernels.

OpenDwarfs implements Berkeley's "13 dwarfs" taxonomy in OpenCL:
one representative per computational pattern, from dense/sparse linear
algebra through dynamic programming, branch-and-bound and graphical
models. Coverage is deliberately broad, so this suite contributes at
least one kernel to nearly every scaling class.
"""

from __future__ import annotations

from repro.kernels.archetypes import (
    atomic_kernel,
    balanced_kernel,
    compute_kernel,
    divergent_kernel,
    latency_kernel,
    lds_kernel,
    limited_parallelism_kernel,
    streaming_kernel,
    thrashing_kernel,
    tiny_kernel,
)
from repro.suites.catalog import ProgramBuilder, Suite

SUITE = "opendwarfs"


#: One-line description of the computation each program models.
DESCRIPTIONS = {
    'astar': (
        'A* path search (branch-and-bound dwarf): node expansion '
        'chases and contended open-list updates. '
    ),
    'bwa_hmm': (
        'Hidden-Markov-model forward/backward (graphical-models '
        'dwarf) with per-step scaling. '
    ),
    'crc': (
        'Cyclic redundancy check (combinational-logic dwarf): '
        'table-driven streaming over messages. '
    ),
    'fft': (
        'Radix-4 FFT (spectral dwarf): butterflies, bit-reversal '
        'shuffle and twiddle application. '
    ),
    'gem': (
        'Molecular electrostatics (N-body dwarf): dense pairwise '
        'potential evaluation. '
    ),
    'kmeans': (
        'K-means (dense-linear-algebra/MapReduce dwarf): assignment '
        'streaming plus atomic mean updates. '
    ),
    'lud': (
        'LU decomposition (dense dwarf): diagonal, perimeter and '
        'interior phases. '
    ),
    'nqueens': (
        'N-queens backtracking (branch-and-bound dwarf): deeply '
        'divergent per-board searches. '
    ),
    'spmv': (
        'Sparse matrix-vector product (sparse dwarf) with '
        'cache-straining CSR rows. '
    ),
    'srad': (
        'Speckle-reducing anisotropic diffusion (structured-grid '
        'dwarf). '
    ),
    'swat': (
        'Smith-Waterman alignment (dynamic-programming dwarf): '
        'anti-diagonal waves with LDS staging. '
    ),
    'tdm': (
        'Time-delay neural classification (unstructured-grid '
        'dwarf): divergent classification plus distances. '
    ),
}


def make_suite() -> Suite:
    """Build the OpenDwarfs-like catalog (12 programs / 30 kernels)."""
    b = ProgramBuilder(SUITE, DESCRIPTIONS)

    b.program(
        "astar",
        latency_kernel("astar", "expand_nodes", suite=SUITE,
                       dependent_fraction=0.8, load_bytes=56.0,
                       simd_efficiency=0.4, global_size=1 << 18),
        atomic_kernel("astar", "update_open_list", suite=SUITE,
                      atomic_ops=1.0, contention=0.5, valu_ops=40.0,
                      global_size=1 << 18),
    )
    b.program(
        "bwa_hmm",
        balanced_kernel("bwa_hmm", "forward_step", suite=SUITE,
                        valu_ops=520.0, load_bytes=44.0),
        balanced_kernel("bwa_hmm", "backward_step", suite=SUITE,
                        valu_ops=500.0, load_bytes=44.0),
        limited_parallelism_kernel("bwa_hmm", "scale_alpha", suite=SUITE,
                                   num_workgroups=24, valu_ops=80.0),
    )
    b.program(
        "crc",
        streaming_kernel("crc", "crc_compute", suite=SUITE, valu_ops=48.0,
                         load_bytes=16.0, store_bytes=0.5,
                         coalescing=0.95, global_size=1 << 22),
        tiny_kernel("crc", "crc_combine", suite=SUITE, num_workgroups=4),
    )
    b.program(
        "fft",
        lds_kernel("fft", "fft_radix4", suite=SUITE, valu_ops=380.0,
                   lds_bytes=88.0, barriers=8.0, load_bytes=32.0),
        streaming_kernel("fft", "bit_reverse", suite=SUITE, valu_ops=14.0,
                         load_bytes=8.0, store_bytes=8.0, coalescing=0.4),
        balanced_kernel("fft", "twiddle_apply", suite=SUITE,
                        valu_ops=260.0, load_bytes=36.0),
    )
    b.program(
        "gem",
        compute_kernel("gem", "electrostatics", suite=SUITE,
                       valu_ops=5400.0, load_bytes=40.0,
                       global_size=1 << 17, vgprs=68),
        tiny_kernel("gem", "setup_grid", suite=SUITE, num_workgroups=20),
    )
    b.program(
        "kmeans",
        streaming_kernel("kmeans", "assign_points", suite=SUITE,
                         valu_ops=130.0, load_bytes=36.0, store_bytes=4.0,
                         footprint_mib=96.0),
        atomic_kernel("kmeans", "update_means", suite=SUITE,
                      atomic_ops=2.0, contention=0.35, valu_ops=36.0),
    )
    b.program(
        "lud",
        tiny_kernel("lud", "diagonal_block", suite=SUITE, num_workgroups=1,
                    workgroup_size=256, launch_overhead_us=9.0),
        limited_parallelism_kernel("lud", "perimeter_blocks", suite=SUITE,
                                   num_workgroups=14, valu_ops=380.0),
        lds_kernel("lud", "interior_blocks", suite=SUITE, valu_ops=320.0,
                   lds_bytes=64.0, barriers=4.0, global_size=1 << 18),
    )
    b.program(
        "nqueens",
        divergent_kernel("nqueens", "solve_boards", suite=SUITE,
                         valu_ops=4400.0, simd_efficiency=0.25,
                         load_bytes=8.0, global_size=1 << 18),
    )
    b.program(
        "spmv",
        thrashing_kernel("spmv", "csr_kernel", suite=SUITE, valu_ops=56.0,
                         load_bytes=52.0, footprint_mib=26.0,
                         l2_reuse=0.82, row_sensitivity=0.7),
        tiny_kernel("spmv", "zero_y", suite=SUITE, num_workgroups=44,
                    valu_ops=160.0),
    )
    b.program(
        "srad",
        streaming_kernel("srad", "srad_main", suite=SUITE, valu_ops=96.0,
                         load_bytes=40.0, store_bytes=12.0),
        streaming_kernel("srad", "srad_diffusion", suite=SUITE,
                         valu_ops=84.0, load_bytes=36.0, store_bytes=8.0),
        atomic_kernel("srad", "srad_reduce", suite=SUITE, atomic_ops=0.5,
                      contention=0.25, valu_ops=26.0),
    )
    b.program(
        "swat",
        lds_kernel("swat", "sw_diag", suite=SUITE, valu_ops=240.0,
                   lds_bytes=72.0, barriers=18.0, global_size=1 << 18),
        limited_parallelism_kernel("swat", "sw_boundary", suite=SUITE,
                                   num_workgroups=10, valu_ops=200.0,
                                   workgroup_size=64),
        streaming_kernel("swat", "trace_back_prep", suite=SUITE,
                         valu_ops=18.0, load_bytes=16.0, store_bytes=8.0),
        tiny_kernel("swat", "init_matrix", suite=SUITE, num_workgroups=32,
                    valu_ops=170.0),
    )
    b.program(
        "tdm",
        divergent_kernel("tdm", "classify_points", suite=SUITE,
                         valu_ops=900.0, simd_efficiency=0.5,
                         load_bytes=28.0),
        streaming_kernel("tdm", "distance_matrix", suite=SUITE,
                         valu_ops=64.0, load_bytes=44.0, store_bytes=8.0),
        tiny_kernel("tdm", "finalize_labels", suite=SUITE,
                    num_workgroups=36, workgroup_size=128),
    )
    return b.finish(
        description="Berkeley-dwarf coverage suite: one representative "
        "pattern per dwarf, broad behavioural spread."
    )
