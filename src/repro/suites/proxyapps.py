"""Exascale proxy-app-like suite: 8 programs, 19 kernels.

Miniature versions of production HPC codes (hydrodynamics, molecular
dynamics, finite elements, neutron transport). Unlike the 2009-era
academic suites, proxy apps ship with inputs meant to saturate large
machines — their kernels are the catalog's best-scaling population and
the counterpoint in the paper's benchmark-scalability critique.
"""

from __future__ import annotations

from repro.kernels.archetypes import (
    atomic_kernel,
    balanced_kernel,
    compute_kernel,
    latency_kernel,
    lds_kernel,
    streaming_kernel,
    tiny_kernel,
)
from repro.suites.catalog import ProgramBuilder, Suite

SUITE = "proxyapps"


#: One-line description of the computation each program models.
DESCRIPTIONS = {
    'lulesh': (
        'Shock hydrodynamics proxy (LLNL): element force, stress '
        'integration, EOS and volume updates. '
    ),
    'comd': (
        'Classical molecular-dynamics proxy: EAM force evaluation, '
        'neighbour lists and atom advancement. '
    ),
    'minife': (
        'Implicit finite-element proxy: CRS SpMV and dot products '
        'inside a CG solve. '
    ),
    'xsbench': (
        'Monte-Carlo neutron-transport macroscopic cross-section '
        'lookup: the canonical random-walk table chase. '
    ),
    'hpgmg': (
        'High-performance geometric multigrid proxy: Chebyshev '
        'smoother, residual and coarse restriction. '
    ),
    'snap': (
        'Discrete-ordinates neutral-particle transport proxy: KBA '
        'sweep planes and flux updates. '
    ),
    'nekbone': (
        'Spectral-element proxy (Nek5000 kernel): local gradient '
        'operators and vector AXPBY glue. '
    ),
    'miniaero': (
        'Unstructured compressible-flow proxy: face-flux '
        'computation and atomic cell-residual gather. '
    ),
}


def make_suite() -> Suite:
    """Build the proxy-app-like catalog (8 programs / 19 kernels)."""
    b = ProgramBuilder(SUITE, DESCRIPTIONS)

    b.program(
        "lulesh",
        balanced_kernel("lulesh", "calc_force_elems", suite=SUITE,
                        valu_ops=820.0, load_bytes=72.0, store_bytes=24.0,
                        global_size=1 << 21),
        streaming_kernel("lulesh", "integrate_stress", suite=SUITE,
                         valu_ops=110.0, load_bytes=64.0, store_bytes=24.0,
                         global_size=1 << 21),
        compute_kernel("lulesh", "calc_eos", suite=SUITE, valu_ops=1900.0,
                       load_bytes=40.0, global_size=1 << 21),
        streaming_kernel("lulesh", "update_volumes", suite=SUITE,
                         valu_ops=30.0, load_bytes=28.0, store_bytes=12.0,
                         global_size=1 << 21),
    )
    b.program(
        "comd",
        compute_kernel("comd", "eam_force", suite=SUITE, valu_ops=3800.0,
                       load_bytes=52.0, global_size=1 << 19, vgprs=80),
        latency_kernel("comd", "neighbor_list", suite=SUITE,
                       dependent_fraction=0.55, load_bytes=60.0,
                       memory_parallelism=2.5, global_size=1 << 19),
        streaming_kernel("comd", "advance_atoms", suite=SUITE,
                         valu_ops=34.0, load_bytes=36.0, store_bytes=36.0,
                         global_size=1 << 19),
    )
    b.program(
        "minife",
        streaming_kernel("minife", "spmv_crs", suite=SUITE, valu_ops=52.0,
                         load_bytes=56.0, store_bytes=4.0,
                         coalescing=0.7, footprint_mib=512.0,
                         global_size=1 << 22),
        streaming_kernel("minife", "dot_product", suite=SUITE,
                         valu_ops=10.0, load_bytes=16.0, store_bytes=0.1,
                         coalescing=0.95, global_size=1 << 22),
    )
    b.program(
        "xsbench",
        latency_kernel("xsbench", "macro_xs_lookup", suite=SUITE,
                       dependent_fraction=0.7, load_bytes=88.0,
                       memory_parallelism=2.0, global_size=1 << 21,
                       simd_efficiency=0.6),
    )
    b.program(
        "hpgmg",
        streaming_kernel("hpgmg", "smooth_chebyshev", suite=SUITE,
                         valu_ops=120.0, load_bytes=64.0, store_bytes=8.0,
                         footprint_mib=768.0, global_size=1 << 22),
        streaming_kernel("hpgmg", "residual", suite=SUITE, valu_ops=88.0,
                         load_bytes=58.0, store_bytes=8.0,
                         global_size=1 << 22),
        tiny_kernel("hpgmg", "restrict_coarse", suite=SUITE,
                    num_workgroups=24),
    )
    b.program(
        "snap",
        balanced_kernel("snap", "sweep_plane", suite=SUITE, valu_ops=640.0,
                        load_bytes=60.0, global_size=1 << 20),
        streaming_kernel("snap", "flux_update", suite=SUITE, valu_ops=48.0,
                         load_bytes=44.0, store_bytes=20.0,
                         global_size=1 << 20),
    )
    b.program(
        "nekbone",
        lds_kernel("nekbone", "local_grad", suite=SUITE, valu_ops=680.0,
                   lds_bytes=112.0, barriers=10.0, load_bytes=40.0,
                   global_size=1 << 20),
        streaming_kernel("nekbone", "axpby", suite=SUITE, valu_ops=8.0,
                         load_bytes=16.0, store_bytes=8.0,
                         coalescing=0.97, global_size=1 << 23),
    )
    b.program(
        "miniaero",
        balanced_kernel("miniaero", "compute_face_flux", suite=SUITE,
                        valu_ops=740.0, load_bytes=68.0, store_bytes=20.0,
                        global_size=1 << 21),
        atomic_kernel("miniaero", "gather_cell_residual", suite=SUITE,
                      atomic_ops=1.0, contention=0.1, valu_ops=60.0,
                      global_size=1 << 21),
    )
    return b.finish(
        description="Exascale proxy apps with modern input scales: the "
        "best-scaling population in the catalog."
    )
