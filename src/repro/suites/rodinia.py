"""Rodinia-like suite: 18 programs, 55 kernels.

Rodinia targets heterogeneous "dwarf" workloads. Its default inputs
were sized for ~2009 GPUs, so several programs expose little
parallelism on a 44-CU device — Rodinia is a major contributor to the
paper's finding that existing suites "do not scale to modern GPU
sizes". Archetype assignments mirror the published behaviour of each
program (e.g. ``nw``'s anti-diagonal wavefronts launch tiny grids;
``bfs`` is an irregular, latency-bound graph walk; ``lavaMD`` is dense
short-range force computation).
"""

from __future__ import annotations

from repro.kernels.archetypes import (
    atomic_kernel,
    balanced_kernel,
    compute_kernel,
    divergent_kernel,
    latency_kernel,
    lds_kernel,
    limited_parallelism_kernel,
    streaming_kernel,
    tiny_kernel,
)
from repro.suites.catalog import ProgramBuilder, Suite

SUITE = "rodinia"


#: One-line description of the computation each program models.
DESCRIPTIONS = {
    'backprop': (
        'Neural-network training: weight-layer forward pass and '
        'back-propagated weight adjustment. '
    ),
    'bfs': (
        'Level-synchronous breadth-first search over an '
        'unstructured graph (frontier expansion + level update). '
    ),
    'b+tree': (
        'Database index operations: point (findK) and range '
        '(findRangeK) queries over a GPU-resident B+ tree. '
    ),
    'cfd': (
        "Unstructured-grid Euler solver (Rodinia's CFD): flux "
        'computation, step factors and explicit time stepping. '
    ),
    'dwt2d': (
        '2-D discrete wavelet transform for image compression: '
        'forward/inverse 5/3 lifting plus component shuffles. '
    ),
    'gaussian': (
        'Gaussian elimination with per-row pivot kernels launched '
        'once per elimination step. '
    ),
    'heartwall': (
        'Ultrasound heart-wall tracking: template matching over '
        'frames with data-dependent branching. '
    ),
    'hotspot': (
        'Thermal simulation of a processor floorplan: iterative 2-D '
        'stencil with LDS tiling. '
    ),
    'hybridsort': (
        'Hybrid bucket/merge sort: bucket counting (atomics), '
        'prefix offsets and LDS merge phases. '
    ),
    'kmeans': (
        'K-means clustering: point-to-centroid distance streaming '
        'plus atomic centroid accumulation. '
    ),
    'lavamd': (
        'Molecular dynamics within a 3-D box neighbourhood: dense '
        'short-range force computation. '
    ),
    'leukocyte': (
        'White-blood-cell tracking in video: GICOV score (compute), '
        'dilation (streaming) and MGVF solver (LDS). '
    ),
    'lud': (
        'Blocked LU decomposition: tiny diagonal factorisation, '
        'perimeter updates and tiled interior updates. '
    ),
    'myocyte': (
        'Cardiac myocyte ODE system: one large serial integration '
        'exposing almost no data parallelism. '
    ),
    'nw': (
        'Needleman-Wunsch sequence alignment: anti-diagonal '
        'wavefronts of at most a few workgroups. '
    ),
    'particlefilter': (
        'Particle-filter object tracking: divergent likelihoods, '
        'atomic weight normalisation, index search. '
    ),
    'pathfinder': (
        'Dynamic-programming grid path search: row-by-row LDS '
        'relaxation with per-row barriers. '
    ),
    'srad': (
        'Speckle-reducing anisotropic diffusion on ultrasound '
        'images: two stencil passes plus reductions. '
    ),
}


def make_suite() -> Suite:
    """Build the Rodinia-like catalog (18 programs / 55 kernels)."""
    b = ProgramBuilder(SUITE, DESCRIPTIONS)

    b.program(
        "backprop",
        lds_kernel("backprop", "layerforward", suite=SUITE,
                   valu_ops=220.0, lds_bytes=64.0, global_size=1 << 20),
        streaming_kernel("backprop", "adjust_weights", suite=SUITE,
                         valu_ops=40.0, load_bytes=20.0, store_bytes=8.0),
    )
    b.program(
        "bfs",
        latency_kernel("bfs", "kernel1", suite=SUITE,
                       dependent_fraction=0.9, load_bytes=40.0,
                       global_size=1 << 20, simd_efficiency=0.45),
        latency_kernel("bfs", "kernel2", suite=SUITE,
                       dependent_fraction=0.5, load_bytes=12.0,
                       valu_ops=20.0, global_size=1 << 20),
    )
    b.program(
        "b+tree",
        latency_kernel("b+tree", "findK", suite=SUITE,
                       dependent_fraction=0.95, load_bytes=64.0,
                       memory_parallelism=1.0, global_size=1 << 16),
        latency_kernel("b+tree", "findRangeK", suite=SUITE,
                       dependent_fraction=0.9, load_bytes=96.0,
                       memory_parallelism=1.2, global_size=1 << 16),
    )
    b.program(
        "cfd",
        streaming_kernel("cfd", "compute_step_factor", suite=SUITE,
                         valu_ops=60.0, load_bytes=36.0, store_bytes=4.0),
        balanced_kernel("cfd", "compute_flux", suite=SUITE,
                        valu_ops=760.0, load_bytes=56.0, store_bytes=20.0),
        streaming_kernel("cfd", "time_step", suite=SUITE,
                         valu_ops=24.0, load_bytes=28.0, store_bytes=12.0),
        streaming_kernel("cfd", "initialize_variables", suite=SUITE,
                         valu_ops=8.0, load_bytes=4.0, store_bytes=20.0),
        streaming_kernel("cfd", "memset_kernel", suite=SUITE,
                         valu_ops=2.0, load_bytes=0.1, store_bytes=16.0),
        balanced_kernel("cfd", "compute_flux_contribution", suite=SUITE,
                        valu_ops=420.0, load_bytes=48.0),
    )
    b.program(
        "dwt2d",
        lds_kernel("dwt2d", "fdwt53", suite=SUITE, valu_ops=180.0,
                   lds_bytes=72.0, barriers=12.0),
        lds_kernel("dwt2d", "rdwt53", suite=SUITE, valu_ops=170.0,
                   lds_bytes=72.0, barriers=12.0),
        streaming_kernel("dwt2d", "c_copy_src_to_component", suite=SUITE,
                         valu_ops=6.0, load_bytes=4.0, store_bytes=12.0),
        streaming_kernel("dwt2d", "copy_to_output", suite=SUITE,
                         valu_ops=6.0, load_bytes=12.0, store_bytes=4.0),
        tiny_kernel("dwt2d", "init_buffers", suite=SUITE,
                    num_workgroups=28),
    )
    b.program(
        "gaussian",
        tiny_kernel("gaussian", "fan1", suite=SUITE, num_workgroups=4,
                    workgroup_size=256, launch_overhead_us=10.0),
        limited_parallelism_kernel("gaussian", "fan2", suite=SUITE,
                                   num_workgroups=16, valu_ops=30.0,
                                   load_bytes=24.0),
    )
    b.program(
        "heartwall",
        divergent_kernel("heartwall", "track", suite=SUITE,
                         valu_ops=2600.0, simd_efficiency=0.4,
                         global_size=1 << 18),
        limited_parallelism_kernel("heartwall", "reduce_rows", suite=SUITE,
                                   num_workgroups=51, valu_ops=180.0),
        tiny_kernel("heartwall", "setup_frame", suite=SUITE,
                    num_workgroups=16),
    )
    b.program(
        "hotspot",
        lds_kernel("hotspot", "calculate_temp", suite=SUITE,
                   valu_ops=260.0, lds_bytes=80.0, load_bytes=16.0,
                   barriers=6.0, global_size=1 << 20),
    )
    b.program(
        "hybridsort",
        atomic_kernel("hybridsort", "bucketcount", suite=SUITE,
                      atomic_ops=1.0, contention=0.12),
        limited_parallelism_kernel("hybridsort", "bucketprefixoffset",
                                   suite=SUITE, num_workgroups=8,
                                   valu_ops=60.0),
        streaming_kernel("hybridsort", "bucketsort", suite=SUITE,
                         valu_ops=30.0, load_bytes=8.0, store_bytes=8.0,
                         coalescing=0.35),
        lds_kernel("hybridsort", "mergesort_first", suite=SUITE,
                   valu_ops=140.0, lds_bytes=48.0, barriers=9.0),
        lds_kernel("hybridsort", "mergesort_pass", suite=SUITE,
                   valu_ops=160.0, lds_bytes=56.0, barriers=10.0),
        streaming_kernel("hybridsort", "mergepack", suite=SUITE,
                         valu_ops=12.0, load_bytes=8.0, store_bytes=8.0),
    )
    b.program(
        "kmeans",
        streaming_kernel("kmeans", "kmeans_kernel_c", suite=SUITE,
                         valu_ops=140.0, load_bytes=34.0, store_bytes=4.0,
                         footprint_mib=64.0),
        streaming_kernel("kmeans", "kmeans_swap", suite=SUITE,
                         valu_ops=4.0, load_bytes=8.0, store_bytes=8.0),
        atomic_kernel("kmeans", "update_centroids", suite=SUITE,
                      atomic_ops=2.0, contention=0.3, valu_ops=40.0),
    )
    b.program(
        "lavamd",
        compute_kernel("lavamd", "kernel_gpu_opencl", suite=SUITE,
                       valu_ops=5200.0, load_bytes=56.0,
                       global_size=1 << 17, vgprs=84),
    )
    b.program(
        "leukocyte",
        compute_kernel("leukocyte", "gicov", suite=SUITE,
                       valu_ops=1900.0, load_bytes=24.0,
                       global_size=1 << 16),
        streaming_kernel("leukocyte", "dilate", suite=SUITE,
                         valu_ops=90.0, load_bytes=36.0,
                         global_size=1 << 16),
        lds_kernel("leukocyte", "mgvf", suite=SUITE, valu_ops=420.0,
                   lds_bytes=72.0, barriers=14.0, global_size=1 << 16),
        tiny_kernel("leukocyte", "init_matrices", suite=SUITE,
                    num_workgroups=36),
    )
    b.program(
        "lud",
        tiny_kernel("lud", "lud_diagonal", suite=SUITE, num_workgroups=1,
                    workgroup_size=256, launch_overhead_us=9.0),
        limited_parallelism_kernel("lud", "lud_perimeter", suite=SUITE,
                                   num_workgroups=15, valu_ops=420.0),
        lds_kernel("lud", "lud_internal", suite=SUITE, valu_ops=300.0,
                   lds_bytes=64.0, barriers=4.0, global_size=1 << 18),
    )
    b.program(
        "myocyte",
        limited_parallelism_kernel("myocyte", "solver_embedded",
                                   suite=SUITE, num_workgroups=2,
                                   valu_ops=5600.0, workgroup_size=128),
        tiny_kernel("myocyte", "solver_setup", suite=SUITE,
                    num_workgroups=2, workgroup_size=128),
    )
    b.program(
        "nw",
        limited_parallelism_kernel("nw", "needle_1", suite=SUITE,
                                   num_workgroups=8, valu_ops=260.0,
                                   workgroup_size=64),
        limited_parallelism_kernel("nw", "needle_2", suite=SUITE,
                                   num_workgroups=8, valu_ops=260.0,
                                   workgroup_size=64),
    )
    b.program(
        "particlefilter",
        divergent_kernel("particlefilter", "likelihood", suite=SUITE,
                         valu_ops=1700.0, simd_efficiency=0.5,
                         global_size=1 << 17),
        atomic_kernel("particlefilter", "normalize_weights", suite=SUITE,
                      atomic_ops=1.0, contention=0.45, valu_ops=60.0,
                      global_size=1 << 17),
        streaming_kernel("particlefilter", "find_index", suite=SUITE,
                         valu_ops=50.0, load_bytes=16.0,
                         coalescing=0.3, global_size=1 << 17),
        tiny_kernel("particlefilter", "sum_weights", suite=SUITE,
                    num_workgroups=32, valu_ops=160.0),
    )
    b.program(
        "pathfinder",
        lds_kernel("pathfinder", "dynproc", suite=SUITE, valu_ops=110.0,
                   lds_bytes=40.0, barriers=20.0, global_size=1 << 19),
        tiny_kernel("pathfinder", "init_results", suite=SUITE,
                    num_workgroups=48, valu_ops=210.0),
    )
    b.program(
        "srad",
        streaming_kernel("srad", "srad_cuda_1", suite=SUITE,
                         valu_ops=90.0, load_bytes=40.0, store_bytes=16.0),
        streaming_kernel("srad", "srad_cuda_2", suite=SUITE,
                         valu_ops=70.0, load_bytes=36.0, store_bytes=8.0),
        streaming_kernel("srad", "extract", suite=SUITE, valu_ops=10.0,
                         load_bytes=4.0, store_bytes=4.0),
        streaming_kernel("srad", "compress", suite=SUITE, valu_ops=10.0,
                         load_bytes=4.0, store_bytes=4.0),
        atomic_kernel("srad", "reduce", suite=SUITE, atomic_ops=0.5,
                      contention=0.2, valu_ops=30.0),
    )
    return b.finish(
        description="Heterogeneous-computing dwarfs with 2009-era inputs; "
        "many kernels under-fill a 44-CU device."
    )
