"""SHOC-like suite: 12 programs, 45 kernels.

The Scalable HeterOgeneous Computing suite stresses individual device
capabilities (triad bandwidth, FFT, GEMM, sort/scan primitives). Its
"level 0/1" microbenchmarks are deliberately bottleneck-pure, which
makes SHOC the cleanest source of textbook compute-bound and
bandwidth-bound scaling curves — and its multi-phase primitives
(sort, scan, reduction trees) a rich source of small plateau kernels.
"""

from __future__ import annotations

from repro.kernels.archetypes import (
    atomic_kernel,
    balanced_kernel,
    compute_kernel,
    divergent_kernel,
    latency_kernel,
    lds_kernel,
    limited_parallelism_kernel,
    streaming_kernel,
    thrashing_kernel,
    tiny_kernel,
)
from repro.suites.catalog import ProgramBuilder, Suite

SUITE = "shoc"


#: One-line description of the computation each program models.
DESCRIPTIONS = {
    'bfs': (
        "SHOC's graph traversal capability test with frontier "
        'marking. '
    ),
    'fft': (
        '512-point batched FFT: forward/inverse butterfly stages, '
        'transpose and twiddle passes. '
    ),
    'gemm': (
        'Dense matrix multiply in NN and NT layouts, LDS-blocked. '
    ),
    'md': (
        'Lennard-Jones molecular dynamics with neighbour-list '
        'gathers. '
    ),
    'md5hash': (
        'Brute-force MD5 key search: pure integer ALU saturation, '
        'zero memory traffic. '
    ),
    'qtclustering': (
        'Quality-threshold clustering: divergent distance '
        'evaluation with a cache-straining candidate matrix. '
    ),
    'reduction': (
        'Multi-pass sum reduction, coalesced and strided variants. '
    ),
    'scan': (
        'Multi-level exclusive prefix sum with verification pass. '
    ),
    'sort': (
        'Radix sort: count, block-local sort, digit scan, scatter '
        'and top-level scan phases. '
    ),
    'spmv': (
        'Sparse matrix-vector product: CSR scalar/vector, ELLPACK-R '
        'and a texture-cached variant. '
    ),
    'stencil2d': (
        '9-point 2-D stencil with halo exchange, naive and LDS '
        'variants. '
    ),
    'triad': (
        'STREAM triad a = b + s*c: the canonical peak-bandwidth '
        'microbenchmark. '
    ),
}


def make_suite() -> Suite:
    """Build the SHOC-like catalog (12 programs / 45 kernels)."""
    b = ProgramBuilder(SUITE, DESCRIPTIONS)

    b.program(
        "bfs",
        latency_kernel("bfs", "bfs_frontier", suite=SUITE,
                       dependent_fraction=0.8, load_bytes=44.0,
                       simd_efficiency=0.5, global_size=1 << 21),
        atomic_kernel("bfs", "visit_mark", suite=SUITE, atomic_ops=1.0,
                      contention=0.18, valu_ops=16.0),
    )
    b.program(
        "fft",
        lds_kernel("fft", "fft512_fwd", suite=SUITE, valu_ops=430.0,
                   lds_bytes=96.0, barriers=9.0, load_bytes=32.0),
        lds_kernel("fft", "fft512_inv", suite=SUITE, valu_ops=430.0,
                   lds_bytes=96.0, barriers=9.0, load_bytes=32.0),
        streaming_kernel("fft", "transpose_pass", suite=SUITE,
                         valu_ops=10.0, load_bytes=8.0, store_bytes=8.0,
                         coalescing=0.65),
        balanced_kernel("fft", "twiddle_mul", suite=SUITE, valu_ops=240.0,
                        load_bytes=32.0, store_bytes=16.0),
        streaming_kernel("fft", "check_kernel", suite=SUITE, valu_ops=18.0,
                         load_bytes=16.0, store_bytes=0.2),
        tiny_kernel("fft", "normalize", suite=SUITE, num_workgroups=60),
    )
    b.program(
        "gemm",
        lds_kernel("gemm", "sgemm_nn", suite=SUITE, valu_ops=2200.0,
                   lds_bytes=176.0, barriers=32.0, load_bytes=64.0,
                   lds_per_workgroup=32768, global_size=1 << 19),
        lds_kernel("gemm", "sgemm_nt", suite=SUITE, valu_ops=2200.0,
                   lds_bytes=176.0, barriers=32.0, load_bytes=72.0,
                   lds_per_workgroup=32768, global_size=1 << 19),
        streaming_kernel("gemm", "copy_matrix", suite=SUITE, valu_ops=4.0,
                         load_bytes=16.0, store_bytes=16.0),
    )
    b.program(
        "md",
        compute_kernel("md", "lj_force", suite=SUITE, valu_ops=4600.0,
                       load_bytes=48.0, global_size=1 << 17, vgprs=72),
        latency_kernel("md", "neighbor_gather", suite=SUITE,
                       dependent_fraction=0.6, load_bytes=64.0,
                       memory_parallelism=2.0, global_size=1 << 17),
        streaming_kernel("md", "update_positions", suite=SUITE,
                         valu_ops=28.0, load_bytes=24.0, store_bytes=24.0),
    )
    b.program(
        "md5hash",
        compute_kernel("md5hash", "md5_search", suite=SUITE,
                       valu_ops=7800.0, load_bytes=4.0,
                       global_size=1 << 21, vgprs=48),
    )
    b.program(
        "qtclustering",
        divergent_kernel("qtclustering", "qtc_distances", suite=SUITE,
                         valu_ops=1300.0, simd_efficiency=0.4,
                         load_bytes=40.0, global_size=1 << 17),
        thrashing_kernel("qtclustering", "qtc_cluster", suite=SUITE,
                         valu_ops=110.0, load_bytes=52.0,
                         footprint_mib=18.0, l2_reuse=0.85,
                         row_sensitivity=0.7),
        limited_parallelism_kernel("qtclustering", "reduce_card",
                                   suite=SUITE, num_workgroups=26,
                                   valu_ops=90.0),
    )
    b.program(
        "reduction",
        streaming_kernel("reduction", "reduce_pass1", suite=SUITE,
                         valu_ops=12.0, load_bytes=16.0, store_bytes=0.1,
                         coalescing=0.95, global_size=1 << 23),
        limited_parallelism_kernel("reduction", "reduce_pass2", suite=SUITE,
                                   num_workgroups=24, valu_ops=60.0),
        tiny_kernel("reduction", "reduce_final", suite=SUITE,
                    num_workgroups=1, valu_ops=180.0),
        streaming_kernel("reduction", "reduce_strided", suite=SUITE,
                         valu_ops=12.0, load_bytes=16.0, store_bytes=0.1,
                         coalescing=0.25, global_size=1 << 23),
    )
    b.program(
        "scan",
        streaming_kernel("scan", "scan_local1", suite=SUITE, valu_ops=24.0,
                         load_bytes=8.0, store_bytes=8.0),
        lds_kernel("scan", "scan_local2", suite=SUITE, valu_ops=150.0,
                   lds_bytes=56.0, barriers=10.0),
        tiny_kernel("scan", "scan_block_sums", suite=SUITE,
                    num_workgroups=1, workgroup_size=256,
                    valu_ops=240.0),
        streaming_kernel("scan", "uniform_add", suite=SUITE, valu_ops=7.0,
                         load_bytes=8.0, store_bytes=4.0),
        streaming_kernel("scan", "vector_addition", suite=SUITE,
                         valu_ops=4.0, load_bytes=8.0, store_bytes=4.0),
        tiny_kernel("scan", "verify_scan", suite=SUITE, num_workgroups=16,
                    valu_ops=150.0),
    )
    b.program(
        "sort",
        atomic_kernel("sort", "radix_count", suite=SUITE, atomic_ops=1.0,
                      contention=0.15, valu_ops=28.0),
        lds_kernel("sort", "radix_sort_blocks", suite=SUITE, valu_ops=190.0,
                   lds_bytes=80.0, barriers=14.0),
        limited_parallelism_kernel("sort", "scan_digits", suite=SUITE,
                                   num_workgroups=16, valu_ops=70.0),
        streaming_kernel("sort", "scatter_keys", suite=SUITE, valu_ops=14.0,
                         load_bytes=8.0, store_bytes=8.0, coalescing=0.3),
        streaming_kernel("sort", "scatter_values", suite=SUITE,
                         valu_ops=12.0, load_bytes=8.0, store_bytes=8.0,
                         coalescing=0.3),
        tiny_kernel("sort", "top_scan", suite=SUITE, num_workgroups=1,
                    valu_ops=260.0),
        streaming_kernel("sort", "find_offsets", suite=SUITE, valu_ops=16.0,
                         load_bytes=8.0, store_bytes=4.0),
    )
    b.program(
        "spmv",
        streaming_kernel("spmv", "csr_scalar", suite=SUITE, valu_ops=40.0,
                         load_bytes=52.0, store_bytes=4.0,
                         coalescing=0.3),
        streaming_kernel("spmv", "csr_vector", suite=SUITE, valu_ops=52.0,
                         load_bytes=52.0, store_bytes=4.0,
                         coalescing=0.75),
        streaming_kernel("spmv", "ellpackr", suite=SUITE, valu_ops=44.0,
                         load_bytes=48.0, store_bytes=4.0,
                         coalescing=0.85),
        thrashing_kernel("spmv", "csr_vector_tex", suite=SUITE,
                         valu_ops=60.0, load_bytes=48.0,
                         footprint_mib=14.0, l2_reuse=0.9,
                         row_sensitivity=0.8),
        tiny_kernel("spmv", "zero_vector", suite=SUITE, num_workgroups=40,
                    valu_ops=180.0),
        streaming_kernel("spmv", "pad_rows", suite=SUITE, valu_ops=6.0,
                         load_bytes=8.0, store_bytes=8.0),
    )
    b.program(
        "stencil2d",
        streaming_kernel("stencil2d", "stencil9pt", suite=SUITE,
                         valu_ops=70.0, load_bytes=44.0, store_bytes=8.0,
                         footprint_mib=128.0, global_size=1 << 22),
        lds_kernel("stencil2d", "stencil9pt_shared", suite=SUITE,
                   valu_ops=120.0, lds_bytes=56.0, barriers=4.0,
                   global_size=1 << 22),
        tiny_kernel("stencil2d", "exchange_halo", suite=SUITE,
                    num_workgroups=44, workgroup_size=128),
    )
    b.program(
        "triad",
        streaming_kernel("triad", "triad", suite=SUITE, valu_ops=6.0,
                         load_bytes=16.0, store_bytes=8.0,
                         coalescing=0.98, footprint_mib=512.0,
                         global_size=1 << 23),
    )
    return b.finish(
        description="Capability microbenchmarks plus level-1 primitives; "
        "the purest compute- and bandwidth-bound scaling curves."
    )
