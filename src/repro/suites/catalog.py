"""Catalog data structures: suites, programs, and their invariants.

The study characterises **267 kernels from 97 programs** drawn from the
popular GPGPU benchmark suites of the era. Our synthetic catalog keeps
that exact accounting — suite modules declare programs and kernels, and
:mod:`repro.suites.registry` enforces the totals — so every analysis
downstream (taxonomy histograms, per-suite scalability critique) runs
at the paper's scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import SuiteError
from repro.kernels.kernel import Kernel


@dataclass(frozen=True)
class Program:
    """One benchmark program: a named collection of kernels."""

    name: str
    suite: str
    kernels: Tuple[Kernel, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SuiteError("program name must be non-empty")
        if not self.kernels:
            raise SuiteError(f"program {self.name!r} declares no kernels")
        names = [k.name for k in self.kernels]
        if len(set(names)) != len(names):
            raise SuiteError(
                f"program {self.name!r} has duplicate kernel names: {names}"
            )
        for kernel in self.kernels:
            if kernel.program != self.name:
                raise SuiteError(
                    f"kernel {kernel.full_name!r} declares program "
                    f"{kernel.program!r} but lives in {self.name!r}"
                )
            if kernel.suite != self.suite:
                raise SuiteError(
                    f"kernel {kernel.full_name!r} declares suite "
                    f"{kernel.suite!r} but lives in {self.suite!r}"
                )

    @property
    def kernel_count(self) -> int:
        """Number of kernels in this program."""
        return len(self.kernels)


@dataclass(frozen=True)
class Suite:
    """One benchmark suite: a named collection of programs."""

    name: str
    programs: Tuple[Program, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SuiteError("suite name must be non-empty")
        if not self.programs:
            raise SuiteError(f"suite {self.name!r} declares no programs")
        names = [p.name for p in self.programs]
        if len(set(names)) != len(names):
            raise SuiteError(
                f"suite {self.name!r} has duplicate program names"
            )
        for program in self.programs:
            if program.suite != self.name:
                raise SuiteError(
                    f"program {program.name!r} declares suite "
                    f"{program.suite!r} but lives in {self.name!r}"
                )

    @property
    def program_count(self) -> int:
        """Number of programs in this suite."""
        return len(self.programs)

    @property
    def kernel_count(self) -> int:
        """Number of kernels across all programs."""
        return sum(p.kernel_count for p in self.programs)

    def kernels(self) -> Iterator[Kernel]:
        """Iterate all kernels in declaration order."""
        for program in self.programs:
            yield from program.kernels

    def program(self, name: str) -> Program:
        """Look up a program by name; raises :class:`SuiteError`."""
        for candidate in self.programs:
            if candidate.name == name:
                return candidate
        raise SuiteError(f"suite {self.name!r} has no program {name!r}")


class ProgramBuilder:
    """Incremental builder used by suite modules.

    Keeps suite-module code declarative::

        build = ProgramBuilder("rodinia")
        build.program("bfs", latency_kernel("bfs", "kernel1", ...),
                             latency_kernel("bfs", "kernel2", ...))
        suite = build.finish(description="...")
    """

    def __init__(self, suite_name: str, descriptions: dict = None):
        self._suite_name = suite_name
        self._programs: List[Program] = []
        self._descriptions = descriptions or {}

    @property
    def suite_name(self) -> str:
        """The suite under construction."""
        return self._suite_name

    def program(self, name: str, *kernels: Kernel) -> None:
        """Add a program with its kernels (validated immediately).

        The program's description is looked up from the builder's
        description table (suite modules keep a ``DESCRIPTIONS`` dict
        so the catalog stays declarative).
        """
        self._programs.append(
            Program(
                name=name,
                suite=self._suite_name,
                kernels=tuple(kernels),
                description=self._descriptions.get(name, ""),
            )
        )

    def finish(self, description: str = "") -> Suite:
        """Seal the builder into an immutable :class:`Suite`."""
        return Suite(
            name=self._suite_name,
            programs=tuple(self._programs),
            description=description,
        )


def catalog_summary(suites: List[Suite]) -> Dict[str, Tuple[int, int]]:
    """Map suite name -> (program count, kernel count)."""
    return {s.name: (s.program_count, s.kernel_count) for s in suites}
