"""Pannotia-like suite: 8 programs, 30 kernels.

Pannotia collects irregular graph-analytics workloads (betweenness
centrality, graph colouring, all-pairs paths, maximal independent set,
PageRank, SSSP). Graph kernels are the paper's richest source of
"non-obvious" scaling: pointer-chasing latency chains, contended
atomics, heavy branch divergence, and frontier phases whose
parallelism varies by orders of magnitude between launches.
"""

from __future__ import annotations

from repro.kernels.archetypes import (
    atomic_kernel,
    divergent_kernel,
    latency_kernel,
    limited_parallelism_kernel,
    streaming_kernel,
    thrashing_kernel,
    tiny_kernel,
)
from repro.suites.catalog import ProgramBuilder, Suite

SUITE = "pannotia"


#: One-line description of the computation each program models.
DESCRIPTIONS = {
    'bc': (
        'Betweenness centrality: forward BFS waves, dependency '
        'back-sum and atomic delta accumulation. '
    ),
    'color_max': (
        'Greedy graph colouring, max-independent-set variant with '
        'divergent neighbour scans. '
    ),
    'color_maxmin': (
        'Graph colouring claiming two colours per iteration via '
        'simultaneous max/min hashes. '
    ),
    'fw': (
        'Floyd-Warshall all-pairs shortest paths with a '
        'cache-pressured blocked variant. '
    ),
    'mis': (
        'Maximal independent set: randomised candidate selection '
        'with neighbour-dependent rejection. '
    ),
    'pagerank': (
        'PageRank via per-edge atomic rank scatter over a CSR '
        'graph. '
    ),
    'pagerank_spmv': (
        'PageRank formulated as SpMV iterations: rank vector times '
        'transition matrix. '
    ),
    'sssp': (
        'Single-source shortest paths: edge relaxation with atomic '
        'distance updates. '
    ),
}


def make_suite() -> Suite:
    """Build the Pannotia-like catalog (8 programs / 30 kernels)."""
    b = ProgramBuilder(SUITE, DESCRIPTIONS)

    b.program(
        "bc",
        latency_kernel("bc", "bfs_forward", suite=SUITE,
                       dependent_fraction=0.85, load_bytes=48.0,
                       simd_efficiency=0.4, global_size=1 << 20),
        latency_kernel("bc", "backsum", suite=SUITE,
                       dependent_fraction=0.75, load_bytes=56.0,
                       simd_efficiency=0.45, global_size=1 << 20),
        atomic_kernel("bc", "accumulate_delta", suite=SUITE,
                      atomic_ops=1.5, contention=0.35, valu_ops=30.0),
        streaming_kernel("bc", "clean_1d", suite=SUITE, valu_ops=4.0,
                         load_bytes=0.5, store_bytes=12.0),
        streaming_kernel("bc", "clean_2d", suite=SUITE, valu_ops=4.0,
                         load_bytes=0.5, store_bytes=8.0),
        tiny_kernel("bc", "set_source", suite=SUITE, num_workgroups=1),
    )
    b.program(
        "color_max",
        divergent_kernel("color_max", "color_kernel1", suite=SUITE,
                         valu_ops=420.0, simd_efficiency=0.35,
                         load_bytes=44.0),
        streaming_kernel("color_max", "color_kernel2", suite=SUITE,
                         valu_ops=22.0, load_bytes=16.0, store_bytes=8.0,
                         coalescing=0.4),
        tiny_kernel("color_max", "init_colors", suite=SUITE,
                    num_workgroups=52, valu_ops=190.0),
    )
    b.program(
        "color_maxmin",
        divergent_kernel("color_maxmin", "maxmin_kernel1", suite=SUITE,
                         valu_ops=520.0, simd_efficiency=0.3,
                         load_bytes=48.0),
        streaming_kernel("color_maxmin", "maxmin_kernel2", suite=SUITE,
                         valu_ops=26.0, load_bytes=16.0, store_bytes=8.0,
                         coalescing=0.4),
        streaming_kernel("color_maxmin", "maxmin_kernel3", suite=SUITE,
                         valu_ops=20.0, load_bytes=12.0, store_bytes=8.0),
        tiny_kernel("color_maxmin", "init_node_state", suite=SUITE,
                    num_workgroups=52, valu_ops=210.0),
    )
    b.program(
        "fw",
        thrashing_kernel("fw", "floydwarshall_pass", suite=SUITE,
                         valu_ops=40.0, load_bytes=32.0,
                         footprint_mib=16.0, l2_reuse=0.88,
                         row_sensitivity=0.6),
        limited_parallelism_kernel("fw", "fw_block_diag", suite=SUITE,
                                   num_workgroups=12, valu_ops=300.0),
    )
    b.program(
        "mis",
        divergent_kernel("mis", "mis_kernel1", suite=SUITE, valu_ops=380.0,
                         simd_efficiency=0.35, load_bytes=40.0),
        latency_kernel("mis", "mis_kernel2", suite=SUITE,
                       dependent_fraction=0.7, load_bytes=44.0,
                       simd_efficiency=0.4),
        streaming_kernel("mis", "mis_kernel3", suite=SUITE, valu_ops=18.0,
                         load_bytes=12.0, store_bytes=8.0),
        tiny_kernel("mis", "reset_flags", suite=SUITE, num_workgroups=48,
                    valu_ops=180.0),
    )
    b.program(
        "pagerank",
        latency_kernel("pagerank", "inicsr", suite=SUITE,
                       dependent_fraction=0.55, load_bytes=40.0,
                       simd_efficiency=0.55, global_size=1 << 21),
        atomic_kernel("pagerank", "page_rank_atomic", suite=SUITE,
                      atomic_ops=2.0, contention=0.3, valu_ops=36.0,
                      global_size=1 << 21),
        streaming_kernel("pagerank", "rank_update", suite=SUITE,
                         valu_ops=16.0, load_bytes=12.0, store_bytes=4.0),
        tiny_kernel("pagerank", "init_ranks", suite=SUITE,
                    num_workgroups=56),
    )
    b.program(
        "pagerank_spmv",
        thrashing_kernel("pagerank_spmv", "spmv_csr_scalar", suite=SUITE,
                         valu_ops=48.0, load_bytes=52.0,
                         footprint_mib=22.0, l2_reuse=0.85,
                         row_sensitivity=0.8),
        streaming_kernel("pagerank_spmv", "rank_scale", suite=SUITE,
                         valu_ops=12.0, load_bytes=8.0, store_bytes=4.0),
        tiny_kernel("pagerank_spmv", "init_vector", suite=SUITE,
                    num_workgroups=56, valu_ops=150.0),
    )
    b.program(
        "sssp",
        latency_kernel("sssp", "relax_edges", suite=SUITE,
                       dependent_fraction=0.8, load_bytes=52.0,
                       simd_efficiency=0.35, global_size=1 << 20),
        atomic_kernel("sssp", "update_distance", suite=SUITE,
                      atomic_ops=1.0, contention=0.4, valu_ops=24.0),
        streaming_kernel("sssp", "copy_frontier", suite=SUITE,
                         valu_ops=8.0, load_bytes=8.0, store_bytes=8.0),
        tiny_kernel("sssp", "init_distances", suite=SUITE,
                    num_workgroups=52, valu_ops=230.0),
    )
    return b.finish(
        description="Irregular graph analytics: latency chains, contended "
        "atomics and divergence dominate; the richest non-obvious scaling."
    )
