"""Parboil-like suite: 11 programs, 35 kernels.

Parboil mixes throughput kernels (sgemm, stencil, lbm) with irregular
scientific codes (mri-gridding, spmv, histo). Inputs are mid-2000s
scale: several programs stop scaling well before 44 CUs.
"""

from __future__ import annotations

from repro.kernels.archetypes import (
    atomic_kernel,
    balanced_kernel,
    cache_resident_kernel,
    compute_kernel,
    divergent_kernel,
    latency_kernel,
    lds_kernel,
    limited_parallelism_kernel,
    streaming_kernel,
    thrashing_kernel,
    tiny_kernel,
)
from repro.suites.catalog import ProgramBuilder, Suite

SUITE = "parboil"


#: One-line description of the computation each program models.
DESCRIPTIONS = {
    'bfs': (
        'Queue-based breadth-first search with atomic frontier '
        'compaction. '
    ),
    'cutcp': (
        'Cutoff-pair Coulomb potential on a lattice: binning plus '
        'dense per-cell force math. '
    ),
    'histo': (
        'Large saturating histogram with a heavily contended hot '
        'region. '
    ),
    'lbm': (
        'Lattice-Boltzmann fluid stepping: 19-speed stream-collide '
        'over a 3-D grid (huge state streams). '
    ),
    'mri_gridding': (
        'MRI non-uniform sample gridding: divergent kernels, atomic '
        'binning and reorder scatter. '
    ),
    'mri_q': (
        'MRI Q-matrix computation: transcendental-heavy '
        'accumulation over sample points. '
    ),
    'sad': (
        'H.264 sum-of-absolute-differences motion estimation at '
        'multiple block sizes. '
    ),
    'sgemm': (
        'Dense single-precision matrix multiply, register/LDS '
        'blocked. '
    ),
    'spmv': (
        'Sparse matrix-vector product in JDS format (plus CSR '
        'comparison kernel). '
    ),
    'stencil': (
        '7-point 3-D Jacobi stencil, naive and LDS-tiled variants. '
    ),
    'tpacf': (
        'Two-point angular correlation function: per-bin '
        'histogramming of angular distances in LDS. '
    ),
}


def make_suite() -> Suite:
    """Build the Parboil-like catalog (11 programs / 35 kernels)."""
    b = ProgramBuilder(SUITE, DESCRIPTIONS)

    b.program(
        "bfs",
        latency_kernel("bfs", "bfs_kernel", suite=SUITE,
                       dependent_fraction=0.85, load_bytes=36.0,
                       simd_efficiency=0.4, global_size=1 << 20),
        atomic_kernel("bfs", "frontier_update", suite=SUITE,
                      atomic_ops=1.0, contention=0.2, valu_ops=18.0),
        tiny_kernel("bfs", "init_levels", suite=SUITE, num_workgroups=64),
    )
    b.program(
        "cutcp",
        compute_kernel("cutcp", "lattice_kernel", suite=SUITE,
                       valu_ops=2900.0, load_bytes=28.0,
                       global_size=1 << 19, vgprs=56),
        lds_kernel("cutcp", "bin_kernel", suite=SUITE, valu_ops=240.0,
                   lds_bytes=64.0, barriers=6.0),
        streaming_kernel("cutcp", "copy_atoms", suite=SUITE, valu_ops=8.0,
                         load_bytes=16.0, store_bytes=16.0),
        tiny_kernel("cutcp", "clear_lattice", suite=SUITE,
                    num_workgroups=40),
    )
    b.program(
        "histo",
        atomic_kernel("histo", "histo_main", suite=SUITE, atomic_ops=1.0,
                      contention=0.55, valu_ops=20.0,
                      global_size=1 << 22),
        streaming_kernel("histo", "histo_prescan", suite=SUITE,
                         valu_ops=14.0, load_bytes=8.0),
        limited_parallelism_kernel("histo", "histo_intermediate",
                                   suite=SUITE, num_workgroups=42,
                                   valu_ops=60.0),
        streaming_kernel("histo", "histo_final", suite=SUITE, valu_ops=10.0,
                         load_bytes=8.0, store_bytes=4.0),
    )
    b.program(
        "lbm",
        streaming_kernel("lbm", "stream_collide", suite=SUITE,
                         valu_ops=260.0, load_bytes=152.0,
                         store_bytes=152.0, footprint_mib=380.0,
                         global_size=1 << 21),
        streaming_kernel("lbm", "boundary_update", suite=SUITE,
                         valu_ops=40.0, load_bytes=76.0, store_bytes=76.0,
                         coalescing=0.5),
        tiny_kernel("lbm", "init_grid", suite=SUITE, num_workgroups=56,
                    workgroup_size=128),
    )
    b.program(
        "mri_gridding",
        divergent_kernel("mri_gridding", "gridding_gpu", suite=SUITE,
                         valu_ops=900.0, simd_efficiency=0.45,
                         load_bytes=36.0),
        atomic_kernel("mri_gridding", "binning", suite=SUITE,
                      atomic_ops=1.0, contention=0.25, valu_ops=26.0),
        limited_parallelism_kernel("mri_gridding", "scan_large", suite=SUITE,
                                   num_workgroups=36, valu_ops=70.0),
        streaming_kernel("mri_gridding", "reorder", suite=SUITE,
                         valu_ops=12.0, load_bytes=16.0, store_bytes=16.0,
                         coalescing=0.35),
        tiny_kernel("mri_gridding", "scan_top", suite=SUITE,
                    num_workgroups=1, valu_ops=220.0),
    )
    b.program(
        "mri_q",
        compute_kernel("mri_q", "computeQ", suite=SUITE, valu_ops=3400.0,
                       load_bytes=16.0, global_size=1 << 18),
        compute_kernel("mri_q", "computePhiMag", suite=SUITE,
                       valu_ops=160.0, load_bytes=8.0,
                       global_size=1 << 16),
        cache_resident_kernel("mri_q", "computeRhoPhi", suite=SUITE,
                              valu_ops=90.0, load_bytes=24.0,
                              footprint_kib=512.0),
    )
    b.program(
        "sad",
        balanced_kernel("sad", "mb_sad_calc", suite=SUITE, valu_ops=540.0,
                        load_bytes=48.0, store_bytes=16.0),
        streaming_kernel("sad", "larger_sad_calc_8", suite=SUITE,
                         valu_ops=60.0, load_bytes=32.0, store_bytes=16.0),
        streaming_kernel("sad", "larger_sad_calc_16", suite=SUITE,
                         valu_ops=60.0, load_bytes=32.0, store_bytes=16.0),
        tiny_kernel("sad", "setup_blocks", suite=SUITE, num_workgroups=24,
                    valu_ops=190.0),
    )
    b.program(
        "sgemm",
        lds_kernel("sgemm", "sgemm_tiled", suite=SUITE, valu_ops=2048.0,
                   lds_bytes=160.0, barriers=32.0, load_bytes=64.0,
                   lds_per_workgroup=32768, global_size=1 << 19),
    )
    b.program(
        "spmv",
        thrashing_kernel("spmv", "spmv_jds", suite=SUITE, valu_ops=64.0,
                         load_bytes=56.0, footprint_mib=20.0,
                         l2_reuse=0.85, row_sensitivity=0.75),
        streaming_kernel("spmv", "spmv_csr", suite=SUITE, valu_ops=48.0,
                         load_bytes=52.0, store_bytes=4.0,
                         coalescing=0.4),
        tiny_kernel("spmv", "zero_output", suite=SUITE, num_workgroups=48,
                    valu_ops=170.0),
    )
    b.program(
        "stencil",
        streaming_kernel("stencil", "stencil7pt", suite=SUITE,
                         valu_ops=90.0, load_bytes=56.0, store_bytes=8.0,
                         footprint_mib=256.0, global_size=1 << 22),
        lds_kernel("stencil", "stencil_shared", suite=SUITE,
                   valu_ops=140.0, lds_bytes=64.0, barriers=4.0,
                   global_size=1 << 22),
        tiny_kernel("stencil", "copy_halo", suite=SUITE, num_workgroups=52,
                    workgroup_size=128),
    )
    b.program(
        "tpacf",
        lds_kernel("tpacf", "gen_hists", suite=SUITE, valu_ops=1700.0,
                   lds_bytes=88.0, barriers=12.0, load_bytes=24.0,
                   global_size=1 << 18),
        limited_parallelism_kernel("tpacf", "merge_hists", suite=SUITE,
                                   num_workgroups=20, valu_ops=100.0),
    )
    return b.finish(
        description="Throughput-computing research suite; mixed regular "
        "and irregular kernels with mid-2000s input scales."
    )
