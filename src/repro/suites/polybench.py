"""PolyBench/GPU-like suite: 12 programs, 25 kernels.

PolyBench/GPU ports the polyhedral linear-algebra collection to
OpenCL. The kernels are dense and regular but the default problem
sizes are small (matrices of a few thousand elements per side or
less), so many kernels either fit in the L2 — scaling with engine
clock and indifferent to memory clock — or launch too few workgroups
to fill 44 CUs. PolyBench is the second pillar of the paper's
"benchmarks do not scale" critique after Rodinia.
"""

from __future__ import annotations

from repro.kernels.archetypes import (
    cache_resident_kernel,
    lds_kernel,
    limited_parallelism_kernel,
    streaming_kernel,
    tiny_kernel,
)
from repro.suites.catalog import ProgramBuilder, Suite

SUITE = "polybench"


#: One-line description of the computation each program models.
DESCRIPTIONS = {
    '2mm': (
        'Two chained matrix multiplies D = A.B, E = C.D on small '
        'cache-resident matrices. '
    ),
    '3mm': (
        'Three chained matrix multiplies on small cache-resident '
        'matrices. '
    ),
    'atax': (
        'Matrix transpose-vector then matrix-vector product '
        'A^T.(A.x): row-parallel, tiny launch. '
    ),
    'bicg': (
        'BiCG kernel pair: simultaneous A.p and A^T.r products with '
        'tiny row-parallel launches. '
    ),
    'correlation': (
        'Correlation matrix: per-column mean/stddev (tiny launches) '
        'then the dense correlation kernel. '
    ),
    'covariance': (
        'Covariance matrix: per-column mean then the dense '
        'covariance kernel. '
    ),
    'gemm': (
        'Single dense matrix multiply, LDS-tiled. '
    ),
    'gesummv': (
        'Scalar-vector-matrix combination y = alpha.A.x + beta.B.x, '
        'one row per thread. '
    ),
    'gramschmidt': (
        'Gram-Schmidt QR: a serial column normalisation followed by '
        'small projection updates. '
    ),
    'mvt': (
        'Matrix-vector product and its transpose, each a tiny '
        'row-parallel launch. '
    ),
    'syr2k': (
        'Symmetric rank-2k update on a cache-resident matrix. '
    ),
    'syrk': (
        'Symmetric rank-k update on a cache-resident matrix. '
    ),
}


def make_suite() -> Suite:
    """Build the PolyBench/GPU-like catalog (12 programs / 25 kernels)."""
    b = ProgramBuilder(SUITE, DESCRIPTIONS)

    b.program(
        "2mm",
        cache_resident_kernel("2mm", "mm2_kernel1", suite=SUITE,
                              valu_ops=480.0, load_bytes=64.0,
                              footprint_kib=896.0, global_size=1 << 18),
        cache_resident_kernel("2mm", "mm2_kernel2", suite=SUITE,
                              valu_ops=480.0, load_bytes=64.0,
                              footprint_kib=896.0, global_size=1 << 18),
    )
    b.program(
        "3mm",
        cache_resident_kernel("3mm", "mm3_kernel1", suite=SUITE,
                              valu_ops=440.0, load_bytes=60.0,
                              footprint_kib=832.0, global_size=1 << 18),
        cache_resident_kernel("3mm", "mm3_kernel2", suite=SUITE,
                              valu_ops=440.0, load_bytes=60.0,
                              footprint_kib=832.0, global_size=1 << 18),
        cache_resident_kernel("3mm", "mm3_kernel3", suite=SUITE,
                              valu_ops=440.0, load_bytes=60.0,
                              footprint_kib=832.0, global_size=1 << 18),
    )
    b.program(
        "atax",
        limited_parallelism_kernel("atax", "atax_kernel1", suite=SUITE,
                                   num_workgroups=16, valu_ops=220.0,
                                   load_bytes=48.0),
        limited_parallelism_kernel("atax", "atax_kernel2", suite=SUITE,
                                   num_workgroups=16, valu_ops=220.0,
                                   load_bytes=48.0),
    )
    b.program(
        "bicg",
        limited_parallelism_kernel("bicg", "bicg_kernel1", suite=SUITE,
                                   num_workgroups=16, valu_ops=200.0,
                                   load_bytes=44.0),
        limited_parallelism_kernel("bicg", "bicg_kernel2", suite=SUITE,
                                   num_workgroups=16, valu_ops=200.0,
                                   load_bytes=44.0),
    )
    b.program(
        "correlation",
        limited_parallelism_kernel("correlation", "mean_kernel", suite=SUITE,
                                   num_workgroups=8, valu_ops=160.0),
        limited_parallelism_kernel("correlation", "std_kernel", suite=SUITE,
                                   num_workgroups=8, valu_ops=200.0),
        streaming_kernel("correlation", "reduce_kernel", suite=SUITE,
                         valu_ops=30.0, load_bytes=16.0, store_bytes=8.0,
                         global_size=1 << 19),
        cache_resident_kernel("correlation", "corr_kernel", suite=SUITE,
                              valu_ops=380.0, load_bytes=56.0,
                              footprint_kib=640.0, global_size=1 << 18),
    )
    b.program(
        "covariance",
        limited_parallelism_kernel("covariance", "mean_kernel", suite=SUITE,
                                   num_workgroups=8, valu_ops=150.0),
        streaming_kernel("covariance", "reduce_kernel", suite=SUITE,
                         valu_ops=26.0, load_bytes=16.0, store_bytes=8.0,
                         global_size=1 << 19),
        cache_resident_kernel("covariance", "covar_kernel", suite=SUITE,
                              valu_ops=360.0, load_bytes=56.0,
                              footprint_kib=640.0, global_size=1 << 18),
    )
    b.program(
        "gemm",
        lds_kernel("gemm", "gemm_kernel", suite=SUITE, valu_ops=1024.0,
                   lds_bytes=128.0, barriers=16.0, load_bytes=48.0,
                   global_size=1 << 19),
    )
    b.program(
        "gesummv",
        limited_parallelism_kernel("gesummv", "gesummv_kernel", suite=SUITE,
                                   num_workgroups=16, valu_ops=260.0,
                                   load_bytes=64.0),
    )
    b.program(
        "gramschmidt",
        tiny_kernel("gramschmidt", "gramschmidt_kernel1", suite=SUITE,
                    num_workgroups=1, workgroup_size=256,
                    valu_ops=260.0),
        limited_parallelism_kernel("gramschmidt", "gramschmidt_kernel2",
                                   suite=SUITE, num_workgroups=8,
                                   valu_ops=180.0),
        limited_parallelism_kernel("gramschmidt", "gramschmidt_kernel3",
                                   suite=SUITE, num_workgroups=16,
                                   valu_ops=200.0),
    )
    b.program(
        "mvt",
        limited_parallelism_kernel("mvt", "mvt_kernel1", suite=SUITE,
                                   num_workgroups=16, valu_ops=240.0,
                                   load_bytes=52.0),
        limited_parallelism_kernel("mvt", "mvt_kernel2", suite=SUITE,
                                   num_workgroups=16, valu_ops=240.0,
                                   load_bytes=52.0),
    )
    b.program(
        "syr2k",
        cache_resident_kernel("syr2k", "syr2k_kernel", suite=SUITE,
                              valu_ops=520.0, load_bytes=72.0,
                              footprint_kib=960.0, global_size=1 << 18),
    )
    b.program(
        "syrk",
        cache_resident_kernel("syrk", "syrk_kernel", suite=SUITE,
                              valu_ops=460.0, load_bytes=64.0,
                              footprint_kib=960.0, global_size=1 << 18),
    )
    return b.finish(
        description="Dense polyhedral linear algebra with small default "
        "problem sizes: cache-resident or parallelism-starved on 44 CUs."
    )
