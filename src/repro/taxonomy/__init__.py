"""The paper's primary contribution, codified: per-axis scaling
behaviour classes, combined taxonomy categories, the rule-based
classifier, and the unsupervised cross-check."""

from repro.taxonomy.axis import (
    AxisBehaviour,
    classify_axis,
    is_responsive,
    is_strongly_responsive,
)
from repro.taxonomy.categories import (
    TaxonomyCategory,
    TaxonomyLabel,
    categorise,
)
from repro.taxonomy.explain import REMEDIES, explain_all, explain_label
from repro.taxonomy.classifier import (
    TaxonomyClassifier,
    TaxonomyResult,
    classify,
)
from repro.taxonomy.clustering import (
    ClusterAgreement,
    adjusted_rand_index,
    cluster_dataset,
    evaluate_agreement,
    kmeans,
    shape_matrix,
    shape_vector,
)
from repro.taxonomy.features import (
    AxisFeatures,
    ScalingFeatures,
    axis_features_from_slice,
    extract_all_features,
    extract_features,
)

__all__ = [
    "AxisBehaviour",
    "AxisFeatures",
    "ClusterAgreement",
    "ScalingFeatures",
    "TaxonomyCategory",
    "TaxonomyClassifier",
    "TaxonomyLabel",
    "TaxonomyResult",
    "REMEDIES",
    "adjusted_rand_index",
    "axis_features_from_slice",
    "categorise",
    "classify",
    "classify_axis",
    "cluster_dataset",
    "evaluate_agreement",
    "explain_all",
    "explain_label",
    "extract_all_features",
    "extract_features",
    "is_responsive",
    "is_strongly_responsive",
    "kmeans",
    "shape_matrix",
    "shape_vector",
]
