"""Unsupervised cross-check of the rule-based taxonomy.

The companion methodology (the authors' HPCA'15 machine-learning work
built on this dataset) clusters kernels by scaling *shape* rather than
by hand-written rules. This module reproduces that check: k-means over
per-kernel shape vectors, then agreement statistics against the
rule-based labels. High agreement is evidence the taxonomy's categories
are real structure in the data, not threshold artefacts.

Shape vectors concatenate the log-speedup curves of the three axis
slices (11 + 9 + 9 = 29 dimensions on the paper grid). Log space makes
"2x -> 4x" and "4x -> 8x" equally distant, which matches how the
taxonomy reasons about proportionality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ClassificationError
from repro.sweep.dataset import ScalingDataset
from repro.sweep.views import Axis, axis_slice
from repro.taxonomy.classifier import TaxonomyResult

#: Default cluster count: one per taxonomy category.
DEFAULT_K = 7

#: Fixed seed so the cross-check is reproducible.
DEFAULT_SEED = 20151004  # the paper's publication date


def shape_vector(dataset: ScalingDataset, kernel_name: str) -> np.ndarray:
    """One kernel's concatenated log2 speedup curves."""
    parts = []
    for axis in Axis:
        speedup = axis_slice(dataset, kernel_name, axis).speedup
        parts.append(np.log2(np.asarray(speedup)))
    return np.concatenate(parts)


def shape_matrix(dataset: ScalingDataset) -> np.ndarray:
    """Shape vectors for every kernel, shape (n_kernels, n_dims)."""
    return np.stack(
        [shape_vector(dataset, name) for name in dataset.kernel_names]
    )


def kmeans(
    points: np.ndarray,
    k: int,
    seed: int = DEFAULT_SEED,
    max_iter: int = 200,
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic k-means with k-means++ initialisation.

    Returns (assignments, centroids). Implemented locally (no sklearn
    offline) with a seeded generator so results are stable across runs.
    """
    n, _ = points.shape
    if not 1 <= k <= n:
        raise ClassificationError(f"k={k} invalid for {n} points")
    rng = np.random.default_rng(seed)

    # k-means++ seeding: spread the initial centroids.
    centroids = [points[rng.integers(n)]]
    for _ in range(k - 1):
        dists = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = dists.sum()
        if total == 0.0:
            centroids.append(points[rng.integers(n)])
            continue
        centroids.append(points[rng.choice(n, p=dists / total)])
    centres = np.stack(centroids)

    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(max_iter):
        distances = np.linalg.norm(
            points[:, None, :] - centres[None, :, :], axis=2
        )
        new_assignments = distances.argmin(axis=1)
        if np.array_equal(new_assignments, assignments) and _ > 0:
            break
        assignments = new_assignments
        for j in range(k):
            members = points[assignments == j]
            if len(members) > 0:
                centres[j] = members.mean(axis=0)
    return assignments, centres


def cluster_dataset(
    dataset: ScalingDataset, k: int = DEFAULT_K, seed: int = DEFAULT_SEED
) -> np.ndarray:
    """Cluster every kernel by scaling shape; returns assignments."""
    return kmeans(shape_matrix(dataset), k, seed)[0]


# ----------------------------------------------------------------------
# Agreement statistics
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ClusterAgreement:
    """Agreement between clusters and rule-based taxonomy labels."""

    purity: float
    adjusted_rand_index: float
    cluster_majorities: Dict[int, str]

    @property
    def agrees(self) -> bool:
        """Loose acceptance criterion used by the F10 experiment."""
        return self.purity >= 0.5 and self.adjusted_rand_index > 0.0


def _contingency(
    a: np.ndarray, b: np.ndarray
) -> Tuple[np.ndarray, List, List]:
    a_values = sorted(set(a.tolist()))
    b_values = sorted(set(b.tolist()))
    table = np.zeros((len(a_values), len(b_values)), dtype=np.int64)
    a_index = {v: i for i, v in enumerate(a_values)}
    b_index = {v: i for i, v in enumerate(b_values)}
    for x, y in zip(a.tolist(), b.tolist()):
        table[a_index[x], b_index[y]] += 1
    return table, a_values, b_values


def adjusted_rand_index(a: np.ndarray, b: np.ndarray) -> float:
    """Adjusted Rand index between two labelings (1 = identical,
    ~0 = chance). Local implementation — sklearn is unavailable."""
    if len(a) != len(b):
        raise ClassificationError("labelings must have equal length")
    table, _, _ = _contingency(a, b)

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) / 2.0

    sum_cells = comb2(table.astype(np.float64)).sum()
    sum_rows = comb2(table.sum(axis=1).astype(np.float64)).sum()
    sum_cols = comb2(table.sum(axis=0).astype(np.float64)).sum()
    n_pairs = comb2(np.array(float(len(a))))
    expected = sum_rows * sum_cols / n_pairs
    max_index = (sum_rows + sum_cols) / 2.0
    if max_index == expected:
        return 1.0
    return float((sum_cells - expected) / (max_index - expected))


def evaluate_agreement(
    dataset: ScalingDataset,
    taxonomy: TaxonomyResult,
    k: int = DEFAULT_K,
    seed: int = DEFAULT_SEED,
) -> ClusterAgreement:
    """Cluster the dataset and compare against rule-based labels."""
    assignments = cluster_dataset(dataset, k, seed)
    categories = np.array(
        [label.category.value for label in taxonomy.labels]
    )

    majorities: Dict[int, str] = {}
    correct = 0
    for cluster_id in sorted(set(assignments.tolist())):
        members = categories[assignments == cluster_id]
        values, counts = np.unique(members, return_counts=True)
        majority = values[counts.argmax()]
        majorities[int(cluster_id)] = str(majority)
        correct += int(counts.max())

    codes = {c: i for i, c in enumerate(sorted(set(categories.tolist())))}
    encoded = np.array([codes[c] for c in categories.tolist()])
    ari = adjusted_rand_index(assignments, encoded)
    return ClusterAgreement(
        purity=correct / len(categories),
        adjusted_rand_index=ari,
        cluster_majorities=majorities,
    )
