"""The taxonomy: combined kernel-level scaling categories.

The paper groups kernels by how the three per-axis behaviours compose.
The abstract calls out two "intuitive" families (scaling with compute
capability; scaling with memory bandwidth) and two "non-obvious" ones
(losing performance with more CUs; plateauing as frequency and
bandwidth rise). We codify those plus the limited-parallelism class
that drives the benchmark-scalability critique:

==================  =================================================
Category            Signature
==================  =================================================
COMPUTE_BOUND       CU and engine responsive, memory flat: more or
                    faster ALUs translate directly to performance.
BANDWIDTH_BOUND     Memory strongly responsive and the dominant clock
                    knob; CU gains stop once bandwidth saturates.
BALANCED            Both clock knobs deliver real gains: the kernel
                    sits near the machine-balance ridge and the
                    bottleneck migrates across the sweep.
CU_INVERSE          Adding CUs past the peak LOSES performance (cache
                    thrash, row-locality loss, atomic contention).
PARALLELISM_LIMITED CU axis flat/stalled because the launch cannot
                    fill the device, while at least one clock knob
                    still helps — the "benchmarks don't scale" class.
PLATEAU             Every knob saturates or is flat and the total
                    cube-wide gain is small: nothing the hardware
                    offers helps (fixed latencies, launch overhead).
MIXED               Everything else (rare boundary shapes).
==================  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

from repro.taxonomy.axis import AxisBehaviour, is_strongly_responsive
from repro.taxonomy.features import ScalingFeatures

#: CU-axis knee position below which CU scaling counts as stopping
#: "early" for the parallelism-limited check.
EARLY_CU_KNEE = 0.25

#: A SATURATING axis still "matters" for category purposes when its
#: cumulative gain reached this factor before flattening: the knob
#: bought real performance over the sweep even though it has stopped
#: paying at the flagship end (the balanced class's typical clock
#: signature — the bottleneck migrates mid-sweep).
SATURATING_MATTERS_GAIN = 3.0


class TaxonomyCategory(Enum):
    """Kernel-level scaling categories."""

    COMPUTE_BOUND = "compute_bound"
    BANDWIDTH_BOUND = "bandwidth_bound"
    BALANCED = "balanced"
    CU_INVERSE = "cu_inverse"
    PARALLELISM_LIMITED = "parallelism_limited"
    PLATEAU = "plateau"
    MIXED = "mixed"

    @property
    def is_intuitive(self) -> bool:
        """The paper's "intuitive" vs "non-obvious" split."""
        return self in (
            TaxonomyCategory.COMPUTE_BOUND,
            TaxonomyCategory.BANDWIDTH_BOUND,
            TaxonomyCategory.BALANCED,
        )


@dataclass(frozen=True)
class TaxonomyLabel:
    """Full classification of one kernel."""

    kernel_name: str
    category: TaxonomyCategory
    cu_behaviour: AxisBehaviour
    engine_behaviour: AxisBehaviour
    memory_behaviour: AxisBehaviour
    features: ScalingFeatures

    @property
    def behaviours(self) -> Tuple[AxisBehaviour, ...]:
        """(CU, engine, memory) behaviours."""
        return (
            self.cu_behaviour,
            self.engine_behaviour,
            self.memory_behaviour,
        )


def categorise(
    features: ScalingFeatures,
    cu: AxisBehaviour,
    engine: AxisBehaviour,
    memory: AxisBehaviour,
) -> TaxonomyCategory:
    """Combine per-axis behaviours into a taxonomy category.

    Precedence encodes the paper's narrative: the non-obvious classes
    (inverse, plateau, parallelism-limited) are identified first —
    they are the interesting findings — and the intuitive classes
    partition the remainder.
    """
    if cu is AxisBehaviour.INVERSE:
        return TaxonomyCategory.CU_INVERSE

    def axis_matters(axis_features, behaviour) -> bool:
        if is_strongly_responsive(behaviour):
            return True
        return (
            behaviour is AxisBehaviour.SATURATING
            and axis_features.gain >= SATURATING_MATTERS_GAIN
        )

    memory_matters = axis_matters(features.memory, memory)
    engine_matters = axis_matters(features.engine, engine)

    # Plateau: no knob delivered meaningful scaling — neither rising at
    # the flagship end of its axis nor having accumulated a large gain
    # before saturating. This is "plateauing as frequency and bandwidth
    # are increased" plus the launch-overhead-bound microkernels.
    cu_matters = axis_matters(features.cu, cu)
    if not memory_matters and not engine_matters and not cu_matters:
        return TaxonomyCategory.PLATEAU

    # Parallelism-limited: the CU axis is dead from the start — the
    # launch cannot fill the device — while the engine clock still
    # helps. A dead-or-early-stalled CU axis *with memory responsive*
    # is NOT this class: that kernel saturates DRAM from the smallest
    # device upward, which is bandwidth-bound behaviour (CU gains stop
    # because of the memory wall, not because work ran out).
    cu_dead = not memory_matters and (
        cu is AxisBehaviour.FLAT
        or (
            cu is AxisBehaviour.SATURATING
            and features.cu.knee_position <= EARLY_CU_KNEE
        )
    )
    if cu_dead and engine_matters:
        return TaxonomyCategory.PARALLELISM_LIMITED

    if memory_matters and engine_matters:
        return TaxonomyCategory.BALANCED
    if memory_matters:
        return TaxonomyCategory.BANDWIDTH_BOUND
    if engine_matters:
        return TaxonomyCategory.COMPUTE_BOUND
    return TaxonomyCategory.MIXED
