"""Human-readable explanations of taxonomy labels.

A classification is only actionable when its *reason* is visible.
:func:`explain_label` turns a :class:`TaxonomyLabel` into a short
evidence-backed narrative — which axis behaviours fired, the numbers
behind them, and the standard remedy for the class — used by the
``gpuscale kernel`` command and the audit example.
"""

from __future__ import annotations

from typing import List

from repro.taxonomy.categories import TaxonomyCategory, TaxonomyLabel

#: One-line remedies per category (the "what do I do about it" column).
REMEDIES = {
    TaxonomyCategory.COMPUTE_BOUND: (
        "buy compute: more CUs or engine clock convert directly"
    ),
    TaxonomyCategory.BANDWIDTH_BOUND: (
        "buy bandwidth; improve locality/coalescing to climb the roof"
    ),
    TaxonomyCategory.BALANCED: (
        "keep clocks balanced; either knob helps until the ridge"
    ),
    TaxonomyCategory.CU_INVERSE: (
        "cap active CUs at the curve's peak; reduce shared-resource "
        "contention (cache blocking, atomic privatisation)"
    ),
    TaxonomyCategory.PARALLELISM_LIMITED: (
        "expose more work per launch (bigger inputs, kernel fusion, "
        "finer decomposition)"
    ),
    TaxonomyCategory.PLATEAU: (
        "hardware knobs cannot help; restructure (batch tiny launches, "
        "break dependence chains, raise occupancy)"
    ),
    TaxonomyCategory.MIXED: "profile further; no single knob dominates",
}


def _axis_sentence(name: str, behaviour, features) -> str:
    detail = {
        "linear": (
            f"tracks the knob ({features.gain:.1f}x over a "
            f"{features.knob_ratio:.1f}x range)"
        ),
        "sublinear": (
            f"keeps rising but below proportionality "
            f"({features.gain:.1f}x over {features.knob_ratio:.1f}x)"
        ),
        "saturating": (
            f"gains {features.gain:.1f}x then stops at "
            f"{features.knee_position:.0%} of the axis"
        ),
        "flat": f"moves performance by under 15% ({features.gain:.2f}x)",
        "inverse": (
            f"peaks mid-axis and LOSES {features.drop_from_peak:.0%} "
            "by the top setting"
        ),
    }[behaviour.value]
    return f"{name}: {detail}"


def explain_label(label: TaxonomyLabel) -> str:
    """Multi-line, evidence-backed explanation of one kernel's label."""
    lines: List[str] = [
        f"{label.kernel_name} -> {label.category.value} "
        f"({'intuitive' if label.category.is_intuitive else 'non-obvious'})",
    ]
    features = label.features
    lines.append(
        "  "
        + _axis_sentence("CU count", label.cu_behaviour, features.cu)
    )
    lines.append(
        "  "
        + _axis_sentence(
            "engine clock", label.engine_behaviour, features.engine
        )
    )
    lines.append(
        "  "
        + _axis_sentence(
            "memory clock", label.memory_behaviour, features.memory
        )
    )
    lines.append(
        f"  full-range speedup: {features.end_to_end_gain:.1f}x of the "
        "~55x compute / 8.3x bandwidth headroom"
    )
    lines.append(f"  remedy: {REMEDIES[label.category]}")
    return "\n".join(lines)


def explain_all(labels) -> str:
    """Concatenated explanations (one blank line between kernels)."""
    return "\n\n".join(explain_label(label) for label in labels)
