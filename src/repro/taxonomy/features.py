"""Scaling-feature extraction.

The taxonomy reduces each kernel's 891-point cube to a handful of
interpretable per-axis features computed on the *normalised speedup
curve* of each knob (other knobs pinned at maximum):

* **gain** — end-to-end speedup over the slice,
* **peak gain / drop from peak** — detects inverse scaling,
* **elasticity** — mean log-log slope ``ln(gain)/ln(knob ratio)``:
  1.0 means perfectly proportional scaling, 0.0 means insensitive,
* **end elasticity** — local log-log slope over the last segment:
  distinguishes "still rising" from "already saturated",
* **knee** — earliest position (fraction of the axis) where the curve
  reaches 95% of its maximum: small knees mean early saturation,
* **monotonicity violation** — largest relative drop between adjacent
  points.

These are the quantities the per-axis behaviour rules in
:mod:`repro.taxonomy.axis` threshold on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import ClassificationError
from repro.sweep.dataset import ScalingDataset
from repro.sweep.views import Axis, AxisSlice, axis_slice

#: A curve is "at its maximum" once it reaches this fraction of it.
KNEE_THRESHOLD = 0.95


def _median3(curve: Tuple[float, ...]) -> Tuple[float, ...]:
    """3-point median filter, endpoints preserved.

    Identity on monotone curves (the common case), but removes
    single-point measurement noise and quantisation ripple that would
    otherwise flip threshold features (drop-from-peak, end slope) —
    see the ``benchmarks/test_ablation_noise.py`` robustness study.
    """
    if len(curve) < 3:
        return curve
    arr = np.asarray(curve, dtype=np.float64)
    windows = np.stack((arr[:-2], arr[1:-1], arr[2:]))
    middles = np.sort(windows, axis=0)[1]
    return (
        (curve[0],)
        + tuple(float(v) for v in middles)
        + (curve[-1],)
    )


@dataclass(frozen=True)
class AxisFeatures:
    """Scaling features of one kernel along one knob."""

    axis: Axis
    gain: float
    peak_gain: float
    knob_ratio: float
    elasticity: float
    end_elasticity: float
    knee_position: float
    drop_from_peak: float
    max_adjacent_drop: float

    @property
    def is_rising_at_end(self) -> bool:
        """True when the curve is still gaining at the axis maximum."""
        return self.end_elasticity > 0.0


@dataclass(frozen=True)
class ScalingFeatures:
    """All per-axis features of one kernel, plus cube-level summaries."""

    kernel_name: str
    cu: AxisFeatures
    engine: AxisFeatures
    memory: AxisFeatures
    end_to_end_gain: float

    def axis_features(self, axis: Axis) -> AxisFeatures:
        """Features for one axis."""
        return {
            Axis.CU: self.cu,
            Axis.ENGINE: self.engine,
            Axis.MEMORY: self.memory,
        }[axis]

    def as_dict(self) -> Dict[str, float]:
        """Flatten to a feature dict (used by clustering and reports)."""
        flat: Dict[str, float] = {"end_to_end_gain": self.end_to_end_gain}
        for features in (self.cu, self.engine, self.memory):
            prefix = features.axis.value
            flat[f"{prefix}_gain"] = features.gain
            flat[f"{prefix}_elasticity"] = features.elasticity
            flat[f"{prefix}_end_elasticity"] = features.end_elasticity
            flat[f"{prefix}_knee"] = features.knee_position
            flat[f"{prefix}_drop_from_peak"] = features.drop_from_peak
        return flat


def _tail_slope(
    knobs: Tuple[float, ...], speedup: Tuple[float, ...]
) -> float:
    """Log-log slope over the last half of the curve (OLS).

    The "is the knob still paying off at the top?" question is asked
    of noisy data in the original study's setting; a two-point end
    slope flips across thresholds under ~2% measurement noise. An
    ordinary-least-squares fit over the last ``ceil(n/2)`` points (at
    least two) averages that noise down while still localising the
    question to the top of the axis.
    """
    count = max(2, math.ceil(len(speedup) / 2))
    xs = np.log(np.asarray(knobs[-count:], dtype=np.float64))
    ys = np.log(
        np.maximum(np.asarray(speedup[-count:], dtype=np.float64), 1e-12)
    )
    dx = xs - xs.mean()
    dy = ys - ys.mean()
    return float((dx * dy).sum() / (dx * dx).sum())


def axis_features_from_slice(slice_: AxisSlice) -> AxisFeatures:
    """Compute :class:`AxisFeatures` from one normalised slice."""
    knobs = slice_.knob_values
    if len(slice_.speedup) < 2:
        raise ClassificationError(
            f"axis {slice_.axis.value} has {len(slice_.speedup)} "
            "point(s); feature extraction needs at least 2"
        )
    speedup = _median3(slice_.speedup)

    gain = slice_.gain
    peak = max(speedup)
    peak_gain = slice_.peak_gain
    knob_ratio = slice_.knob_ratio

    elasticity = math.log(gain) / math.log(knob_ratio)
    end_elasticity = _tail_slope(knobs, speedup)

    knee_index = next(
        i for i, s in enumerate(speedup) if s >= KNEE_THRESHOLD * peak
    )
    knee_position = knee_index / (len(speedup) - 1)

    drop_from_peak = 1.0 - speedup[-1] / peak
    adjacent_drops = [
        1.0 - b / a for a, b in zip(speedup, speedup[1:]) if b < a
    ]
    max_adjacent_drop = max(adjacent_drops, default=0.0)

    return AxisFeatures(
        axis=slice_.axis,
        gain=gain,
        peak_gain=peak_gain,
        knob_ratio=knob_ratio,
        elasticity=elasticity,
        end_elasticity=end_elasticity,
        knee_position=knee_position,
        drop_from_peak=drop_from_peak,
        max_adjacent_drop=max_adjacent_drop,
    )


def extract_features(
    dataset: ScalingDataset, kernel_name: str
) -> ScalingFeatures:
    """Extract all scaling features for one kernel.

    Each axis slice pins the other two knobs at their maxima, matching
    the paper's presentation (and making the axes' effects comparable:
    every slice ends at the same flagship configuration).
    """
    per_axis = {
        axis: axis_features_from_slice(axis_slice(dataset, kernel_name, axis))
        for axis in Axis
    }
    cube = dataset.kernel_cube(kernel_name)
    end_to_end = float(cube[-1, -1, -1] / cube[0, 0, 0])
    return ScalingFeatures(
        kernel_name=kernel_name,
        cu=per_axis[Axis.CU],
        engine=per_axis[Axis.ENGINE],
        memory=per_axis[Axis.MEMORY],
        end_to_end_gain=end_to_end,
    )


def extract_all_features(
    dataset: ScalingDataset,
) -> Tuple[ScalingFeatures, ...]:
    """Features for every kernel row, in dataset order."""
    return tuple(
        extract_features(dataset, name) for name in dataset.kernel_names
    )
