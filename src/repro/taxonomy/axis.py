"""Per-axis behaviour classification.

Each knob's scaling curve is assigned one of five behaviour classes.
The classes mirror the shapes the paper's abstract enumerates —
proportional scaling, saturation/plateau, insensitivity, and outright
performance loss:

* ``LINEAR`` — speedup tracks the knob (elasticity >= 0.75) and is
  still rising at the axis maximum,
* ``SUBLINEAR`` — clearly responsive (elasticity >= 0.25) and still
  rising, but below proportionality,
* ``SATURATING`` — gained meaningfully over the axis but flat at the
  end: the knob has stopped helping,
* ``FLAT`` — less than 15% total gain across the whole knob range,
* ``INVERSE`` — the curve's end point sits >= 5% below its peak:
  turning the knob up *loses* performance.

Thresholds are module constants so calibration studies (see
``benchmarks/test_ablation_thresholds.py``) can explore them.
"""

from __future__ import annotations

from enum import Enum

from repro.taxonomy.features import AxisFeatures

#: Minimum mean elasticity to call an axis LINEAR.
LINEAR_ELASTICITY = 0.75

#: Minimum mean elasticity to call an axis SUBLINEAR (vs SATURATING/FLAT).
SUBLINEAR_ELASTICITY = 0.25

#: Total gain below which an axis is FLAT (1.15 = <15% over the range).
FLAT_GAIN = 1.15

#: End-of-axis local elasticity below which a curve counts as stalled.
STALLED_END_ELASTICITY = 0.10

#: Relative drop from the curve's peak that flags INVERSE scaling.
#: 10% keeps quantisation ripple and mild cache-pressure drift out of
#: the class while catching every mechanistic inversion (thrash,
#: row-locality loss, atomic contention growth).
INVERSE_DROP = 0.10


class AxisBehaviour(Enum):
    """The five per-knob scaling shapes."""

    LINEAR = "linear"
    SUBLINEAR = "sublinear"
    SATURATING = "saturating"
    FLAT = "flat"
    INVERSE = "inverse"


def classify_axis(features: AxisFeatures) -> AxisBehaviour:
    """Assign one behaviour class to one axis's features.

    Precedence: INVERSE is checked first (a drop is meaningful whatever
    the earlier part of the curve did), then FLAT, then the rising
    shapes by elasticity, with stalled-at-the-end curves demoted to
    SATURATING.
    """
    if features.drop_from_peak >= INVERSE_DROP:
        return AxisBehaviour.INVERSE
    if features.gain < FLAT_GAIN:
        return AxisBehaviour.FLAT

    stalled = features.end_elasticity < STALLED_END_ELASTICITY
    if stalled:
        return AxisBehaviour.SATURATING
    if features.elasticity >= LINEAR_ELASTICITY:
        return AxisBehaviour.LINEAR
    if features.elasticity >= SUBLINEAR_ELASTICITY:
        return AxisBehaviour.SUBLINEAR
    return AxisBehaviour.SATURATING


def is_responsive(behaviour: AxisBehaviour) -> bool:
    """True when the knob delivers meaningful gains (rising shapes)."""
    return behaviour in (
        AxisBehaviour.LINEAR,
        AxisBehaviour.SUBLINEAR,
        AxisBehaviour.SATURATING,
    )


def is_strongly_responsive(behaviour: AxisBehaviour) -> bool:
    """True when the knob keeps paying off to the end of its range."""
    return behaviour in (AxisBehaviour.LINEAR, AxisBehaviour.SUBLINEAR)
