"""The taxonomy classifier: dataset in, per-kernel labels out.

This is the tool the paper never shipped (the calibration notes for
this reproduction flag "scaling-study scripts scattered; taxonomy not
codified in OSS tools"): a reusable classifier that turns any scaling
dataset into taxonomy labels plus summary statistics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sweep.dataset import ScalingDataset
from repro.taxonomy.axis import AxisBehaviour, classify_axis
from repro.taxonomy.categories import (
    TaxonomyCategory,
    TaxonomyLabel,
    categorise,
)
from repro.taxonomy.features import extract_features


@dataclass(frozen=True)
class TaxonomyResult:
    """Labels for every kernel of a dataset, with summary accessors."""

    labels: Tuple[TaxonomyLabel, ...]

    def label_for(self, kernel_name: str) -> TaxonomyLabel:
        """The label of one kernel; raises ``KeyError`` when absent."""
        for label in self.labels:
            if label.kernel_name == kernel_name:
                return label
        raise KeyError(f"no label for kernel {kernel_name!r}")

    def category_counts(self) -> Dict[TaxonomyCategory, int]:
        """Kernels per category (all categories present, zeros kept)."""
        counts = Counter(label.category for label in self.labels)
        return {cat: counts.get(cat, 0) for cat in TaxonomyCategory}

    def kernels_in(self, category: TaxonomyCategory) -> List[str]:
        """Kernel names carrying *category*."""
        return [
            label.kernel_name
            for label in self.labels
            if label.category is category
        ]

    def axis_behaviour_counts(
        self,
    ) -> Dict[str, Dict[AxisBehaviour, int]]:
        """Per-axis behaviour histograms (keys: cu/engine/memory)."""
        result: Dict[str, Dict[AxisBehaviour, int]] = {}
        for axis_name, getter in (
            ("cu", lambda l: l.cu_behaviour),
            ("engine", lambda l: l.engine_behaviour),
            ("memory", lambda l: l.memory_behaviour),
        ):
            counts = Counter(getter(label) for label in self.labels)
            result[axis_name] = {
                b: counts.get(b, 0) for b in AxisBehaviour
            }
        return result

    def intuitive_fraction(self) -> float:
        """Fraction of kernels in the "intuitive" categories."""
        intuitive = sum(
            1 for label in self.labels if label.category.is_intuitive
        )
        return intuitive / len(self.labels)

    def by_suite(self) -> Dict[str, Dict[TaxonomyCategory, int]]:
        """Category counts per suite (suite parsed from kernel names)."""
        result: Dict[str, Counter] = {}
        for label in self.labels:
            suite, _, _ = label.kernel_name.partition("/")
            result.setdefault(suite, Counter())[label.category] += 1
        return {
            suite: {cat: counts.get(cat, 0) for cat in TaxonomyCategory}
            for suite, counts in result.items()
        }


class TaxonomyClassifier:
    """Rule-based classifier over scaling datasets."""

    def classify_kernel(
        self, dataset: ScalingDataset, kernel_name: str
    ) -> TaxonomyLabel:
        """Label a single kernel."""
        features = extract_features(dataset, kernel_name)
        cu = classify_axis(features.cu)
        engine = classify_axis(features.engine)
        memory = classify_axis(features.memory)
        category = categorise(features, cu, engine, memory)
        return TaxonomyLabel(
            kernel_name=kernel_name,
            category=category,
            cu_behaviour=cu,
            engine_behaviour=engine,
            memory_behaviour=memory,
            features=features,
        )

    def classify(self, dataset: ScalingDataset) -> TaxonomyResult:
        """Label every kernel of *dataset* (total: every kernel gets
        exactly one category)."""
        labels = tuple(
            self.classify_kernel(dataset, name)
            for name in dataset.kernel_names
        )
        return TaxonomyResult(labels=labels)


def classify(dataset: ScalingDataset) -> TaxonomyResult:
    """Module-level convenience wrapper."""
    return TaxonomyClassifier().classify(dataset)
