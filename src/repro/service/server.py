"""The asyncio HTTP query service (stdlib only).

:class:`GpuScaleService` binds a plain ``asyncio.start_server`` socket
and speaks just enough HTTP/1.1 — request line, headers,
``Content-Length`` bodies, keep-alive — to serve JSON queries against
the engine registry through the micro-batcher:

====================  ======  =========================================
endpoint              method  answers
====================  ======  =========================================
``/v1/simulate``      POST    one kernel at a point or over a grid
``/v1/classify``      POST    taxonomy label for one kernel
``/v1/whatif``        POST    ranked optimisation counterfactuals
``/v1/transfer``      POST    cross-family surface + class prediction
``/v1/optimize``      POST    energy-optimal config or Pareto frontier
``/v1/coschedule``    POST    co-resident pair contention point/surface
``/v1/engines``       GET     the engine registry's capability table
``/v1/families``      GET     the microarchitecture-family registry
``/healthz``          GET     liveness (``ok`` / ``draining``)
``/metrics``          GET     Prometheus text exposition
====================  ======  =========================================

The service is layered so both serving modes share one code path:
socket handling and HTTP parsing live here, request validation in
:mod:`repro.service.schema`, and query execution behind an *executor*
seam — anything with ``start`` / ``submit`` / ``stop`` / ``pending``.
With ``workers <= 1`` the executor is the in-process
:class:`~repro.service.batcher.MicroBatcher`; with ``workers > 1`` it
is a :class:`~repro.service.router.FleetExecutor` sharding queries
onto worker processes. Endpoint handlers cannot tell the difference.

Overload semantics (see DESIGN.md "Service architecture"): a full
admission queue answers 429 with a ``Retry-After`` computed from the
queue's depth and observed drain rate, a per-request timeout or a
draining server answers 503, malformed bodies answer structured 400s
from :mod:`repro.service.schema`. Shutdown is graceful by default: the
listener closes, in-flight requests finish, the executor drains, and
only then do idle keep-alive connections get torn down.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.service import schema
from repro.service.batcher import (
    DeadlineExceededError,
    EnergyGridQuery,
    GridQuery,
    MicroBatcher,
    OverloadError,
    PairGridQuery,
    PointQuery,
    ServiceClosedError,
    ServiceTimeoutError,
)
from repro.service.chaos import ChaosConfig
from repro.service.metrics import ServiceMetrics
from repro.service.resilience import (
    BROWNOUT_MODES,
    BrownoutExecutor,
    WorkerUnavailableError,
    deadline_from_timeout,
)

#: Hard caps on what one request may ship.
MAX_REQUEST_LINE = 8192
MAX_HEADERS = 100
MAX_BODY_BYTES = 2 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpViolation(Exception):
    """A malformed HTTP request (connection closes after the error)."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one ``gpuscale serve`` instance.

    ``workers`` selects the serving mode: ``1`` (the default) runs the
    batcher in-process; ``N > 1`` runs a router in this process and
    ``N`` spawned engine-worker processes, each with its own batcher
    configured by the same ``max_batch`` / ``max_wait_ms`` /
    ``queue_limit`` knobs.

    Resilience knobs (PR 7): ``brownout`` selects the degraded-tier
    policy (``off`` refuses work under pressure as before, ``auto``
    answers saturated or breaker-blocked grid queries from the
    predictor tier with an explicit fidelity marker, ``force`` sends
    *every* grid query there — a load-shedding and testing mode);
    ``restart_budget`` / ``restart_window_s`` bound worker respawns
    per sliding window; ``hedge_fraction`` is how much of a request's
    deadline budget may burn before a grid query is hedged to a
    second worker (``None`` disables hedging); ``chaos`` carries a
    parsed fault-injection schedule into every worker.
    """

    host: str = "127.0.0.1"
    port: int = 8000
    engine: str = "interval"
    max_batch: int = 64
    max_wait_ms: float = 2.0
    queue_limit: int = 1024
    request_timeout_s: float = 30.0
    use_cache: bool = True
    cache_dir: Optional[str] = None
    workers: int = 1
    brownout: str = "off"
    restart_budget: int = 8
    restart_window_s: float = 60.0
    hedge_fraction: Optional[float] = 0.5
    chaos: Optional[ChaosConfig] = None

    def __post_init__(self) -> None:
        if self.brownout not in BROWNOUT_MODES:
            raise ValueError(
                f"brownout must be one of {BROWNOUT_MODES}, got "
                f"{self.brownout!r}"
            )


def _error_payload(code: str, message: str) -> Dict[str, Any]:
    return {"error": {"code": code, "message": message}}


class GpuScaleService:
    """One serving instance: listener + executor + metrics.

    ``self.executor`` is the query-execution seam — a
    :class:`MicroBatcher` (single-process) or a
    :class:`~repro.service.router.FleetExecutor` (``workers > 1``).
    ``self.batcher`` stays as an alias for the single-process case and
    backwards compatibility.
    """

    def __init__(
        self,
        config: ServiceConfig = ServiceConfig(),
        simulator: Optional[Any] = None,
        cache: Optional[Any] = None,
        metrics: Optional[ServiceMetrics] = None,
    ):
        self.config = config
        self.metrics = metrics or ServiceMetrics()
        self.fleet = None
        if config.workers > 1:
            if simulator is not None or cache is not None:
                raise ValueError(
                    "fleet mode builds per-worker simulators and "
                    "caches; injecting them is single-process only"
                )
            from repro.service.router import FleetExecutor

            self._simulator = None
            self.fleet = FleetExecutor(
                config.workers,
                engine=config.engine,
                max_batch=config.max_batch,
                max_wait_ms=config.max_wait_ms,
                queue_limit=config.queue_limit,
                use_cache=config.use_cache,
                cache_dir=config.cache_dir,
                chaos=config.chaos,
                metrics=self.metrics,
                restart_budget=config.restart_budget,
                restart_window_s=config.restart_window_s,
                hedge_fraction=config.hedge_fraction,
            )
            self.executor: Any = self.fleet
        else:
            from repro.gpu.simulator import GpuSimulator

            self._simulator = simulator or GpuSimulator(config.engine)
            if cache is None and config.use_cache:
                from repro.sweep.cache import SweepCache

                cache = SweepCache(config.cache_dir)
            self.executor = MicroBatcher(
                self._simulator,
                max_batch=config.max_batch,
                max_wait_ms=config.max_wait_ms,
                queue_limit=config.queue_limit,
                cache=cache,
                metrics=self.metrics,
            )
        self.batcher = self.executor
        # The surrogate tier serves two policies over one engine and
        # thread: brownout (pressure pushes queries there) and
        # tolerance routing (callers opt in per query). The former is
        # config-gated; the latter is always available.
        self._predictor_tier = BrownoutExecutor()
        self.brownout: Optional[BrownoutExecutor] = None
        if config.brownout != "off":
            self.brownout = self._predictor_tier
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._connections: "set[asyncio.Task]" = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the real one)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        """True once shutdown has begun."""
        return self._draining

    async def start(self) -> None:
        """Start the executor (batcher or fleet), bind the listener."""
        await self.executor.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
        )

    async def serve_forever(self) -> None:
        """Serve until cancelled (used by ``gpuscale serve``)."""
        if self._server is None:
            raise RuntimeError("service is not started")
        await self._server.serve_forever()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop serving.

        Graceful (``drain=True``): refuse new work, let in-flight
        requests and every admitted query finish, then close idle
        connections. ``drain=False`` tears everything down at once.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            await self._idle.wait()
        await self.executor.stop(drain=drain)
        self._predictor_tier.stop()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        self._connections.clear()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                    and not self._draining
                )
                self._inflight += 1
                self._idle.clear()
                self.metrics.adjust_inflight(1)
                started = time.perf_counter()
                try:
                    status, payload, content_type, extra = (
                        await self._dispatch(method, path, body)
                    )
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                    self.metrics.adjust_inflight(-1)
                self.metrics.record_request(
                    path, status, time.perf_counter() - started
                )
                await self._write_response(
                    writer, status, payload, content_type,
                    keep_alive=keep_alive, extra_headers=extra,
                )
                if not keep_alive:
                    break
        except _HttpViolation as violation:
            await self._write_response(
                writer,
                violation.status,
                json.dumps(
                    _error_payload(violation.code, violation.message)
                ),
                "application/json",
                keep_alive=False,
            )
        except (
            asyncio.CancelledError,
            asyncio.IncompleteReadError,
            ConnectionError,
        ):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            line = await reader.readline()
        except ValueError as exc:  # line longer than the stream limit
            raise _HttpViolation(
                400, "request_too_long", str(exc)
            ) from exc
        if not line:
            return None
        if len(line) > MAX_REQUEST_LINE:
            raise _HttpViolation(
                400, "request_too_long", "request line exceeds 8 KiB"
            )
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpViolation(
                400, "malformed_request",
                f"unparseable request line {line!r}",
            )
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            header_line = await reader.readline()
            if header_line in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= MAX_HEADERS:
                raise _HttpViolation(
                    400, "malformed_request", "too many headers"
                )
            name, sep, value = (
                header_line.decode("latin-1").partition(":")
            )
            if not sep:
                raise _HttpViolation(
                    400, "malformed_request",
                    f"unparseable header {header_line!r}",
                )
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            raise _HttpViolation(
                400, "malformed_request",
                f"unparseable Content-Length {raw_length!r}",
            ) from None
        if length > MAX_BODY_BYTES:
            raise _HttpViolation(
                413, "body_too_large",
                f"body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte cap",
            )
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        content_type: str,
        keep_alive: bool,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        encoded = body.encode()
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(encoded)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + encoded)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, str, str, Optional[Dict[str, str]]]:
        """Route one request; returns (status, body, type, headers)."""
        routes = {
            ("GET", "/healthz"): self._get_healthz,
            ("GET", "/metrics"): self._get_metrics,
            ("GET", "/v1/engines"): self._get_engines,
            ("GET", "/v1/families"): self._get_families,
            ("POST", "/v1/simulate"): self._post_simulate,
            ("POST", "/v1/classify"): self._post_classify,
            ("POST", "/v1/whatif"): self._post_whatif,
            ("POST", "/v1/transfer"): self._post_transfer,
            ("POST", "/v1/optimize"): self._post_optimize,
            ("POST", "/v1/coschedule"): self._post_coschedule,
        }
        handler = routes.get((method, path))
        if handler is None:
            known_paths = {p for _, p in routes}
            if path in known_paths:
                return (
                    405,
                    json.dumps(_error_payload(
                        "method_not_allowed",
                        f"{method} is not supported on {path}",
                    )),
                    "application/json",
                    None,
                )
            return (
                404,
                json.dumps(_error_payload(
                    "not_found", f"no endpoint at {path}"
                )),
                "application/json",
                None,
            )
        if method == "POST" and self._draining:
            return (
                503,
                json.dumps(_error_payload(
                    "draining", "server is shutting down"
                )),
                "application/json",
                None,
            )
        try:
            if method == "POST":
                payload = self._decode_json(body)
                status, response = await handler(payload)
            else:
                status, response = await handler()
        except schema.RequestError as exc:
            self.metrics.record_rejection("invalid_request")
            return (
                400, json.dumps(exc.to_payload()),
                "application/json", None,
            )
        except OverloadError as exc:
            self.metrics.record_rejection("overload")
            return (
                429,
                json.dumps(_error_payload("overloaded", str(exc))),
                "application/json",
                {"Retry-After": str(self._retry_after_s(exc))},
            )
        except DeadlineExceededError as exc:
            # Before ServiceTimeoutError: a deadline miss IS a
            # timeout, but callers deserve the sharper code.
            self.metrics.record_rejection("deadline")
            return (
                503,
                json.dumps(
                    _error_payload("deadline_exceeded", str(exc))
                ),
                "application/json",
                None,
            )
        except ServiceTimeoutError as exc:
            self.metrics.record_rejection("timeout")
            return (
                503,
                json.dumps(_error_payload("timeout", str(exc))),
                "application/json",
                None,
            )
        except WorkerUnavailableError as exc:
            # Every worker for the shard is down or breaker-open and
            # brownout was off (or the query was not brownout-able).
            self.metrics.record_rejection("unavailable")
            return (
                503,
                json.dumps(
                    _error_payload("no_worker_available", str(exc))
                ),
                "application/json",
                None,
            )
        except ServiceClosedError as exc:
            self.metrics.record_rejection("draining")
            return (
                503,
                json.dumps(_error_payload("draining", str(exc))),
                "application/json",
                None,
            )
        except ConfigurationError as exc:
            # e.g. a point query against a grid-only engine.
            return (
                400,
                json.dumps(_error_payload(
                    "unsupported_query", str(exc)
                )),
                "application/json",
                None,
            )
        except WorkloadError as exc:
            # A request-supplied kernel that breaks a model invariant
            # (e.g. a what-if transform on a degenerate inline kernel).
            return (
                400,
                json.dumps(_error_payload(
                    "invalid_kernel", str(exc)
                )),
                "application/json",
                None,
            )
        except SimulationError as exc:
            return (
                500,
                json.dumps(_error_payload(
                    "simulation_failed", str(exc)
                )),
                "application/json",
                None,
            )
        except ReproError as exc:
            return (
                500,
                json.dumps(_error_payload(
                    "internal_error", str(exc)
                )),
                "application/json",
                None,
            )
        if isinstance(response, str):  # /metrics renders its own text
            return (
                status, response,
                "text/plain; version=0.0.4; charset=utf-8", None,
            )
        return status, json.dumps(response), "application/json", None

    def _retry_after_s(self, exc: OverloadError) -> int:
        """Whole seconds for the 429 ``Retry-After`` header.

        Prefers the estimate the shedding component attached to the
        exception (queue depth / observed drain rate); falls back to
        asking the executor live, then to one second.
        """
        estimate = getattr(exc, "retry_after", None)
        if estimate is None:
            probe = getattr(self.executor, "retry_after_s", None)
            if probe is not None:
                estimate = probe()
        if estimate is None or not estimate > 0:
            estimate = 1.0
        return max(1, math.ceil(estimate))

    @staticmethod
    def _decode_json(body: bytes) -> Any:
        if not body:
            raise schema.RequestError(
                "invalid_json", "POST body is empty; send a JSON object"
            )
        try:
            return json.loads(body)
        except json.JSONDecodeError as exc:
            raise schema.RequestError(
                "invalid_json", f"body is not valid JSON: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Deadlines and brownout
    # ------------------------------------------------------------------

    def _request_budget(
        self, request: Any
    ) -> Tuple[float, float]:
        """The effective timeout and absolute deadline of a request.

        The caller's ``timeout_ms`` can only shrink the server's
        configured ceiling, never grow it; the deadline is absolute
        ``time.monotonic()`` and travels with every query all the way
        into the worker's batcher.
        """
        timeout = self.config.request_timeout_s
        asked = getattr(request, "timeout_s", None)
        if asked is not None:
            timeout = min(timeout, asked)
        return timeout, deadline_from_timeout(timeout)

    async def _submit_grid(
        self,
        query: GridQuery,
        timeout: float,
        deadline: float,
        tolerance: Optional[float] = None,
    ) -> Tuple[Any, Optional[str]]:
        """One grid query through tier routing and brownout policy.

        Returns ``(result, reason)`` — the reason is ``None`` when the
        exact tier answered normally. A *tolerance* routes the query to
        the cheapest fidelity tier whose measured error fits: the
        predictor (seven exact probes + surface transplant) when its
        per-space leave-one-out error is within tolerance, the exact
        tier otherwise — exact tiers have zero error, so they satisfy
        any tolerance and are the unconditional fallback. Brownout is
        orthogonal and keeps its PR 7 semantics: ``force`` routes every
        grid query to the degraded tier, ``auto`` falls back there
        only when the exact tier refuses (saturation or
        breaker-blocked workers).
        """
        from repro.gpu.uarch import family_label

        self.metrics.record_family(family_label(query.space.uarch))
        mode = self.config.brownout
        if mode == "force" and self.brownout is not None:
            return await self._degraded(query, "forced")
        if tolerance is not None:
            routed = await self._route_by_tolerance(query, tolerance)
            if routed is not None:
                return routed
        try:
            result = await self.executor.submit(
                query, timeout=timeout, deadline=deadline
            )
            if tolerance is None:
                self.metrics.record_tier("exact", "default")
            return result, None
        except OverloadError:
            if mode == "auto" and self.brownout is not None:
                return await self._degraded(query, "saturation")
            raise
        except WorkerUnavailableError:
            if mode == "auto" and self.brownout is not None:
                return await self._degraded(query, "breaker")
            raise

    async def _route_by_tolerance(
        self, query: GridQuery, tolerance: float
    ) -> Optional[Tuple[Any, str]]:
        """The approximate tier's answer, or ``None`` for exact.

        Any surrogate-tier failure — no measured error, error above
        tolerance, or the predictor itself erroring — resolves to the
        exact tier: tolerance can only ever relax fidelity, never
        availability.
        """
        try:
            error = await self._predictor_tier.error_estimate_async(
                query.space
            )
            if error is not None and error <= tolerance:
                result = await self._predictor_tier.submit(
                    query, fidelity="approximate"
                )
                self.metrics.record_tier("predictor", "tolerance")
                return result, "tolerance"
        except Exception:
            pass
        self.metrics.record_tier("exact", "tolerance_fallback")
        return None

    async def _degraded(
        self, query: GridQuery, reason: str
    ) -> Tuple[Any, str]:
        self.metrics.record_degraded(reason)
        return await self.brownout.submit(query), reason

    @staticmethod
    def _fidelity_fields(
        result: Any, reason: Optional[str]
    ) -> Dict[str, Any]:
        """The response keys that declare what the caller got."""
        fidelity = getattr(result, "fidelity", "exact")
        fields: Dict[str, Any] = {"fidelity": fidelity}
        if fidelity != "exact":
            fields["fidelity_error"] = result.error_estimate
        if fidelity == "degraded":
            fields["degraded_reason"] = reason
        elif fidelity == "approximate":
            fields["tier"] = "predictor"
        return fields

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    async def _get_healthz(self) -> Tuple[int, Dict[str, Any]]:
        from repro.gpu.uarch import family_names

        status = "draining" if self._draining else "ok"
        payload: Dict[str, Any] = {
            "status": status,
            "engine": getattr(
                self._simulator, "engine_name", self.config.engine
            )
            or self.config.engine,
            "queue_depth": self.executor.pending,
            "brownout": self.config.brownout,
            "families": list(family_names()),
        }
        if self.fleet is not None:
            states = self.fleet.worker_states()
            payload["workers"] = states
            if not self._draining and not all(
                state["alive"] for state in states
            ):
                # A dead worker is being restarted (or its shard is
                # lost); either way the fleet is not fully healthy.
                payload["status"] = "degraded"
        return 200, payload

    async def _get_metrics(self) -> Tuple[int, str]:
        if self.fleet is not None:
            return 200, await self.fleet.render_metrics(
                self.metrics.registry
            )
        return 200, self.metrics.render()

    async def _get_engines(self) -> Tuple[int, Dict[str, Any]]:
        from repro.gpu.engine import list_engines

        engines = [
            {
                "name": reg.name,
                "family": reg.descriptor.family,
                "version": reg.descriptor.version,
                "capabilities": reg.capabilities.as_dict(),
                "fidelity": reg.descriptor.fidelity,
                "error_budget": reg.descriptor.error_budget,
                "fingerprint_material": (
                    reg.descriptor.fingerprint_material()
                ),
                "summary": reg.summary,
            }
            for reg in list_engines()
        ]
        return 200, {"engines": engines}

    async def _get_families(self) -> Tuple[int, Dict[str, Any]]:
        from repro.gpu.uarch import list_families

        return 200, {
            "families": [family.to_dict() for family in list_families()]
        }

    async def _post_simulate(
        self, payload: Any
    ) -> Tuple[int, Dict[str, Any]]:
        request = schema.parse_simulate(payload)
        timeout, deadline = self._request_budget(request)
        if request.is_grid:
            result, reason = await self._submit_grid(
                GridQuery(kernel=request.kernel, space=request.space),
                timeout,
                deadline,
                tolerance=request.tolerance,
            )
            space = request.space
            return 200, {
                "kernel": result.kernel_name,
                "space": {
                    "cu_counts": list(space.cu_counts),
                    "engine_mhz": list(space.engine_mhz),
                    "memory_mhz": list(space.memory_mhz),
                },
                "items_per_second": result.items_per_second.tolist(),
                "time_s": result.time_s.tolist(),
                "from_cache": result.from_cache,
                **self._fidelity_fields(result, reason),
            }
        result = await self.executor.submit(
            PointQuery(kernel=request.kernel, config=request.config),
            timeout=timeout,
            deadline=deadline,
        )
        config = request.config
        return 200, {
            "kernel": result.kernel_name,
            "config": {
                "cu_count": config.cu_count,
                "engine_mhz": config.engine_mhz,
                "memory_mhz": config.memory_mhz,
            },
            "time_s": result.time_s,
            "items_per_second": result.items_per_second,
            "fidelity": "exact",
        }

    async def _post_classify(
        self, payload: Any
    ) -> Tuple[int, Dict[str, Any]]:
        from repro.sweep.dataset import KernelRecord, ScalingDataset
        from repro.taxonomy.classifier import classify
        from repro.taxonomy.explain import explain_label

        request = schema.parse_classify(payload)
        timeout, deadline = self._request_budget(request)
        result, reason = await self._submit_grid(
            GridQuery(kernel=request.kernel, space=request.space),
            timeout,
            deadline,
            tolerance=request.tolerance,
        )
        dataset = ScalingDataset(
            request.space,
            [KernelRecord.from_full_name(result.kernel_name)],
            np.asarray(result.items_per_second)[np.newaxis, ...],
        )
        label = classify(dataset).labels[0]
        return 200, {
            "kernel": result.kernel_name,
            "category": label.category.value,
            "behaviours": {
                "cu": label.cu_behaviour.value,
                "engine": label.engine_behaviour.value,
                "memory": label.memory_behaviour.value,
            },
            "explanation": explain_label(label),
            "from_cache": result.from_cache,
            **self._fidelity_fields(result, reason),
        }

    async def _post_transfer(
        self, payload: Any
    ) -> Tuple[int, Dict[str, Any]]:
        from repro.predict.transfer import transfer_predictor
        from repro.sweep.dataset import KernelRecord, ScalingDataset
        from repro.taxonomy.classifier import classify

        request = schema.parse_transfer(payload)
        timeout, deadline = self._request_budget(request)
        # Fitting the cross-family corpus costs two batch studies; it
        # is memoised per family pair, so only the first request for a
        # pair pays — off the event loop either way.
        predictor = await asyncio.to_thread(
            transfer_predictor,
            request.source_family,
            request.target_family,
        )
        source_space = predictor.source.space
        result, reason = await self._submit_grid(
            GridQuery(kernel=request.kernel, space=source_space),
            timeout,
            deadline,
        )
        prediction = predictor.predict_cube(
            np.asarray(result.items_per_second),
            kernel_name=result.kernel_name,
        )
        target_space = predictor.target.space
        dataset = ScalingDataset(
            target_space,
            [KernelRecord.from_full_name(result.kernel_name)],
            prediction.cube[np.newaxis, ...],
        )
        label = classify(dataset).labels[0]
        transfer_error = await asyncio.to_thread(
            predictor.measured_error
        )
        self.metrics.record_transfer(
            request.source_family, request.target_family
        )
        return 200, {
            "kernel": result.kernel_name,
            "source_family": request.source_family,
            "target_family": request.target_family,
            "category": label.category.value,
            "behaviours": {
                "cu": label.cu_behaviour.value,
                "engine": label.engine_behaviour.value,
                "memory": label.memory_behaviour.value,
            },
            "neighbours": list(prediction.neighbours),
            "neighbour_distances": list(
                prediction.neighbour_distances
            ),
            "transfer_error": transfer_error,
            "target_space": {
                "cu_counts": list(target_space.cu_counts),
                "engine_mhz": list(target_space.engine_mhz),
                "memory_mhz": list(target_space.memory_mhz),
            },
            "items_per_second": prediction.cube.tolist(),
            "from_cache": result.from_cache,
            **self._fidelity_fields(result, reason),
        }

    async def _post_whatif(
        self, payload: Any
    ) -> Tuple[int, Dict[str, Any]]:
        from repro.predict.what_if import STANDARD_SCENARIOS

        request = schema.parse_whatif(payload)
        timeout, deadline = self._request_budget(request)
        # Baseline plus every scenario submitted together: the batcher
        # coalesces all seven evaluations into one micro-batch.
        queries = [
            PointQuery(kernel=request.kernel, config=request.config)
        ] + [
            PointQuery(
                kernel=scenario.apply(request.kernel),
                config=request.config,
            )
            for scenario in STANDARD_SCENARIOS
        ]
        results = await asyncio.gather(
            *(
                self.executor.submit(
                    q, timeout=timeout, deadline=deadline
                )
                for q in queries
            )
        )
        baseline = results[0].items_per_second
        scenarios = sorted(
            (
                {
                    "name": scenario.name,
                    "description": scenario.description,
                    "speedup": result.items_per_second / baseline,
                    "optimised_items_per_second": (
                        result.items_per_second
                    ),
                }
                for scenario, result in zip(
                    STANDARD_SCENARIOS, results[1:]
                )
            ),
            key=lambda row: -row["speedup"],
        )
        config = request.config
        return 200, {
            "kernel": request.kernel.full_name,
            "config": {
                "cu_count": config.cu_count,
                "engine_mhz": config.engine_mhz,
                "memory_mhz": config.memory_mhz,
            },
            "baseline_items_per_second": baseline,
            "scenarios": scenarios,
        }

    @staticmethod
    def _config_payload(config: Any) -> Dict[str, Any]:
        return {
            "cu_count": config.cu_count,
            "engine_mhz": config.engine_mhz,
            "memory_mhz": config.memory_mhz,
        }

    async def _post_optimize(
        self, payload: Any
    ) -> Tuple[int, Dict[str, Any]]:
        """Energy-optimal serving over the full surface.

        The surface (solo energy, or pair makespan/pair energy) is
        computed wherever the executor routes it; the argmin / Pareto
        sweep runs *here* on the returned arrays. Selection is pure
        NumPy over bits that cross the fleet transport unchanged, so
        single-process and fleet answers are identical by
        construction.
        """
        from repro.errors import AnalysisError
        from repro.power.dvfs_opt import (
            frontier_points,
            select_optimum,
        )

        request = schema.parse_optimize(payload)
        timeout, deadline = self._request_budget(request)
        if request.kernel_b is None:
            result = await self.executor.submit(
                EnergyGridQuery(
                    kernel=request.kernel, space=request.space
                ),
                timeout=timeout,
                deadline=deadline,
            )
            time_s = np.asarray(result.time_s)
            names = {"kernel": result.kernel_name}
            from_cache = result.from_cache
        else:
            result = await self.executor.submit(
                PairGridQuery(
                    kernel_a=request.kernel,
                    kernel_b=request.kernel_b,
                    space=request.space,
                ),
                timeout=timeout,
                deadline=deadline,
            )
            # A pair is priced on its makespan and pair energy: the
            # objective optimises the co-run as a whole.
            time_s = np.asarray(result.makespan_s)
            names = {
                "kernel": result.kernel_a,
                "kernel_b": result.kernel_b,
            }
            from_cache = False
        energy_j = np.asarray(result.energy_j)
        power_w = np.asarray(result.power_w)
        self.metrics.record_optimize(request.objective.value)
        space = request.space
        try:
            if request.frontier:
                points = frontier_points(
                    space, time_s, energy_j, power_w,
                    request.power_cap_w,
                )
                return 200, {
                    **names,
                    "objective": request.objective.value,
                    "power_cap_w": request.power_cap_w,
                    "frontier": [
                        {
                            "config": self._config_payload(p.config),
                            "time_s": p.time_s,
                            "energy_j": p.energy_j,
                            "power_w": p.power_w,
                            "edp": p.edp,
                        }
                        for p in points
                    ],
                    "from_cache": from_cache,
                }
            c, e, m = select_optimum(
                time_s, energy_j, power_w,
                request.objective, request.power_cap_w,
            )
        except AnalysisError as exc:
            # An unsatisfiable power cap is the caller's constraint
            # problem, not a server fault: answer a structured 400.
            raise schema.RequestError(
                "unsatisfiable_power_cap", str(exc), field="power_cap_w"
            ) from exc
        config = space.config(c, e, m)
        return 200, {
            **names,
            "objective": request.objective.value,
            "power_cap_w": request.power_cap_w,
            "config": self._config_payload(config),
            "time_s": float(time_s[c, e, m]),
            "energy_j": float(energy_j[c, e, m]),
            "power_w": float(power_w[c, e, m]),
            "edp": float(energy_j[c, e, m] * time_s[c, e, m]),
            "from_cache": from_cache,
        }

    async def _post_coschedule(
        self, payload: Any
    ) -> Tuple[int, Dict[str, Any]]:
        """One co-resident pair: point breakdown or surface summary."""
        from repro.sweep.space import ConfigurationSpace

        request = schema.parse_coschedule(payload)
        timeout, deadline = self._request_budget(request)
        if request.is_point:
            point = request.config
            space = ConfigurationSpace(
                cu_counts=(point.cu_count,),
                engine_mhz=(point.engine_mhz,),
                memory_mhz=(point.memory_mhz,),
            )
        else:
            space = request.space
        result = await self.executor.submit(
            PairGridQuery(
                kernel_a=request.kernel_a,
                kernel_b=request.kernel_b,
                space=space,
            ),
            timeout=timeout,
            deadline=deadline,
        )
        self.metrics.record_coschedule()
        stp = np.asarray(result.stp)
        antt = np.asarray(result.antt)
        if request.is_point:
            idx = (0, 0, 0)
            return 200, {
                "kernel_a": result.kernel_a,
                "kernel_b": result.kernel_b,
                "config": self._config_payload(request.config),
                "a": {
                    "time_s": float(result.time_a[idx]),
                    "solo_time_s": float(result.solo_time_a[idx]),
                    "slowdown": float(result.slowdown_a[idx]),
                },
                "b": {
                    "time_s": float(result.time_b[idx]),
                    "solo_time_s": float(result.solo_time_b[idx]),
                    "slowdown": float(result.slowdown_b[idx]),
                },
                "makespan_s": float(result.makespan_s[idx]),
                "power_w": float(result.power_w[idx]),
                "energy_j": float(result.energy_j[idx]),
                "stp": float(stp[idx]),
                "antt": float(antt[idx]),
            }
        best = np.unravel_index(int(np.argmax(stp)), stp.shape)
        best_config = space.config(*(int(i) for i in best))
        return 200, {
            "kernel_a": result.kernel_a,
            "kernel_b": result.kernel_b,
            "space": {
                "cu_counts": list(space.cu_counts),
                "engine_mhz": list(space.engine_mhz),
                "memory_mhz": list(space.memory_mhz),
            },
            "stp": {
                "min": float(stp.min()),
                "mean": float(stp.mean()),
                "max": float(stp.max()),
            },
            "antt": {
                "min": float(antt.min()),
                "mean": float(antt.mean()),
                "max": float(antt.max()),
            },
            "slowdown_a": {
                "min": float(result.slowdown_a.min()),
                "max": float(result.slowdown_a.max()),
            },
            "slowdown_b": {
                "min": float(result.slowdown_b.min()),
                "max": float(result.slowdown_b.max()),
            },
            "best_stp": {
                "config": self._config_payload(best_config),
                "stp": float(stp[best]),
                "antt": float(antt[best]),
            },
        }


async def run_service(
    config: ServiceConfig,
    *,
    stop_event: Optional[asyncio.Event] = None,
    ready_callback=None,
) -> None:
    """Start a service, announce readiness, serve until *stop_event*.

    The CLI's async main: installs nothing itself (signal handling is
    the caller's job), drains gracefully once *stop_event* fires.
    """
    service = GpuScaleService(config)
    await service.start()
    if ready_callback is not None:
        ready_callback(service)
    if stop_event is None:
        stop_event = asyncio.Event()
    try:
        await stop_event.wait()
    finally:
        await service.shutdown(drain=True)
