"""Framed IPC between the fleet router and its engine workers.

The router and each worker share one ``socket.socketpair`` wrapped in
asyncio streams. Everything on the wire is a *frame*: a 4-byte
big-endian length prefix followed by a pickled tuple whose first
element names the frame kind. Pickle is safe here — both ends are the
same trusted codebase, the socket is inherited (never bound to a
port), and the payloads are this module's own tuples.

Three translation layers live here so ``router.py`` and ``worker.py``
stay symmetric:

* **queries** travel as compact references, not full objects: a
  catalog kernel is its ``suite/program.kernel`` name (the worker
  re-resolves it from its own catalog index), an inline kernel is its
  ``to_dict()`` payload, and the paper grid is the literal string
  ``"paper"``. At 5k req/s re-pickling full :class:`Kernel` objects
  per query is measurable; names are not.
* **grid results** return over the PR 3 ``multiprocessing.
  shared_memory`` path: the worker copies the surface into a fresh
  segment and ships only its name + shape, the router copies it out
  and unlinks. Both sides detach the segment from their resource
  tracker (bpo-39959, same workaround as :mod:`repro.sweep.parallel`)
  so neither emits spurious leak warnings nor unlinks early. If
  shared memory is unavailable the array falls back to riding the
  frame itself — bit-identical either way.
* **errors** cross as ``(code, message, extra)`` triples and are
  rebuilt into the same exception types the in-process
  :class:`~repro.service.batcher.MicroBatcher` raises, so the server's
  status mapping is oblivious to which mode answered.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.service.batcher import (
    DeadlineExceededError,
    EnergyGridQuery,
    EnergyGridResult,
    GridQuery,
    GridResult,
    OverloadError,
    PairGridQuery,
    PairGridResult,
    PointQuery,
    PointResult,
    Query,
    ServiceClosedError,
    ServiceTimeoutError,
)
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace

#: Frames larger than this are refused (a grid surface rides shared
#: memory, so legitimate frames stay small).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: The length prefix is parsed *signed* on purpose: a corrupted
#: high bit then reads as an impossible negative length and is
#: refused outright, instead of masquerading as a multi-gigabyte
#: announcement.
_LENGTH = struct.Struct(">i")


class TransportError(ReproError):
    """A malformed or oversized frame on a router-worker socket."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def encode_frame(frame: Tuple[Any, ...]) -> bytes:
    """Serialise one frame (length prefix + pickle) to raw bytes."""
    blob = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(blob)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return _LENGTH.pack(len(blob)) + blob


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[Any, ...]]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TransportError(
            "peer closed mid-frame (truncated length prefix)"
        ) from exc
    (length,) = _LENGTH.unpack(header)
    if length <= 0:
        raise TransportError(
            f"frame announces a non-positive length ({length}); "
            "corrupt length prefix"
        )
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame announces {length} bytes, cap is {MAX_FRAME_BYTES}"
        )
    try:
        blob = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TransportError(
            "peer closed mid-frame (truncated body)"
        ) from exc
    try:
        return pickle.loads(blob)
    except Exception as exc:
        # A flipped byte anywhere in the body surfaces here; after a
        # corrupt frame the stream can no longer be trusted, so the
        # caller treats this like peer death (restart + resubmit).
        raise TransportError(
            f"corrupt frame body ({type(exc).__name__}: {exc})"
        ) from exc


def send_frame(
    writer: asyncio.StreamWriter, frame: Tuple[Any, ...]
) -> None:
    """Queue one frame on *writer* (single ``write`` call, so frames
    from concurrent tasks never interleave)."""
    writer.write(encode_frame(frame))


# ----------------------------------------------------------------------
# Query encoding (router -> worker)
# ----------------------------------------------------------------------


def _catalog_kernel(full_name: str):
    from repro.suites import kernel_by_name

    try:
        return kernel_by_name(full_name)
    except ReproError:
        return None


def encode_kernel(kernel) -> Union[str, dict]:
    """A kernel reference: catalog name when safe, else a full dict.

    The name shortcut is taken only when the catalog entry under that
    name *equals* the request's kernel — an inline kernel that reuses
    a catalog name with different characteristics must travel by
    value or the worker would silently answer for the wrong kernel.
    """
    catalog = _catalog_kernel(kernel.full_name)
    if catalog is not None and (catalog is kernel or catalog == kernel):
        return kernel.full_name
    return kernel.to_dict()


def decode_kernel(ref: Union[str, dict]):
    from repro.kernels.kernel import Kernel
    from repro.suites import kernel_by_name

    if isinstance(ref, str):
        return kernel_by_name(ref)
    return Kernel.from_dict(ref)


def encode_space(space: ConfigurationSpace) -> Union[str, dict]:
    if space is PAPER_SPACE or space == PAPER_SPACE:
        return "paper"
    return space.to_dict()


def decode_space(ref: Union[str, dict]) -> ConfigurationSpace:
    if ref == "paper":
        return PAPER_SPACE
    return ConfigurationSpace.from_dict(ref)


def encode_query(query: Query) -> Tuple[Any, ...]:
    """Compact wire form of one query."""
    if isinstance(query, PointQuery):
        config = query.config
        return (
            "point",
            encode_kernel(query.kernel),
            (config.cu_count, config.engine_mhz, config.memory_mhz),
        )
    if isinstance(query, GridQuery):
        return ("grid", encode_kernel(query.kernel), encode_space(query.space))
    if isinstance(query, EnergyGridQuery):
        return (
            "energygrid",
            encode_kernel(query.kernel),
            encode_space(query.space),
        )
    if isinstance(query, PairGridQuery):
        return (
            "pairgrid",
            encode_kernel(query.kernel_a),
            None if query.kernel_b is None
            else encode_kernel(query.kernel_b),
            encode_space(query.space),
        )
    raise TransportError(f"not a query: {query!r}")


def decode_query(payload: Tuple[Any, ...]) -> Query:
    from repro.gpu.config import HardwareConfig

    kind = payload[0]
    if kind == "point":
        _, kernel_ref, (cu, eng, mem) = payload
        return PointQuery(
            kernel=decode_kernel(kernel_ref),
            config=HardwareConfig(
                cu_count=int(cu), engine_mhz=float(eng),
                memory_mhz=float(mem),
            ),
        )
    if kind == "grid":
        _, kernel_ref, space_ref = payload
        return GridQuery(
            kernel=decode_kernel(kernel_ref),
            space=decode_space(space_ref),
        )
    if kind == "energygrid":
        _, kernel_ref, space_ref = payload
        return EnergyGridQuery(
            kernel=decode_kernel(kernel_ref),
            space=decode_space(space_ref),
        )
    if kind == "pairgrid":
        _, a_ref, b_ref, space_ref = payload
        return PairGridQuery(
            kernel_a=decode_kernel(a_ref),
            kernel_b=None if b_ref is None else decode_kernel(b_ref),
            space=decode_space(space_ref),
        )
    raise TransportError(f"unknown query kind {kind!r}")


# ----------------------------------------------------------------------
# Result encoding (worker -> router)
# ----------------------------------------------------------------------


def _untrack_shared_memory(segment) -> None:
    """Detach *segment* from this process's resource tracker.

    Creating or attaching registers the segment with the tracker
    (bpo-39959); left registered, whichever process exits first would
    unlink a segment the other still owns and both would log spurious
    leak warnings. Ownership here is explicit instead: the router
    unlinks after copying out (see :func:`decode_result`).
    """
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


def encode_result(
    result: Union[
        PointResult, GridResult, EnergyGridResult, PairGridResult
    ],
) -> Tuple[Any, ...]:
    """Wire form of one result; grid surfaces go via shared memory.

    Energy and pair surfaces ride the frame inline: at the paper
    grid's 891 points their arrays total tens of kilobytes, far below
    the frame cap, so a shared-memory round-trip would cost more than
    it saves.
    """
    if isinstance(result, PointResult):
        return (
            "point", result.kernel_name,
            result.time_s, result.items_per_second,
        )
    if isinstance(result, EnergyGridResult):
        return (
            "energy-inline", result.kernel_name,
            np.ascontiguousarray(result.time_s),
            np.ascontiguousarray(result.power_w),
            np.ascontiguousarray(result.energy_j),
            result.global_size, result.from_cache,
        )
    if isinstance(result, PairGridResult):
        return (
            "pair-inline", result.kernel_a, result.kernel_b,
            np.ascontiguousarray(result.time_a),
            None if result.time_b is None
            else np.ascontiguousarray(result.time_b),
            np.ascontiguousarray(result.solo_time_a),
            None if result.solo_time_b is None
            else np.ascontiguousarray(result.solo_time_b),
            np.ascontiguousarray(result.makespan_s),
            np.ascontiguousarray(result.power_w),
            np.ascontiguousarray(result.energy_j),
            result.global_size_a, result.global_size_b,
        )
    array = np.ascontiguousarray(result.items_per_second)
    try:
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes)
        )
    except Exception:
        return (
            "grid-inline", result.kernel_name, array,
            result.global_size, result.from_cache,
        )
    _untrack_shared_memory(segment)
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[...] = array
    name = segment.name
    del view
    segment.close()
    return (
        "grid-shm", result.kernel_name, name,
        array.shape, str(array.dtype),
        result.global_size, result.from_cache,
    )


def decode_result(
    payload: Tuple[Any, ...],
) -> Union[PointResult, GridResult, EnergyGridResult, PairGridResult]:
    """Rebuild a result; attaches, copies out, and unlinks shm."""
    kind = payload[0]
    if kind == "point":
        _, kernel_name, time_s, ips = payload
        return PointResult(
            kernel_name=kernel_name, time_s=time_s,
            items_per_second=ips,
        )
    if kind == "energy-inline":
        (_, kernel_name, time_s, power_w, energy_j,
         global_size, from_cache) = payload
        return EnergyGridResult(
            kernel_name=kernel_name,
            time_s=np.asarray(time_s),
            power_w=np.asarray(power_w),
            energy_j=np.asarray(energy_j),
            global_size=global_size,
            from_cache=from_cache,
        )
    if kind == "pair-inline":
        (_, kernel_a, kernel_b, time_a, time_b, solo_a, solo_b,
         makespan_s, power_w, energy_j, size_a, size_b) = payload
        return PairGridResult(
            kernel_a=kernel_a,
            kernel_b=kernel_b,
            time_a=np.asarray(time_a),
            time_b=None if time_b is None else np.asarray(time_b),
            solo_time_a=np.asarray(solo_a),
            solo_time_b=None if solo_b is None else np.asarray(solo_b),
            makespan_s=np.asarray(makespan_s),
            power_w=np.asarray(power_w),
            energy_j=np.asarray(energy_j),
            global_size_a=size_a,
            global_size_b=size_b,
        )
    if kind == "grid-inline":
        _, kernel_name, array, global_size, from_cache = payload
        return GridResult(
            kernel_name=kernel_name,
            items_per_second=np.asarray(array),
            global_size=global_size,
            from_cache=from_cache,
        )
    if kind == "grid-shm":
        _, kernel_name, name, shape, dtype, global_size, from_cache = (
            payload
        )
        # Attaching registers with the resource tracker (bpo-39959),
        # but unlink() below unregisters again — so unlike the worker
        # side, no manual untrack here: the pair balances itself.
        try:
            segment = shared_memory.SharedMemory(name=name)
        except (OSError, ValueError) as exc:
            raise TransportError(
                f"failed to attach result segment {name!r}: {exc}"
            ) from exc
        try:
            view = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
            array = np.array(view)
            del view
        finally:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                _untrack_shared_memory(segment)
        return GridResult(
            kernel_name=kernel_name,
            items_per_second=array,
            global_size=global_size,
            from_cache=from_cache,
        )
    raise TransportError(f"unknown result kind {kind!r}")


def release_result(payload: Tuple[Any, ...]) -> None:
    """Free a result nobody is waiting for (late answer after a
    timeout): the shm segment must still be unlinked exactly once."""
    if payload and payload[0] == "grid-shm":
        try:
            segment = shared_memory.SharedMemory(name=payload[2])
        except FileNotFoundError:
            return
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            _untrack_shared_memory(segment)


# ----------------------------------------------------------------------
# Error encoding (worker -> router)
# ----------------------------------------------------------------------

_ERROR_CODES = {
    "overload": OverloadError,
    "timeout": ServiceTimeoutError,
    "deadline": DeadlineExceededError,
    "closed": ServiceClosedError,
    "configuration": ConfigurationError,
    "workload": WorkloadError,
    "simulation": SimulationError,
}


def encode_error(exc: BaseException) -> Tuple[str, str, Dict[str, Any]]:
    """Map one exception onto a ``(code, message, extra)`` triple."""
    if isinstance(exc, OverloadError):
        return (
            "overload", str(exc),
            {"retry_after": getattr(exc, "retry_after", None)},
        )
    # Subclass ordering: DeadlineExceededError IS a ServiceTimeoutError.
    if isinstance(exc, DeadlineExceededError):
        return "deadline", str(exc), {}
    if isinstance(exc, ServiceTimeoutError):
        return "timeout", str(exc), {}
    if isinstance(exc, ServiceClosedError):
        return "closed", str(exc), {}
    if isinstance(exc, SimulationError):
        return (
            "simulation", str(exc),
            {"kernel": exc.kernel_name, "reason": exc.reason},
        )
    if isinstance(exc, ConfigurationError):
        return "configuration", str(exc), {}
    if isinstance(exc, WorkloadError):
        return "workload", str(exc), {}
    if isinstance(exc, ReproError):
        return "repro", str(exc), {}
    return "internal", f"{type(exc).__name__}: {exc}", {}


def decode_error(
    code: str, message: str, extra: Dict[str, Any]
) -> ReproError:
    """Rebuild the exception a worker reported."""
    if code == "overload":
        return OverloadError(
            message, retry_after=extra.get("retry_after")
        )
    if code == "simulation":
        return SimulationError(
            extra.get("kernel", "<unknown>"),
            extra.get("reason", message),
        )
    cls = _ERROR_CODES.get(code, ReproError)
    return cls(message)
