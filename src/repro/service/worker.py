"""One engine-worker process of the ``--workers N`` fleet.

A worker is deliberately thin: it owns a :class:`~repro.service.
batcher.MicroBatcher` (and therefore an engine instance, a worker
thread, and optionally a sweep-cache handle) and speaks the
:mod:`repro.service.transport` frame protocol over the socketpair its
router passed in. All HTTP parsing, validation, sharding, and
supervision stay on the router side — the worker only ever sees
already-validated queries, which is what lets the single- and
multi-process modes share the batcher code path unchanged.

Lifecycle: announce ``("ready", worker_id, pid)`` once the batcher is
up, answer ``query``/``ping``/``metrics`` frames until either a
``drain`` frame arrives (finish everything admitted, ack with
``drained``, exit 0) or the socket hits EOF (the router died — tear
down without draining so a killed fleet leaves no orphans).
"""

from __future__ import annotations

import asyncio
import os
import socket
from dataclasses import dataclass
from typing import Optional

from repro.service import transport
from repro.service.batcher import MicroBatcher
from repro.service.metrics import ServiceMetrics


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker needs, picklable for the spawn context."""

    worker_id: int
    engine: str = "interval"
    max_batch: int = 64
    max_wait_ms: float = 2.0
    queue_limit: int = 1024
    use_cache: bool = True
    cache_dir: Optional[str] = None


def worker_main(sock: socket.socket, config: WorkerConfig) -> None:
    """Process entry point (target of ``multiprocessing.Process``)."""
    try:
        asyncio.run(serve_worker(sock, config))
    except KeyboardInterrupt:
        pass


async def serve_worker(
    sock: socket.socket, config: WorkerConfig
) -> None:
    """Run one worker until drained or orphaned."""
    from repro.gpu.simulator import GpuSimulator

    reader, writer = await asyncio.open_connection(sock=sock)
    simulator = GpuSimulator(config.engine)
    cache = None
    if config.use_cache:
        from repro.sweep.cache import SweepCache

        cache = SweepCache(config.cache_dir)
    metrics = ServiceMetrics()
    batcher = MicroBatcher(
        simulator,
        max_batch=config.max_batch,
        max_wait_ms=config.max_wait_ms,
        queue_limit=config.queue_limit,
        cache=cache,
        metrics=metrics,
    )
    await batcher.start()

    loop = asyncio.get_running_loop()
    tasks: "set[asyncio.Task]" = set()

    async def answer(request_id: int, payload, timeout) -> None:
        try:
            query = transport.decode_query(payload)
            result = await batcher.submit(query, timeout=timeout)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            code, message, extra = transport.encode_error(exc)
            frame = ("error", request_id, code, message, extra)
        else:
            frame = ("result", request_id, transport.encode_result(result))
        transport.send_frame(writer, frame)
        await writer.drain()

    transport.send_frame(writer, ("ready", config.worker_id, os.getpid()))
    await writer.drain()

    drained = False
    try:
        while True:
            try:
                frame = await transport.read_frame(reader)
            except (transport.TransportError, ConnectionError):
                break
            if frame is None:  # router closed: we are orphaned
                break
            kind = frame[0]
            if kind == "query":
                _, request_id, payload, timeout = frame
                task = loop.create_task(
                    answer(request_id, payload, timeout)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            elif kind == "ping":
                transport.send_frame(writer, ("pong", frame[1]))
                await writer.drain()
            elif kind == "metrics":
                transport.send_frame(
                    writer,
                    ("metrics", frame[1], metrics.registry.snapshot()),
                )
                await writer.drain()
            elif kind == "drain":
                if tasks:
                    await asyncio.gather(
                        *list(tasks), return_exceptions=True
                    )
                await batcher.stop(drain=True)
                drained = True
                transport.send_frame(writer, ("drained", frame[1]))
                await writer.drain()
                break
    finally:
        for task in list(tasks):
            task.cancel()
        if tasks:
            await asyncio.gather(*list(tasks), return_exceptions=True)
        if not drained and batcher.running:
            await batcher.stop(drain=False)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
