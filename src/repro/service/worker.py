"""One engine-worker process of the ``--workers N`` fleet.

A worker is deliberately thin: it owns a :class:`~repro.service.
batcher.MicroBatcher` (and therefore an engine instance, a worker
thread, and optionally a sweep-cache handle) and speaks the
:mod:`repro.service.transport` frame protocol over the socketpair its
router passed in. All HTTP parsing, validation, sharding, and
supervision stay on the router side — the worker only ever sees
already-validated queries, which is what lets the single- and
multi-process modes share the batcher code path unchanged.

Lifecycle: announce ``("ready", worker_id, pid)`` once the batcher is
up, answer ``query``/``ping``/``metrics`` frames until either a
``drain`` frame arrives (finish everything admitted, ack with
``drained``, exit 0) or the socket hits EOF (the router died — tear
down without draining so a killed fleet leaves no orphans).

Queries arrive as ``("query", id, payload, timeout, deadline)`` where
*deadline* is absolute ``time.monotonic()`` — CLOCK_MONOTONIC is
system-wide on Linux, so the router's clock and ours agree — and is
enforced by the batcher at admission and again per batch, so work the
client has already given up on is cancelled instead of computed.

When a :class:`~repro.service.chaos.ChaosConfig` rides in the worker
config, a seeded :class:`~repro.service.chaos.ChaosInjector` sits in
the delivery path and makes this worker misbehave on schedule: die
before answering, stall, write a truncated or corrupt frame, or
sabotage the shared-memory handoff. Every injected fault is one the
router must already survive in production; the injector just makes
them reproducible. Faults that abandon a query (`kill`, `truncate`,
`corrupt`) are injected *before* the result is computed, so no
shared-memory segment is ever created and then leaked; the
`shm_fail` fault unlinks its own segment before announcing it, so
the router's failed attach leaks nothing either.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import socket
from dataclasses import dataclass
from typing import Optional

from repro.service import transport
from repro.service.batcher import MicroBatcher
from repro.service.chaos import ChaosConfig, ChaosInjector
from repro.service.metrics import ServiceMetrics


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker needs, picklable for the spawn context.

    *generation* counts how many times this worker slot has been
    respawned; it feeds the chaos seed so a restarted worker draws a
    fresh fault sequence instead of deterministically replaying the
    crash that killed its predecessor.
    """

    worker_id: int
    engine: str = "interval"
    max_batch: int = 64
    max_wait_ms: float = 2.0
    queue_limit: int = 1024
    use_cache: bool = True
    cache_dir: Optional[str] = None
    chaos: Optional[ChaosConfig] = None
    generation: int = 0


def worker_main(sock: socket.socket, config: WorkerConfig) -> None:
    """Process entry point (target of ``multiprocessing.Process``)."""
    try:
        asyncio.run(serve_worker(sock, config))
    except KeyboardInterrupt:
        pass


async def serve_worker(
    sock: socket.socket, config: WorkerConfig
) -> None:
    """Run one worker until drained or orphaned."""
    from repro.gpu.simulator import GpuSimulator

    reader, writer = await asyncio.open_connection(sock=sock)
    simulator = GpuSimulator(config.engine)
    cache = None
    if config.use_cache:
        from repro.sweep.cache import SweepCache

        cache = SweepCache(config.cache_dir)
    metrics = ServiceMetrics()
    batcher = MicroBatcher(
        simulator,
        max_batch=config.max_batch,
        max_wait_ms=config.max_wait_ms,
        queue_limit=config.queue_limit,
        cache=cache,
        metrics=metrics,
    )
    await batcher.start()

    injector: Optional[ChaosInjector] = None
    if config.chaos is not None:
        injector = ChaosInjector(
            config.chaos, config.worker_id, config.generation
        )

    loop = asyncio.get_running_loop()
    tasks: "set[asyncio.Task]" = set()

    async def answer(
        request_id: int, payload, timeout, deadline
    ) -> None:
        action = injector.sample() if injector is not None else None
        if action == "kill":
            # Death before the result exists: nothing to leak.
            os._exit(17)
        if action == "truncate":
            # A crash mid-write: announce 64 bytes, deliver fewer,
            # die. The router's read_frame hits IncompleteReadError
            # and treats the stream as dead.
            writer.write(
                transport._LENGTH.pack(64) + b"\x80chaos-truncated"
            )
            with contextlib.suppress(Exception):
                await writer.drain()
            os._exit(18)
        if action == "corrupt":
            # A flipped byte in flight: well-framed garbage. The
            # router's unpickle fails, the stream is no longer
            # trustworthy, and this worker gets restarted.
            blob = b"\x93chaos-corrupt-body"
            writer.write(transport._LENGTH.pack(len(blob)) + blob)
            await writer.drain()
            return
        if action == "hang":
            await asyncio.sleep(config.chaos.hang_s)
        elif action == "delay":
            await asyncio.sleep(config.chaos.delay_ms / 1000.0)
        try:
            query = transport.decode_query(payload)
            result = await batcher.submit(
                query, timeout=timeout, deadline=deadline
            )
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            code, message, extra = transport.encode_error(exc)
            frame = ("error", request_id, code, message, extra)
        else:
            encoded = transport.encode_result(result)
            if action == "shm_fail" and encoded[0] == "grid-shm":
                # Unlink our own segment, then announce it anyway:
                # the router's attach fails but nothing is leaked.
                transport.release_result(encoded)
            frame = ("result", request_id, encoded)
        transport.send_frame(writer, frame)
        await writer.drain()

    transport.send_frame(writer, ("ready", config.worker_id, os.getpid()))
    await writer.drain()

    drained = False
    try:
        while True:
            try:
                frame = await transport.read_frame(reader)
            except (transport.TransportError, ConnectionError):
                break
            if frame is None:  # router closed: we are orphaned
                break
            kind = frame[0]
            if kind == "query":
                if len(frame) == 5:
                    _, request_id, payload, timeout, deadline = frame
                else:  # pre-deadline 4-tuple framing
                    _, request_id, payload, timeout = frame
                    deadline = None
                task = loop.create_task(
                    answer(request_id, payload, timeout, deadline)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            elif kind == "ping":
                transport.send_frame(writer, ("pong", frame[1]))
                await writer.drain()
            elif kind == "metrics":
                transport.send_frame(
                    writer,
                    ("metrics", frame[1], metrics.registry.snapshot()),
                )
                await writer.drain()
            elif kind == "drain":
                if (
                    injector is not None
                    and injector.sample_drain_kill()
                ):
                    # Die mid-drain: in-flight answers abandoned,
                    # drained ack never sent. The router must fail
                    # the stragglers over or error them — never
                    # hang waiting for this ack.
                    os._exit(19)
                if tasks:
                    await asyncio.gather(
                        *list(tasks), return_exceptions=True
                    )
                await batcher.stop(drain=True)
                drained = True
                transport.send_frame(writer, ("drained", frame[1]))
                await writer.drain()
                break
    finally:
        for task in list(tasks):
            task.cancel()
        if tasks:
            await asyncio.gather(*list(tasks), return_exceptions=True)
        if not drained and batcher.running:
            await batcher.stop(drain=False)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
