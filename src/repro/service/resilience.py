"""Fleet resilience primitives: breakers, budgets, deadlines, brownout.

The service's failure-handling policy lives here, separated from the
mechanisms that enforce it (:mod:`repro.service.router` wires breakers
and restart budgets around worker processes, :mod:`repro.service.
server` wires brownout around the executor seam). Everything in this
module is deliberately clock-injected — callers pass ``now`` — so the
state machines are deterministic under test and replayable under the
chaos harness.

Four pieces:

* :class:`CircuitBreaker` — the classic three-state machine guarding
  one worker. Repeated *infrastructure* failures (timeouts, transport
  corruption, process death) within a sliding window open the breaker;
  an open breaker rejects dispatch so the router fails the shard over
  to its ring neighbours; after a cooldown the breaker goes half-open
  and admits probe traffic, closing again on the first success.
  Application errors (a kernel that cannot be simulated) never trip it
  — the worker is healthy, the query is not.
* :class:`RestartBudget` — a sliding-window allowance of worker
  respawns, replacing the old lifetime cap: a long-running fleet may
  restart a flapping worker indefinitely, just never faster than
  *budget* times per *window*. While the budget is exhausted the
  worker stays down (its shard fails over); once the window slides the
  supervisor tries again, so a transient crash storm is survivable
  without resigning the shard forever.
* :class:`Deadline` helpers — requests carry an *absolute* deadline in
  ``time.monotonic()`` terms (CLOCK_MONOTONIC is system-wide on
  Linux, so router and workers agree on it); every hop checks it and
  cancels work the client can no longer benefit from.
* :class:`BrownoutExecutor` — the degraded-fidelity fallback. When
  the exact tier is saturated or breaker-blocked, grid queries are
  answered by the registered ``predictor`` engine (7 exact probes +
  surface transplant) instead of being refused, with an explicit
  ``fidelity="degraded"`` marker and a measured leave-one-out error
  estimate so callers know precisely what they got.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional

from repro.errors import ReproError


class WorkerUnavailableError(ReproError):
    """No worker can currently serve this shard (down or breaker-open)."""


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------


def deadline_from_timeout(
    timeout_s: Optional[float], now: Optional[float] = None
) -> Optional[float]:
    """The absolute monotonic deadline *timeout_s* from *now*."""
    if timeout_s is None:
        return None
    if now is None:
        now = time.monotonic()
    return now + timeout_s


def remaining_s(
    deadline: Optional[float], now: Optional[float] = None
) -> Optional[float]:
    """Seconds left until *deadline* (negative once it has passed)."""
    if deadline is None:
        return None
    if now is None:
        now = time.monotonic()
    return deadline - now


def expired(
    deadline: Optional[float], now: Optional[float] = None
) -> bool:
    """True once *deadline* has passed (never for ``None``)."""
    left = remaining_s(deadline, now)
    return left is not None and left <= 0.0


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------

#: Breaker states (string-valued for cheap /healthz and metrics use).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning of one :class:`CircuitBreaker`.

    *failure_threshold* infrastructure failures within *window_s*
    seconds open the breaker; it stays open for *cooldown_s*, then
    admits probes half-open.
    """

    failure_threshold: int = 5
    window_s: float = 10.0
    cooldown_s: float = 5.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                "failure_threshold must be >= 1, got "
                f"{self.failure_threshold}"
            )
        if self.window_s <= 0 or self.cooldown_s <= 0:
            raise ValueError(
                "window_s and cooldown_s must be > 0, got "
                f"{self.window_s}/{self.cooldown_s}"
            )


class CircuitBreaker:
    """Three-state breaker over one worker's infrastructure health.

    ``closed`` admits everything; *failure_threshold* failures inside
    *window_s* flip it ``open``; after *cooldown_s* the first
    :meth:`allow` transitions it ``half-open`` (probe traffic only in
    the sense that the next failure reopens instantly while the next
    success closes fully). *on_transition* is called with
    ``(old_state, new_state)`` on every edge — the router uses it to
    count breaker opens/closes in ``/metrics``.
    """

    def __init__(
        self,
        config: BreakerConfig = BreakerConfig(),
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        self._config = config
        self._on_transition = on_transition
        self._state = CLOSED
        self._failures: Deque[float] = deque()
        self._opened_at = 0.0

    @property
    def config(self) -> BreakerConfig:
        """The breaker's tuning."""
        return self._config

    def state(self, now: Optional[float] = None) -> str:
        """The current state, advancing ``open`` to ``half-open``
        once the cooldown has elapsed."""
        if now is None:
            now = time.monotonic()
        if (
            self._state == OPEN
            and now - self._opened_at >= self._config.cooldown_s
        ):
            self._transition(HALF_OPEN)
        return self._state

    def allow(self, now: Optional[float] = None) -> bool:
        """May a dispatch go to this worker right now?"""
        return self.state(now) != OPEN

    def record_failure(self, now: Optional[float] = None) -> None:
        """Fold in one infrastructure failure (timeout, corruption,
        death). Never call this for application errors."""
        if now is None:
            now = time.monotonic()
        state = self.state(now)
        if state == HALF_OPEN:
            # The probe failed: straight back to open, fresh cooldown.
            self._opened_at = now
            self._failures.clear()
            self._transition(OPEN)
            return
        self._failures.append(now)
        self._prune(now)
        if (
            state == CLOSED
            and len(self._failures) >= self._config.failure_threshold
        ):
            self._opened_at = now
            self._failures.clear()
            self._transition(OPEN)

    def record_success(self, now: Optional[float] = None) -> None:
        """Fold in one successful round trip."""
        if now is None:
            now = time.monotonic()
        state = self.state(now)
        if state == HALF_OPEN:
            self._transition(CLOSED)
        self._failures.clear()

    def _prune(self, now: float) -> None:
        horizon = now - self._config.window_s
        while self._failures and self._failures[0] < horizon:
            self._failures.popleft()

    def _transition(self, new_state: str) -> None:
        old_state, self._state = self._state, new_state
        if old_state != new_state and self._on_transition is not None:
            self._on_transition(old_state, new_state)


# ----------------------------------------------------------------------
# Restart budget
# ----------------------------------------------------------------------


class RestartBudget:
    """A sliding-window allowance of worker restarts.

    Replaces the old lifetime cap: :meth:`try_acquire` grants at most
    *budget* restarts within any *window_s*-second span and tells the
    caller when the next slot frees up, so a supervisor can sleep
    exactly until a retry becomes legal instead of giving a shard up
    for dead.
    """

    def __init__(self, budget: int = 8, window_s: float = 60.0):
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        self.budget = budget
        self.window_s = window_s
        self._spent: Deque[float] = deque()

    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        while self._spent and self._spent[0] <= horizon:
            self._spent.popleft()

    def available(self, now: Optional[float] = None) -> int:
        """Restart slots currently free."""
        if now is None:
            now = time.monotonic()
        self._prune(now)
        return self.budget - len(self._spent)

    def try_acquire(self, now: Optional[float] = None) -> bool:
        """Take one restart slot if any is free."""
        if now is None:
            now = time.monotonic()
        if self.available(now) <= 0:
            return False
        self._spent.append(now)
        return True

    def next_free_s(self, now: Optional[float] = None) -> float:
        """Seconds until a slot frees (0 when one is free now)."""
        if now is None:
            now = time.monotonic()
        if self.available(now) > 0:
            return 0.0
        return max(0.0, self._spent[0] + self.window_s - now)


# ----------------------------------------------------------------------
# Fidelity brownout
# ----------------------------------------------------------------------

#: Brownout policies accepted by ``gpuscale serve --brownout``.
BROWNOUT_MODES = ("off", "auto", "force")


class BrownoutExecutor:
    """Degraded-fidelity grid answers from the predictor tier.

    Owns one registered ``predictor`` engine instance and a dedicated
    single worker thread (the predictor's per-space corpus cache is
    not thread-safe). :meth:`submit` answers a
    :class:`~repro.service.batcher.GridQuery` with the surrogate
    surface, marked ``fidelity="degraded"`` and carrying the engine's
    measured leave-one-out error for that configuration space — an
    honest answer to "how wrong might this be".

    This is intentionally the *only* degraded tier for now: point
    queries cannot brown out (the predictor is grid-only, and a single
    point costs the same seven exact probes a surface does).
    """

    def __init__(self, engine: str = "predictor"):
        self._engine_name = engine
        self._engine: Any = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._error_estimates: Dict[Any, float] = {}

    @property
    def engine_name(self) -> str:
        """The registered engine answering degraded queries."""
        return self._engine_name

    def _resolve(self) -> Any:
        if self._engine is None:
            from repro.gpu.engine import get_engine

            self._engine = get_engine(self._engine_name)
            if not getattr(self._engine, "supports_grid", False):
                raise ValueError(
                    f"brownout engine {self._engine_name!r} is not "
                    "grid-capable"
                )
        return self._engine

    def start(self) -> None:
        """Create the evaluation thread (idempotent)."""
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="gpuscale-brownout"
            )

    def stop(self) -> None:
        """Join the evaluation thread (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def error_estimate(self, space: Any) -> Optional[float]:
        """Measured relative error of the degraded tier on *space*.

        Asks the engine for its own accuracy measurement when it can
        provide one (:meth:`~repro.predict.engine.PredictorEngine.
        measured_error` runs leave-one-out over the transplant corpus)
        and caches it per space; ``None`` when the engine has no error
        story to tell.
        """
        cached = self._error_estimates.get(space)
        if cached is not None:
            return cached
        probe = getattr(self._resolve(), "measured_error", None)
        if probe is None:
            return None
        estimate = float(probe(space))
        self._error_estimates[space] = estimate
        return estimate

    async def error_estimate_async(self, space: Any) -> Optional[float]:
        """:meth:`error_estimate`, evaluated on the tier's own thread.

        The first call per space runs leave-one-out over the corpus —
        too much work for the event loop, and the predictor's caches
        are only safe on the single executor thread that also serves
        :meth:`submit`.
        """
        if self._executor is None:
            self.start()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self.error_estimate, space
        )

    async def submit(self, query: Any, fidelity: str = "degraded") -> Any:
        """Answer one grid query from the surrogate tier.

        *fidelity* labels the answer: ``"degraded"`` when brownout
        pressed this tier into service, ``"approximate"`` when the
        caller's tolerance selected it on purpose. The numbers are the
        same either way; the label tells the client which contract
        applied.
        """
        from repro.service.batcher import GridQuery, GridResult

        if not isinstance(query, GridQuery):
            raise TypeError(
                f"brownout serves grid queries only, got {query!r}"
            )
        if self._executor is None:
            self.start()
        loop = asyncio.get_running_loop()

        def evaluate() -> GridResult:
            import numpy as np

            engine = self._resolve()
            grid = engine.simulate_grid(query.kernel, query.space)
            return GridResult(
                kernel_name=query.kernel.full_name,
                items_per_second=np.asarray(grid.items_per_second),
                global_size=query.kernel.geometry.global_size,
                fidelity=fidelity,
                error_estimate=self.error_estimate(query.space),
            )

        return await loop.run_in_executor(self._executor, evaluate)
