"""Load-generator harness for the query service.

Two stdlib-only traffic shapes:

* **closed loop** (:func:`run_load`): *concurrency* keep-alive
  connections each fire requests back-to-back until the shared budget
  is spent. Offered load adapts to service speed, so this measures
  *capacity* — the throughput floor the service benchmark asserts.
* **open loop** (:func:`run_open_loop`): arrivals are scheduled at a
  fixed rate regardless of completions, the way real traffic behaves.
  Latency is measured from *scheduled arrival* to completion, so
  client-side queueing counts — which is what makes the knee visible.
  Past saturation the report carries shed rates (429/503 by status
  code) instead of pretending throughput kept up.
  :func:`run_saturation` steps a rate ladder through the knee.

The client speaks the same minimal HTTP/1.1 the server does (one
request line, a ``Content-Length`` body, keep-alive responses), so a
measurement exercises the full production path: socket, parser,
schema validation, router/micro-batcher, engine, JSON response.
"""

from __future__ import annotations

import asyncio
import json
import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


def _quantile_ms(latencies_s: Sequence[float], q: float) -> float:
    """The *q*-quantile of a latency sample, in milliseconds."""
    if not latencies_s:
        return float("nan")
    ordered = sorted(latencies_s)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank] * 1000.0


@dataclass
class LoadReport:
    """Outcome of one load run."""

    requests: int
    errors: int
    seconds: float
    latencies_s: List[float] = field(repr=False, default_factory=list)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of wall clock."""
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    def latency_quantile_ms(self, q: float) -> float:
        """The *q*-quantile of request latency, in milliseconds."""
        return _quantile_ms(self.latencies_s, q)

    @property
    def p50_ms(self) -> float:
        """Median request latency (milliseconds)."""
        return self.latency_quantile_ms(0.50)

    @property
    def p99_ms(self) -> float:
        """99th-percentile request latency (milliseconds)."""
        return self.latency_quantile_ms(0.99)

    @property
    def mean_ms(self) -> float:
        """Mean request latency (milliseconds)."""
        if not self.latencies_s:
            return float("nan")
        return statistics.fmean(self.latencies_s) * 1000.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (no raw latency list)."""
        return {
            "requests": self.requests,
            "errors": self.errors,
            "seconds": self.seconds,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {
                "p50": self.p50_ms,
                "p99": self.p99_ms,
                "mean": self.mean_ms,
            },
        }


def encode_request(
    path: str, payload: Any, host: str = "localhost"
) -> bytes:
    """One serialised keep-alive POST, ready to write to a socket."""
    body = json.dumps(payload).encode()
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body


async def read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, bytes]:
    """Read one HTTP/1.1 response; returns (status, body)."""
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    return status, body


async def run_load(
    host: str,
    port: int,
    requests: Sequence[bytes],
    *,
    total: int,
    concurrency: int = 8,
) -> LoadReport:
    """Fire *total* requests over *concurrency* keep-alive connections.

    *requests* is a pool of pre-encoded request bytes; workers walk it
    round-robin (so a small pool exercises the batcher's dedup path
    while distinct entries keep the engine honest). Any non-2xx
    response counts as an error; connection failures abort the run.
    """
    if not requests:
        raise ValueError("need at least one request payload")
    counter = {"next": 0}
    latencies: List[List[float]] = [[] for _ in range(concurrency)]
    errors = [0] * concurrency
    loop = asyncio.get_running_loop()

    async def worker(slot: int) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            while True:
                index = counter["next"]
                if index >= total:
                    return
                counter["next"] = index + 1
                request = requests[index % len(requests)]
                started = loop.time()
                writer.write(request)
                await writer.drain()
                status, _body = await read_response(reader)
                latencies[slot].append(loop.time() - started)
                if status >= 300:
                    errors[slot] += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    started = loop.time()
    await asyncio.gather(*(worker(i) for i in range(concurrency)))
    elapsed = loop.time() - started
    flat = [value for bucket in latencies for value in bucket]
    return LoadReport(
        requests=len(flat),
        errors=sum(errors),
        seconds=elapsed,
        latencies_s=flat,
    )


@dataclass
class OpenLoopReport:
    """Outcome of one fixed-arrival-rate run."""

    offered_rps: float
    seconds: float
    scheduled: int
    completed: int
    errors: int
    unsent: int
    statuses: Dict[int, int] = field(default_factory=dict)
    latencies_s: List[float] = field(repr=False, default_factory=list)

    @property
    def achieved_rps(self) -> float:
        """Completed requests per second of wall clock."""
        return self.completed / self.seconds if self.seconds > 0 else 0.0

    @property
    def shed(self) -> int:
        """Requests the service refused under load (429 + 503)."""
        return self.statuses.get(429, 0) + self.statuses.get(503, 0)

    @property
    def shed_rate(self) -> float:
        """Refused fraction of everything that reached the wire."""
        return self.shed / self.completed if self.completed else 0.0

    def latency_quantile_ms(self, q: float) -> float:
        """The *q*-quantile of arrival-to-completion latency (ms)."""
        return _quantile_ms(self.latencies_s, q)

    @property
    def p50_ms(self) -> float:
        """Median arrival-to-completion latency (milliseconds)."""
        return self.latency_quantile_ms(0.50)

    @property
    def p99_ms(self) -> float:
        """99th-percentile arrival-to-completion latency (ms)."""
        return self.latency_quantile_ms(0.99)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (no raw latency list)."""
        return {
            "offered_rps": self.offered_rps,
            "achieved_rps": self.achieved_rps,
            "seconds": self.seconds,
            "scheduled": self.scheduled,
            "completed": self.completed,
            "errors": self.errors,
            "unsent": self.unsent,
            "statuses": {
                str(status): count
                for status, count in sorted(self.statuses.items())
            },
            "shed_rate": self.shed_rate,
            "latency_ms": {
                "p50": self.p50_ms,
                "p99": self.p99_ms,
            },
        }


async def run_open_loop(
    host: str,
    port: int,
    requests: Sequence[bytes],
    *,
    rate_rps: float,
    duration_s: float,
    connections: int = 32,
) -> OpenLoopReport:
    """Offer *rate_rps* arrivals/s for *duration_s*, come what may.

    A scheduler enqueues arrivals on a fixed clock; *connections*
    keep-alive workers drain the arrival queue as fast as the service
    answers. When the service falls behind, arrivals pile up in the
    queue and their measured latency grows (arrival-to-completion) —
    exactly the open-loop behaviour closed-loop harnesses hide. Every
    response status is counted; arrivals still queued when the clock
    runs out are reported as ``unsent``, not silently dropped.
    """
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    if not requests:
        raise ValueError("need at least one request payload")
    loop = asyncio.get_running_loop()
    arrivals: "asyncio.Queue" = asyncio.Queue()
    total = max(1, int(rate_rps * duration_s))
    statuses: Dict[int, int] = {}
    latencies: List[float] = []
    errors = 0
    done = False

    async def scheduler() -> None:
        nonlocal done
        start = loop.time()
        for index in range(total):
            target = start + index / rate_rps
            delay = target - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            arrivals.put_nowait((index, target))
        done = True

    async def worker() -> None:
        nonlocal errors
        reader = writer = None
        try:
            while True:
                if done and arrivals.empty():
                    return
                try:
                    index, scheduled_at = await asyncio.wait_for(
                        arrivals.get(), 0.05
                    )
                except asyncio.TimeoutError:
                    continue
                if writer is None:
                    reader, writer = await asyncio.open_connection(
                        host, port
                    )
                request = requests[index % len(requests)]
                try:
                    writer.write(request)
                    await writer.drain()
                    status, _body = await read_response(reader)
                except (ConnectionError, OSError,
                        asyncio.IncompleteReadError):
                    errors += 1
                    writer.close()
                    reader = writer = None
                    continue
                latencies.append(loop.time() - scheduled_at)
                statuses[status] = statuses.get(status, 0) + 1
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    started = loop.time()
    schedule = loop.create_task(scheduler())
    # Workers stop once the schedule is exhausted *and* the queue is
    # empty — but an overloaded run must end, so they get a grace
    # period of one duration past the schedule, then the rest counts
    # as unsent.
    try:
        await asyncio.wait_for(
            asyncio.gather(schedule, *(
                worker() for _ in range(connections)
            )),
            timeout=duration_s * 2 + 10.0,
        )
    except asyncio.TimeoutError:
        pass
    unsent = arrivals.qsize()
    elapsed = loop.time() - started
    return OpenLoopReport(
        offered_rps=rate_rps,
        seconds=elapsed,
        scheduled=total,
        completed=len(latencies),
        errors=errors,
        unsent=unsent,
        statuses=statuses,
        latencies_s=latencies,
    )


async def run_saturation(
    host: str,
    port: int,
    requests: Sequence[bytes],
    *,
    rates_rps: Sequence[float],
    step_duration_s: float = 2.0,
    connections: int = 32,
) -> List[OpenLoopReport]:
    """Step an open-loop rate ladder through (and past) the knee.

    Returns one report per offered rate, in order: below the knee
    ``achieved_rps`` tracks ``offered_rps`` and the shed rate is ~0;
    past it throughput plateaus, latency grows, and 429/503 counts
    appear — the saturation curve the overload benchmark records.
    """
    reports = []
    for rate in rates_rps:
        reports.append(
            await run_open_loop(
                host, port, requests,
                rate_rps=rate,
                duration_s=step_duration_s,
                connections=connections,
            )
        )
    return reports


def standard_point_payloads(
    kernel_names: Sequence[str],
    configs: Sequence[Tuple[int, float, float]],
    path: str = "/v1/simulate",
) -> List[bytes]:
    """A request pool crossing catalog kernels with hardware points."""
    pool = []
    for name in kernel_names:
        for cu_count, engine_mhz, memory_mhz in configs:
            pool.append(
                encode_request(
                    path,
                    {
                        "version": 1,
                        "kernel": name,
                        "config": {
                            "cu_count": cu_count,
                            "engine_mhz": engine_mhz,
                            "memory_mhz": memory_mhz,
                        },
                    },
                )
            )
    return pool


async def fetch(
    host: str, port: int, method: str, path: str,
    payload: Optional[Any] = None,
) -> Tuple[int, bytes]:
    """One-shot helper: open, send one request, read, close."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        if method.upper() == "GET":
            writer.write(
                (
                    f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
        else:
            writer.write(encode_request(path, payload, host))
        await writer.drain()
        return await read_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
