"""Load-generator harness for the query service.

A stdlib-only closed-loop load generator: *concurrency* keep-alive
connections each fire requests back-to-back until the shared request
budget is spent, recording per-request wall-clock latency. The report
carries sustained throughput plus p50/p99 latency — the numbers the
service benchmark asserts floors on and records into the BENCH
trajectory.

The client speaks the same minimal HTTP/1.1 the server does (one
request line, a ``Content-Length`` body, keep-alive responses), so a
measurement exercises the full production path: socket, parser,
schema validation, micro-batcher, engine, JSON response.
"""

from __future__ import annotations

import asyncio
import json
import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass
class LoadReport:
    """Outcome of one load run."""

    requests: int
    errors: int
    seconds: float
    latencies_s: List[float] = field(repr=False, default_factory=list)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of wall clock."""
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    def latency_quantile_ms(self, q: float) -> float:
        """The *q*-quantile of request latency, in milliseconds."""
        if not self.latencies_s:
            return float("nan")
        ordered = sorted(self.latencies_s)
        rank = min(
            len(ordered) - 1, max(0, round(q * (len(ordered) - 1)))
        )
        return ordered[rank] * 1000.0

    @property
    def p50_ms(self) -> float:
        """Median request latency (milliseconds)."""
        return self.latency_quantile_ms(0.50)

    @property
    def p99_ms(self) -> float:
        """99th-percentile request latency (milliseconds)."""
        return self.latency_quantile_ms(0.99)

    @property
    def mean_ms(self) -> float:
        """Mean request latency (milliseconds)."""
        if not self.latencies_s:
            return float("nan")
        return statistics.fmean(self.latencies_s) * 1000.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (no raw latency list)."""
        return {
            "requests": self.requests,
            "errors": self.errors,
            "seconds": self.seconds,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {
                "p50": self.p50_ms,
                "p99": self.p99_ms,
                "mean": self.mean_ms,
            },
        }


def encode_request(
    path: str, payload: Any, host: str = "localhost"
) -> bytes:
    """One serialised keep-alive POST, ready to write to a socket."""
    body = json.dumps(payload).encode()
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body


async def read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, bytes]:
    """Read one HTTP/1.1 response; returns (status, body)."""
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    return status, body


async def run_load(
    host: str,
    port: int,
    requests: Sequence[bytes],
    *,
    total: int,
    concurrency: int = 8,
) -> LoadReport:
    """Fire *total* requests over *concurrency* keep-alive connections.

    *requests* is a pool of pre-encoded request bytes; workers walk it
    round-robin (so a small pool exercises the batcher's dedup path
    while distinct entries keep the engine honest). Any non-2xx
    response counts as an error; connection failures abort the run.
    """
    if not requests:
        raise ValueError("need at least one request payload")
    counter = {"next": 0}
    latencies: List[List[float]] = [[] for _ in range(concurrency)]
    errors = [0] * concurrency
    loop = asyncio.get_running_loop()

    async def worker(slot: int) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            while True:
                index = counter["next"]
                if index >= total:
                    return
                counter["next"] = index + 1
                request = requests[index % len(requests)]
                started = loop.time()
                writer.write(request)
                await writer.drain()
                status, _body = await read_response(reader)
                latencies[slot].append(loop.time() - started)
                if status >= 300:
                    errors[slot] += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    started = loop.time()
    await asyncio.gather(*(worker(i) for i in range(concurrency)))
    elapsed = loop.time() - started
    flat = [value for bucket in latencies for value in bucket]
    return LoadReport(
        requests=len(flat),
        errors=sum(errors),
        seconds=elapsed,
        latencies_s=flat,
    )


def standard_point_payloads(
    kernel_names: Sequence[str],
    configs: Sequence[Tuple[int, float, float]],
    path: str = "/v1/simulate",
) -> List[bytes]:
    """A request pool crossing catalog kernels with hardware points."""
    pool = []
    for name in kernel_names:
        for cu_count, engine_mhz, memory_mhz in configs:
            pool.append(
                encode_request(
                    path,
                    {
                        "version": 1,
                        "kernel": name,
                        "config": {
                            "cu_count": cu_count,
                            "engine_mhz": engine_mhz,
                            "memory_mhz": memory_mhz,
                        },
                    },
                )
            )
    return pool


async def fetch(
    host: str, port: int, method: str, path: str,
    payload: Optional[Any] = None,
) -> Tuple[int, bytes]:
    """One-shot helper: open, send one request, read, close."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        if method.upper() == "GET":
            writer.write(
                (
                    f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
        else:
            writer.write(encode_request(path, payload, host))
        await writer.drain()
        return await read_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
