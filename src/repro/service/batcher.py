"""The inference-style micro-batcher over a timing engine.

Concurrent queries arrive one HTTP request at a time, but the engines
underneath are fastest when asked big questions: the study engine
evaluates the entire kernel x configuration lattice in one broadcast.
:class:`MicroBatcher` closes that gap the way an inference server
batches model calls: queries wait in a bounded admission queue for at
most ``max_wait_ms`` (or until ``max_batch`` of them have gathered),
then the whole batch dispatches as the *fewest* engine calls that
preserve bit-exactness:

* grid queries sharing a configuration space coalesce into **one**
  ``simulate_study`` call (pack rows are bitwise identical to
  per-kernel ``simulate_grid`` results — the PR 3 invariant this
  module leans on and the service tests re-pin);
* duplicate queries — same kernel, same config or space — are
  evaluated **once** and fanned out to every waiting caller;
* point queries keep the scalar point engine's exact numerics and
  amortise only the executor dispatch.

Failure isolation mirrors the sweep layer: an engine failure is
attributed to the query that caused it and *only* that query — batch
peers get their results. A failing ``simulate_study`` is retried
kernel by kernel so one poisoned kernel cannot take down its batch.

Grid results are read through and written back to the content-addressed
sweep cache (:mod:`repro.sweep.cache`) when one is supplied, keyed as
single-kernel datasets — a repeated grid query never touches the
engine again, across restarts.

Backpressure is explicit: a full admission queue raises
:class:`OverloadError` (HTTP 429), a query that waits longer than its
timeout raises :class:`ServiceTimeoutError` (HTTP 503), and a stopped
batcher raises :class:`ServiceClosedError` (HTTP 503).
``stop(drain=True)`` refuses new work but answers everything already
admitted before returning.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ReproError
from repro.gpu.config import HardwareConfig
from repro.kernels.kernel import Kernel
from repro.sweep.space import ConfigurationSpace

#: Default coalescing window (milliseconds).
DEFAULT_MAX_WAIT_MS = 2.0

#: Default batch-size cap.
DEFAULT_MAX_BATCH = 64

#: Default admission-queue bound.
DEFAULT_QUEUE_LIMIT = 1024


class OverloadError(ReproError):
    """The admission queue is full; the caller should shed load (429).

    *retry_after* is the shedding side's own estimate (seconds) of when
    the queue will have drained — computed from current depth and the
    observed drain rate, never a hard-coded constant — and becomes the
    429 response's ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceTimeoutError(ReproError):
    """A query exceeded its per-request timeout while queued (503)."""


class DeadlineExceededError(ServiceTimeoutError):
    """A query's absolute deadline passed before it was answered (503).

    Deadlines propagate from HTTP admission through the router into
    every worker's batcher as absolute ``time.monotonic()`` values, so
    any hop can (and does) cancel work the client has already given up
    on instead of orphaning it. Subclasses
    :class:`ServiceTimeoutError` so every existing timeout-handling
    path treats it correctly by default.
    """


class ServiceClosedError(ReproError):
    """The batcher is stopped or draining; no new work admitted (503)."""


@dataclass(frozen=True)
class PointQuery:
    """One (kernel, hardware point) evaluation."""

    kernel: Kernel
    config: HardwareConfig


@dataclass(frozen=True)
class GridQuery:
    """One (kernel, configuration space) surface evaluation."""

    kernel: Kernel
    space: ConfigurationSpace


@dataclass(frozen=True)
class EnergyGridQuery:
    """One (kernel, space) energy-surface evaluation.

    Answered by the vectorized :class:`~repro.power.energy.EnergyModel`
    over the batcher's simulator, so the timing half is one engine grid
    call and duplicate frontier sweeps coalesce exactly like grid
    queries do.
    """

    kernel: Kernel
    space: ConfigurationSpace


@dataclass(frozen=True)
class PairGridQuery:
    """One co-scheduled (kernel pair, space) surface evaluation.

    ``kernel_b=None`` is the idle-partner form (reproduces the solo
    surface — useful as a baseline through the identical code path).
    """

    kernel_a: Kernel
    kernel_b: Optional[Kernel]
    space: ConfigurationSpace


Query = Union[PointQuery, GridQuery, EnergyGridQuery, PairGridQuery]

#: Every query dataclass submit() admits.
QUERY_TYPES = (PointQuery, GridQuery, EnergyGridQuery, PairGridQuery)


@dataclass(frozen=True)
class PointResult:
    """A point query's answer, bit-for-bit the point engine's."""

    kernel_name: str
    time_s: float
    items_per_second: float


@dataclass(frozen=True)
class GridResult:
    """A grid query's answer: the kernel's throughput surface.

    ``items_per_second`` has the space's ``(n_cu, n_eng, n_mem)``
    shape and is bitwise identical whether it came from a coalesced
    study call, a solo grid call, or the sweep cache. Time is *always*
    derived as ``global_size / items_per_second`` by consumers, so
    every path reports identical bits for both tensors.

    ``fidelity`` is ``"exact"`` for every engine/cache path and
    ``"degraded"`` only when the brownout tier answered — degraded
    surfaces additionally carry the tier's measured relative
    ``error_estimate`` so a response is never silently approximate.
    """

    kernel_name: str
    items_per_second: np.ndarray
    global_size: int
    from_cache: bool = False
    fidelity: str = "exact"
    error_estimate: Optional[float] = None

    @property
    def time_s(self) -> np.ndarray:
        """Execution time per configuration (derived, see class doc)."""
        return self.global_size / self.items_per_second


@dataclass(frozen=True)
class EnergyGridResult:
    """An energy query's answer: time/power/energy over the space.

    All three arrays have the space's ``(n_cu, n_eng, n_mem)`` shape
    and carry the vectorized :class:`~repro.power.energy.EnergyModel`
    bits unchanged, whether they came from the engine or from the
    energy cache — the optimiser's argmin/frontier sweep over them is
    therefore identical on every path.
    """

    kernel_name: str
    time_s: np.ndarray
    power_w: np.ndarray
    energy_j: np.ndarray
    global_size: int
    from_cache: bool = False

    @property
    def items_per_second(self) -> np.ndarray:
        """Throughput at every grid point."""
        return self.global_size / self.time_s


@dataclass(frozen=True)
class PairGridResult:
    """A pair query's answer: both kernels' contended surfaces.

    The ``*_b`` fields are None for the idle-partner (solo) form, in
    which case ``time_a`` is bitwise the kernel's solo surface.
    """

    kernel_a: str
    kernel_b: Optional[str]
    time_a: np.ndarray
    time_b: Optional[np.ndarray]
    solo_time_a: np.ndarray
    solo_time_b: Optional[np.ndarray]
    makespan_s: np.ndarray
    power_w: np.ndarray
    energy_j: np.ndarray
    global_size_a: int
    global_size_b: Optional[int]

    @property
    def slowdown_a(self) -> np.ndarray:
        """Kernel A's contended slowdown at every grid point."""
        return self.time_a / self.solo_time_a

    @property
    def slowdown_b(self) -> Optional[np.ndarray]:
        """Kernel B's contended slowdown (None when solo)."""
        if self.time_b is None:
            return None
        return self.time_b / self.solo_time_b

    @property
    def stp(self) -> np.ndarray:
        """System throughput (sum of reciprocal slowdowns)."""
        if self.time_b is None:
            return 1.0 / self.slowdown_a
        return 1.0 / self.slowdown_a + 1.0 / self.slowdown_b

    @property
    def antt(self) -> np.ndarray:
        """Average normalised turnaround time (mean slowdown)."""
        if self.time_b is None:
            return self.slowdown_a
        return (self.slowdown_a + self.slowdown_b) / 2.0


_STOP = object()


class DrainRateEstimator:
    """EWMA of how fast admitted queries get answered (queries/s).

    Fed one sample per completed micro-batch; asked, on overload, how
    long the current queue depth will take to drain. The estimate is
    clamped to ``[floor_s, cap_s]`` so a cold or idle service still
    gives a sane ``Retry-After`` and a pathological backlog never
    tells clients to go away for hours.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        floor_s: float = 1.0,
        cap_s: float = 60.0,
    ):
        self._alpha = alpha
        self.floor_s = floor_s
        self.cap_s = cap_s
        self._rate_rps = 0.0
        self._last_time: Optional[float] = None

    @property
    def rate_rps(self) -> float:
        """Smoothed drain rate (0.0 until two samples have arrived)."""
        return self._rate_rps

    def record(self, answered: int, now: float) -> None:
        """Fold in one batch of *answered* queries finishing at *now*."""
        if self._last_time is not None and now > self._last_time:
            instant = answered / (now - self._last_time)
            if self._rate_rps <= 0.0:
                self._rate_rps = instant
            else:
                self._rate_rps = (
                    self._alpha * instant
                    + (1.0 - self._alpha) * self._rate_rps
                )
        self._last_time = now

    def retry_after_s(self, depth: int) -> float:
        """Seconds until a *depth*-deep queue should have drained."""
        if depth <= 0 or self._rate_rps <= 0.0:
            return self.floor_s
        return min(max(depth / self._rate_rps, self.floor_s), self.cap_s)


class MicroBatcher:
    """Coalesce concurrent queries into batched engine calls.

    *simulator* is anything with the :class:`~repro.gpu.simulator.
    GpuSimulator` call surface (``simulate``/``simulate_grid`` plus
    the ``supports_*`` flags); the facade itself is the normal choice.
    Engine work runs on a single worker thread — engines carry
    per-instance caches that are not thread-safe, and one thread is
    what makes batching (rather than lock contention) the concurrency
    story.
    """

    def __init__(
        self,
        simulator: Any,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        cache: Optional[Any] = None,
        metrics: Optional[Any] = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {max_wait_ms}"
            )
        if queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {queue_limit}"
            )
        self._simulator = simulator
        self._max_batch = max_batch
        self._max_wait_s = max_wait_ms / 1000.0
        self._queue_limit = queue_limit
        self._cache = cache
        self._metrics = metrics
        self._queue: Optional[asyncio.Queue] = None
        self._collector: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = True
        self._drain_rate = DrainRateEstimator()
        self.batches_dispatched = 0
        self.queries_answered = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Begin collecting; must run inside the serving event loop."""
        if self._collector is not None:
            raise RuntimeError("batcher already started")
        self._queue = asyncio.Queue(maxsize=self._queue_limit + 1)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="gpuscale-engine"
        )
        self._closed = False
        self._collector = asyncio.get_running_loop().create_task(
            self._collect_loop()
        )

    async def stop(self, drain: bool = True) -> None:
        """Stop the batcher.

        With ``drain=True`` (the graceful path) new submissions are
        refused immediately, every admitted query is answered, and the
        worker thread is joined. With ``drain=False`` queued queries
        fail with :class:`ServiceClosedError`.
        """
        if self._collector is None:
            return
        self._closed = True
        if not drain:
            pending: List[Tuple[Query, asyncio.Future, Any]] = []
            while self._queue is not None and not self._queue.empty():
                entry = self._queue.get_nowait()
                if entry is not _STOP:
                    pending.append(entry)
            for entry in pending:
                if not entry[1].done():
                    entry[1].set_exception(
                        ServiceClosedError("service shut down")
                    )
        await self._queue.put(_STOP)
        await self._collector
        self._collector = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._queue = None

    @property
    def running(self) -> bool:
        """True while the batcher accepts queries."""
        return self._collector is not None and not self._closed

    @property
    def pending(self) -> int:
        """Queries waiting in the admission queue."""
        return 0 if self._queue is None else self._queue.qsize()

    def retry_after_s(self) -> float:
        """How long a shed caller should back off, from live state."""
        return self._drain_rate.retry_after_s(self.pending)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    async def submit(
        self,
        query: Query,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> Union[PointResult, GridResult]:
        """Enqueue *query*; await its result.

        *deadline* is an absolute ``time.monotonic()`` instant: once
        it passes, the query is cancelled wherever it is — refused at
        admission, dropped from its micro-batch before evaluation, or
        failed while awaiting — with
        :class:`DeadlineExceededError`. *timeout* remains the relative
        form; when both are given the earlier one wins.

        Raises :class:`OverloadError` when the admission queue is
        full, :class:`ServiceClosedError` when the batcher is stopped
        or draining, and :class:`ServiceTimeoutError` when the answer
        does not arrive within *timeout* seconds.
        """
        if not isinstance(query, QUERY_TYPES):
            raise TypeError(f"not a query: {query!r}")
        if self._closed or self._queue is None:
            raise ServiceClosedError(
                "service is shutting down; no new queries admitted"
            )
        loop = asyncio.get_running_loop()
        remaining: Optional[float] = timeout
        if deadline is not None:
            left = deadline - loop.time()
            if left <= 0:
                self._record_deadline_exceeded()
                raise DeadlineExceededError(
                    "query deadline passed before admission"
                )
            remaining = left if remaining is None else min(remaining, left)
        if self._queue.qsize() >= self._queue_limit:
            raise OverloadError(
                f"admission queue full ({self._queue_limit} queries); "
                "retry with backoff",
                retry_after=self._drain_rate.retry_after_s(
                    self._queue.qsize()
                ),
            )
        future: asyncio.Future = loop.create_future()
        self._queue.put_nowait((query, future, deadline))
        self._note_queue_depth()
        try:
            return await asyncio.wait_for(future, remaining)
        except asyncio.TimeoutError:
            if deadline is not None and deadline - loop.time() <= 0:
                self._record_deadline_exceeded()
                raise DeadlineExceededError(
                    "query deadline passed while awaiting the engine"
                ) from None
            raise ServiceTimeoutError(
                f"query timed out after {timeout}s in the service"
            ) from None

    def _record_deadline_exceeded(self, count: int = 1) -> None:
        if self._metrics is not None:
            record = getattr(
                self._metrics, "record_deadline_exceeded", None
            )
            if record is not None:
                record(count)

    # ------------------------------------------------------------------
    # Collection and dispatch
    # ------------------------------------------------------------------

    async def _collect_loop(self) -> None:
        loop = asyncio.get_running_loop()
        queue = self._queue
        while True:
            entry = await queue.get()
            self._note_queue_depth()
            if entry is _STOP:
                return
            batch = [entry]
            deadline = loop.time() + self._max_wait_s
            stop_seen = False
            while len(batch) < self._max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    entry = await asyncio.wait_for(
                        queue.get(), remaining
                    )
                except asyncio.TimeoutError:
                    break
                self._note_queue_depth()
                if entry is _STOP:
                    stop_seen = True
                    break
                batch.append(entry)
            await self._run_batch(batch)
            if stop_seen:
                return

    async def _run_batch(
        self, batch: List[Tuple[Query, asyncio.Future, Any]]
    ) -> None:
        """Dispatch one batch to the worker thread; fan results out."""
        # Dedup on the loop thread: queries are frozen dataclasses, so
        # equal queries hash equal and share one engine evaluation.
        # Queries whose deadline passed while queued are cancelled
        # here — before any engine work — so a saturated batcher never
        # burns its engine thread on answers nobody is waiting for.
        loop = asyncio.get_running_loop()
        now = loop.time()
        waiters: Dict[Query, List[asyncio.Future]] = {}
        expired = 0
        for query, future, deadline in batch:
            if future.done():  # caller timed out or was cancelled
                continue
            if deadline is not None and deadline <= now:
                expired += 1
                future.set_exception(
                    DeadlineExceededError(
                        "query deadline passed while batched; "
                        "evaluation cancelled"
                    )
                )
                continue
            waiters.setdefault(query, []).append(future)
        if expired:
            self._record_deadline_exceeded(expired)
        if not waiters:
            return
        unique = list(waiters)
        outcomes, shapes, cache_stats = await loop.run_in_executor(
            self._executor, self._evaluate, unique
        )
        self.batches_dispatched += 1
        self.queries_answered += len(batch)
        self._drain_rate.record(len(batch), loop.time())
        if self._metrics is not None:
            self._metrics.record_batch(len(batch), shapes)
            for outcome, count in cache_stats.items():
                self._metrics.record_cache(outcome, count)
        for query, futures in waiters.items():
            status, value = outcomes[query]
            for future in futures:
                if future.done():  # caller timed out or was cancelled
                    continue
                if status == "ok":
                    future.set_result(value)
                else:
                    future.set_exception(value)

    def _note_queue_depth(self) -> None:
        if self._metrics is not None and self._queue is not None:
            self._metrics.set_queue_depth(self._queue.qsize())

    # ------------------------------------------------------------------
    # Engine-side evaluation (worker thread)
    # ------------------------------------------------------------------

    def _evaluate(self, queries: List[Query]):
        """Evaluate unique queries with the fewest engine calls.

        Returns ``(outcomes, shapes, cache_stats)`` where *outcomes*
        maps each query to ``("ok", result)`` or ``("err", exception)``
        — one entry per query, always, so a failure never leaks into a
        peer's slot.
        """
        outcomes: Dict[Query, Tuple[str, Any]] = {}
        shapes: List[str] = []
        cache_stats = {"hit": 0, "miss": 0, "store": 0}
        grids: Dict[ConfigurationSpace, List[GridQuery]] = {}
        for query in queries:
            if isinstance(query, GridQuery):
                grids.setdefault(query.space, []).append(query)
            elif isinstance(query, EnergyGridQuery):
                shapes.append("energy")
                outcomes[query] = self._evaluate_energy(
                    query, cache_stats
                )
            elif isinstance(query, PairGridQuery):
                shapes.append("pair")
                outcomes[query] = self._evaluate_pair(query)
            else:
                shapes.append("point")
                try:
                    result = self._simulator.simulate(
                        query.kernel, query.config
                    )
                    outcomes[query] = (
                        "ok",
                        PointResult(
                            kernel_name=query.kernel.full_name,
                            time_s=float(result.time_s),
                            items_per_second=float(
                                result.items_per_second
                            ),
                        ),
                    )
                except ReproError as exc:
                    outcomes[query] = ("err", exc)
        for space, group in grids.items():
            self._evaluate_grid_group(
                space, group, outcomes, shapes, cache_stats
            )
        return outcomes, shapes, cache_stats

    def _evaluate_grid_group(
        self,
        space: ConfigurationSpace,
        group: List[GridQuery],
        outcomes: Dict[Query, Tuple[str, Any]],
        shapes: List[str],
        cache_stats: Dict[str, int],
    ) -> None:
        """One space's grid queries: cache reads, then study/grid calls."""
        pending: List[GridQuery] = []
        fingerprints: Dict[GridQuery, str] = {}
        for query in group:
            cached = self._cache_load(query, space, fingerprints)
            if cached is not None:
                cache_stats["hit"] += 1
                outcomes[query] = ("ok", cached)
            else:
                if self._cache is not None:
                    cache_stats["miss"] += 1
                pending.append(query)
        if not pending:
            return
        supports_study = getattr(
            self._simulator, "supports_study", False
        )
        if supports_study and len(pending) > 1:
            shapes.append("study")
            try:
                study = self._simulator.simulate_study(
                    [q.kernel for q in pending], space
                )
            except ReproError:
                # Whole-study failures cannot be attributed to one
                # kernel; isolate by retrying kernel by kernel below.
                pass
            else:
                for row, query in enumerate(pending):
                    result = GridResult(
                        kernel_name=query.kernel.full_name,
                        items_per_second=np.asarray(
                            study.items_per_second[row]
                        ),
                        global_size=query.kernel.geometry.global_size,
                    )
                    outcomes[query] = ("ok", result)
                    cache_stats["store"] += self._cache_store(
                        query, space, fingerprints, result
                    )
                return
        for query in pending:
            shapes.append("grid")
            try:
                grid = self._simulator.simulate_grid(
                    query.kernel, space
                )
            except ReproError as exc:
                outcomes[query] = ("err", exc)
                continue
            result = GridResult(
                kernel_name=query.kernel.full_name,
                items_per_second=np.asarray(grid.items_per_second),
                global_size=query.kernel.geometry.global_size,
            )
            outcomes[query] = ("ok", result)
            cache_stats["store"] += self._cache_store(
                query, space, fingerprints, result
            )

    # -- sweep-cache integration ---------------------------------------

    def _fingerprint(
        self,
        query: GridQuery,
        space: ConfigurationSpace,
        fingerprints: Dict[GridQuery, str],
    ) -> str:
        from repro.sweep.cache import sweep_fingerprint

        fingerprint = fingerprints.get(query)
        if fingerprint is None:
            fingerprint = sweep_fingerprint(
                [query.kernel], space, self._simulator
            )
            fingerprints[query] = fingerprint
        return fingerprint

    def _cache_load(
        self,
        query: GridQuery,
        space: ConfigurationSpace,
        fingerprints: Dict[GridQuery, str],
    ) -> Optional[GridResult]:
        if self._cache is None:
            return None
        try:
            dataset = self._cache.load(
                self._fingerprint(query, space, fingerprints)
            )
        except ReproError:
            return None
        if dataset is None:
            return None
        return GridResult(
            kernel_name=query.kernel.full_name,
            items_per_second=dataset.perf[0],
            global_size=query.kernel.geometry.global_size,
            from_cache=True,
        )

    def _cache_store(
        self,
        query: GridQuery,
        space: ConfigurationSpace,
        fingerprints: Dict[GridQuery, str],
        result: GridResult,
    ) -> int:
        """Best-effort write-back; returns 1 on a successful store."""
        if self._cache is None:
            return 0
        from repro.sweep.dataset import KernelRecord, ScalingDataset

        try:
            dataset = ScalingDataset(
                space,
                [KernelRecord.from_full_name(result.kernel_name)],
                result.items_per_second[np.newaxis, ...],
            )
            self._cache.store(
                self._fingerprint(query, space, fingerprints), dataset
            )
        except (ReproError, OSError):
            # The cache is an accelerator, never a dependency: refuse
            # nothing to the caller over a failed write-back.
            return 0
        return 1

    # -- energy and pair evaluation ------------------------------------

    def _energy_model(self):
        """The lazily-built vectorized energy model over our engine.

        Sharing the batcher's simulator keeps fidelity tiers, engine
        fingerprints and (in tests) engine call counters honest: an
        energy surface is exactly one ``simulate_grid`` on the same
        engine grid queries use.
        """
        model = getattr(self, "_energy", None)
        if model is None:
            from repro.power.energy import EnergyModel

            model = EnergyModel(simulator=self._simulator)
            self._energy = model
        return model

    def _coschedule_model(self):
        """The lazily-built pair contention model (pure, no engine)."""
        model = getattr(self, "_coschedule", None)
        if model is None:
            from repro.coschedule.model import CoScheduleModel

            model = CoScheduleModel()
            self._coschedule = model
        return model

    def _evaluate_energy(
        self, query: EnergyGridQuery, cache_stats: Dict[str, int]
    ) -> Tuple[str, Any]:
        """One energy surface: cache read-through, then one grid call."""
        fingerprint: Optional[str] = None
        if self._cache is not None:
            fingerprint = self._fingerprint(query, query.space, {})
            cached = self._energy_cache_load(query, fingerprint)
            if cached is not None:
                cache_stats["hit"] += 1
                return ("ok", cached)
            cache_stats["miss"] += 1
        try:
            surface = self._energy_model().surfaces(
                query.kernel, query.space
            )
        except ReproError as exc:
            return ("err", exc)
        result = EnergyGridResult(
            kernel_name=surface.kernel_name,
            time_s=surface.time_s,
            power_w=surface.power_w,
            energy_j=surface.energy_j,
            global_size=surface.global_size,
        )
        if fingerprint is not None:
            cache_stats["store"] += self._energy_cache_store(
                fingerprint, result
            )
        return ("ok", result)

    def _evaluate_pair(self, query: PairGridQuery) -> Tuple[str, Any]:
        """One co-scheduled pair surface (model-side, no engine call)."""
        try:
            surface = self._coschedule_model().pair_surface(
                query.kernel_a, query.kernel_b, query.space
            )
        except ReproError as exc:
            return ("err", exc)
        return (
            "ok",
            PairGridResult(
                kernel_a=surface.kernel_a,
                kernel_b=surface.kernel_b,
                time_a=surface.time_a,
                time_b=surface.time_b,
                solo_time_a=surface.solo_time_a,
                solo_time_b=surface.solo_time_b,
                makespan_s=surface.makespan_s,
                power_w=surface.power_w,
                energy_j=surface.energy_j,
                global_size_a=surface.global_size_a,
                global_size_b=surface.global_size_b,
            ),
        )

    def _energy_path(self, fingerprint: str):
        """Energy surfaces persist beside the sweep cache's datasets,
        under their own prefix so the two namespaces never collide."""
        return self._cache.cache_dir / f"energy_{fingerprint}.npz"

    def _energy_cache_load(
        self, query: EnergyGridQuery, fingerprint: str
    ) -> Optional[EnergyGridResult]:
        import zipfile

        path = self._energy_path(fingerprint)
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                return EnergyGridResult(
                    kernel_name=query.kernel.full_name,
                    time_s=np.asarray(data["time_s"]),
                    power_w=np.asarray(data["power_w"]),
                    energy_j=np.asarray(data["energy_j"]),
                    global_size=int(data["global_size"]),
                    from_cache=True,
                )
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            # Corrupt or truncated entries fall back to the engine.
            return None

    def _energy_cache_store(
        self, fingerprint: str, result: EnergyGridResult
    ) -> int:
        """Atomic best-effort write-back; returns 1 on success."""
        import os
        import tempfile

        path = self._energy_path(fingerprint)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, suffix=".npz.tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    np.savez(
                        handle,
                        time_s=result.time_s,
                        power_w=result.power_w,
                        energy_j=result.energy_j,
                        global_size=np.int64(result.global_size),
                    )
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return 0
        return 1
