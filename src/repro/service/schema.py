"""Versioned request schemas with structured validation errors.

Every ``/v1/*`` POST body is validated here before it reaches the
batcher. Validation failures raise :class:`RequestError`, which carries
a machine-readable ``code``, a human-readable ``message``, and (where
one applies) the offending ``field`` — the server renders it as a
structured 400 body::

    {"error": {"code": "missing_field", "message": "...", "field": "kernel"}}

Request bodies carry an optional ``"version"`` key; absent means the
current :data:`SCHEMA_VERSION`. Anything else is rejected with
``unsupported_version`` so clients pinned to a future schema fail
loudly instead of being half-interpreted.

Kernels are named two ways: a catalog identifier string
(``"rodinia/bfs.kernel1"``) or a full inline kernel definition (the
:meth:`~repro.kernels.kernel.Kernel.to_dict` payload), so callers can
query hypothetical kernels that exist nowhere in the catalog.
Configuration spaces are named three ways: ``"paper"`` (the 11 x 9 x 9
study grid), any registered microarchitecture family name (that
family's canonical grid, e.g. ``"kaveri"``), or an explicit
``{cu_counts, engine_mhz, memory_mhz}`` axes payload — optionally with
a ``"uarch"`` key naming a registered family or inlining
:meth:`~repro.gpu.config.Microarchitecture.to_dict` values, so callers
can sweep custom grids on non-default physics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.errors import ConfigurationError, ReproError, SuiteError, WorkloadError
from repro.gpu.config import HardwareConfig, Microarchitecture
from repro.kernels.kernel import Kernel
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace

#: The one schema version this server speaks.
SCHEMA_VERSION = 1

#: Cap on grid sizes a single query may request (anti-foot-gun: a
#: malformed axes payload must not commission a gigapoint broadcast).
MAX_GRID_POINTS = 1_000_000


class RequestError(ReproError):
    """A structurally invalid request (HTTP 400).

    *code* is stable and machine-readable; *field* names the offending
    body key when one exists.
    """

    def __init__(
        self, code: str, message: str, field: Optional[str] = None
    ):
        super().__init__(message)
        self.code = code
        self.message = message
        self.field = field

    def to_payload(self) -> Dict[str, Any]:
        """The structured 400 body."""
        error: Dict[str, Any] = {
            "code": self.code, "message": self.message,
        }
        if self.field is not None:
            error["field"] = self.field
        return {"error": error}


@dataclass(frozen=True)
class SimulateRequest:
    """A validated ``/v1/simulate`` body: one kernel, one call shape.

    Exactly one of *config* (a point query) or *space* (a grid query)
    is set. *timeout_s* is the caller's own budget (from the optional
    ``timeout_ms`` body key); the server clamps it to its configured
    ceiling and turns it into the request's absolute deadline.
    """

    kernel: Kernel
    config: Optional[HardwareConfig] = None
    space: Optional[ConfigurationSpace] = None
    timeout_s: Optional[float] = None
    #: Acceptable relative error (from the optional ``tolerance`` body
    #: key). ``None`` demands the exact tier; a number lets the server
    #: answer from the cheapest fidelity tier whose measured error
    #: fits. Grid queries only.
    tolerance: Optional[float] = None

    @property
    def is_grid(self) -> bool:
        """True for grid queries."""
        return self.space is not None


@dataclass(frozen=True)
class ClassifyRequest:
    """A validated ``/v1/classify`` body: kernel plus taxonomy grid."""

    kernel: Kernel
    space: ConfigurationSpace
    timeout_s: Optional[float] = None
    tolerance: Optional[float] = None


@dataclass(frozen=True)
class WhatIfRequest:
    """A validated ``/v1/whatif`` body: kernel plus evaluation point."""

    kernel: Kernel
    config: HardwareConfig
    timeout_s: Optional[float] = None


@dataclass(frozen=True)
class OptimizeRequest:
    """A validated ``/v1/optimize`` body: energy-optimal serving.

    *kernel* is optimised alone, or co-scheduled with *kernel_b* when
    one is given (the objective then prices the pair's makespan and
    pair energy). *frontier* swaps the single-optimum answer for the
    full (time, energy) Pareto frontier; *power_cap_w* excludes
    configurations whose modelled board power exceeds the cap.
    """

    kernel: Kernel
    objective: Any
    kernel_b: Optional[Kernel] = None
    power_cap_w: Optional[float] = None
    frontier: bool = False
    space: ConfigurationSpace = PAPER_SPACE
    timeout_s: Optional[float] = None


@dataclass(frozen=True)
class CoScheduleRequest:
    """A validated ``/v1/coschedule`` body: one co-resident pair.

    With *config* set the response is that single point's contention
    breakdown; otherwise the pair is evaluated over *space* and the
    response summarises the STP/ANTT surfaces.
    """

    kernel_a: Kernel
    kernel_b: Kernel
    config: Optional[HardwareConfig] = None
    space: ConfigurationSpace = PAPER_SPACE
    timeout_s: Optional[float] = None

    @property
    def is_point(self) -> bool:
        """True when the request names a single configuration."""
        return self.config is not None


@dataclass(frozen=True)
class TransferRequest:
    """A validated ``/v1/transfer`` body: kernel plus a family pair.

    The kernel is measured on *source_family*'s canonical grid (through
    the normal batcher/fleet path) and its scaling surface and taxonomy
    class on *target_family* are predicted from the cross-family
    corpus — no target-family sweep of the kernel happens.
    """

    kernel: Kernel
    source_family: str
    target_family: str
    timeout_s: Optional[float] = None


def _require_mapping(payload: Any) -> Mapping[str, Any]:
    if not isinstance(payload, Mapping):
        raise RequestError(
            "invalid_body",
            f"request body must be a JSON object, got "
            f"{type(payload).__name__}",
        )
    return payload


def check_version(payload: Mapping[str, Any]) -> None:
    """Reject bodies written against another schema version."""
    version = payload.get("version", SCHEMA_VERSION)
    if not isinstance(version, int) or isinstance(version, bool):
        raise RequestError(
            "unsupported_version",
            f"version must be an integer, got {version!r}",
            field="version",
        )
    if version != SCHEMA_VERSION:
        raise RequestError(
            "unsupported_version",
            f"this server speaks schema version {SCHEMA_VERSION}, "
            f"request carries {version}",
            field="version",
        )


def parse_kernel(payload: Mapping[str, Any]) -> Kernel:
    """The request's kernel: catalog name or inline definition."""
    if "kernel" not in payload:
        raise RequestError(
            "missing_field", "request has no 'kernel'", field="kernel"
        )
    return parse_kernel_spec(payload["kernel"], field="kernel")


def parse_kernel_spec(spec: Any, field: str = "kernel") -> Kernel:
    """One kernel reference: catalog name or inline definition."""
    if isinstance(spec, str):
        from repro.suites import kernel_by_name

        try:
            return kernel_by_name(spec)
        except SuiteError:
            raise RequestError(
                "unknown_kernel",
                f"no catalog kernel named {spec!r} "
                "(see 'gpuscale catalog')",
                field=field,
            ) from None
    if isinstance(spec, Mapping):
        try:
            return Kernel.from_dict(dict(spec))
        except (WorkloadError, KeyError, TypeError, ValueError) as exc:
            raise RequestError(
                "invalid_kernel",
                f"inline kernel definition rejected: {exc}",
                field=field,
            ) from exc
    raise RequestError(
        "invalid_kernel",
        f"{field} must be a catalog name string or an inline "
        f"definition object, got {type(spec).__name__}",
        field=field,
    )


def _parse_number(
    payload: Mapping[str, Any], field: str, parent: str
) -> float:
    value = payload.get(field)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(
            "invalid_config",
            f"{parent}.{field} must be a number, got {value!r}",
            field=f"{parent}.{field}",
        )
    return float(value)


def parse_config(spec: Any, field: str = "config") -> HardwareConfig:
    """A hardware point: ``{cu_count, engine_mhz, memory_mhz}``."""
    if not isinstance(spec, Mapping):
        raise RequestError(
            "invalid_config",
            f"{field} must be an object, got {type(spec).__name__}",
            field=field,
        )
    unknown = set(spec) - {"cu_count", "engine_mhz", "memory_mhz"}
    if unknown:
        raise RequestError(
            "invalid_config",
            f"unknown {field} keys: {sorted(unknown)}",
            field=field,
        )
    for required in ("cu_count", "engine_mhz", "memory_mhz"):
        if required not in spec:
            raise RequestError(
                "missing_field",
                f"{field} has no '{required}'",
                field=f"{field}.{required}",
            )
    try:
        return HardwareConfig(
            cu_count=int(_parse_number(spec, "cu_count", field)),
            engine_mhz=_parse_number(spec, "engine_mhz", field),
            memory_mhz=_parse_number(spec, "memory_mhz", field),
        )
    except ReproError as exc:
        if isinstance(exc, RequestError):
            raise
        raise RequestError(
            "invalid_config", str(exc), field=field
        ) from exc


def parse_family(spec: Any, field: str = "family"):
    """A registered family by name, or a structured 400."""
    from repro.gpu.uarch import family_names, get_family

    if not isinstance(spec, str):
        raise RequestError(
            "unknown_family",
            f"{field} must be a family name string, got "
            f"{type(spec).__name__}",
            field=field,
        )
    try:
        return get_family(spec)
    except ConfigurationError:
        known = ", ".join(family_names())
        raise RequestError(
            "unknown_family",
            f"no microarchitecture family named {spec!r}; registered "
            f"families: {known}",
            field=field,
        ) from None


def _parse_uarch(spec: Any, field: str) -> Microarchitecture:
    """The axes payload's optional physics: a family name or values."""
    if isinstance(spec, str):
        return parse_family(spec, field=field).uarch
    if isinstance(spec, Mapping):
        try:
            return Microarchitecture.from_dict(dict(spec))
        except (ReproError, TypeError, ValueError) as exc:
            raise RequestError(
                "invalid_space",
                f"{field} rejected: {exc}",
                field=field,
            ) from exc
    raise RequestError(
        "invalid_space",
        f"{field} must be a family name string or a "
        f"microarchitecture values object, got {type(spec).__name__}",
        field=field,
    )


def parse_space(spec: Any, field: str = "space") -> ConfigurationSpace:
    """A configuration grid: ``"paper"``, a family name, or axes.

    A string other than ``"paper"`` resolves through the family
    registry to that family's canonical grid. An axes object may carry
    an optional ``"uarch"`` key (family name or inline physics values)
    so a custom grid can sweep non-default physics.
    """
    if spec == "paper":
        return PAPER_SPACE
    if isinstance(spec, str):
        return parse_family(spec, field=field).space
    if not isinstance(spec, Mapping):
        raise RequestError(
            "invalid_space",
            f"{field} must be \"paper\", a family name, or an axes "
            f"object, got {spec!r}",
            field=field,
        )
    unknown = set(spec) - {"cu_counts", "engine_mhz", "memory_mhz", "uarch"}
    if unknown:
        raise RequestError(
            "invalid_space",
            f"unknown {field} keys: {sorted(unknown)}",
            field=field,
        )
    axes = {k: v for k, v in spec.items() if k != "uarch"}
    uarch = (
        _parse_uarch(spec["uarch"], f"{field}.uarch")
        if "uarch" in spec
        else None
    )
    try:
        space = ConfigurationSpace.from_dict(dict(axes))
        if uarch is not None:
            space = ConfigurationSpace(
                cu_counts=space.cu_counts,
                engine_mhz=space.engine_mhz,
                memory_mhz=space.memory_mhz,
                uarch=uarch,
            )
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        raise RequestError(
            "invalid_space",
            f"{field} rejected: {exc}",
            field=field,
        ) from exc
    if space.size > MAX_GRID_POINTS:
        raise RequestError(
            "grid_too_large",
            f"{field} spans {space.size} points; this server caps "
            f"grid queries at {MAX_GRID_POINTS}",
            field=field,
        )
    return space


def parse_timeout_ms(payload: Mapping[str, Any]) -> Optional[float]:
    """The optional per-request budget, converted to seconds.

    ``timeout_ms`` lets a caller ask for *less* time than the server's
    default; the server clamps it to its own ceiling, so it can never
    buy more.
    """
    if "timeout_ms" not in payload:
        return None
    value = payload["timeout_ms"]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(
            "invalid_timeout",
            f"timeout_ms must be a number, got {value!r}",
            field="timeout_ms",
        )
    if not value > 0:
        raise RequestError(
            "invalid_timeout",
            f"timeout_ms must be > 0, got {value!r}",
            field="timeout_ms",
        )
    return float(value) / 1000.0


def parse_tolerance(payload: Mapping[str, Any]) -> Optional[float]:
    """The optional acceptable relative error for fidelity routing.

    ``tolerance`` is a fraction (``0.25`` accepts answers within 25%
    of the exact tier); ``0`` explicitly demands exactness. Absent
    means exact — tiered routing is strictly opt-in.
    """
    if "tolerance" not in payload:
        return None
    value = payload["tolerance"]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(
            "invalid_tolerance",
            f"tolerance must be a number, got {value!r}",
            field="tolerance",
        )
    if not value >= 0:
        raise RequestError(
            "invalid_tolerance",
            f"tolerance must be >= 0, got {value!r}",
            field="tolerance",
        )
    return float(value)


def parse_simulate(payload: Any) -> SimulateRequest:
    """Validate a ``/v1/simulate`` body."""
    payload = _require_mapping(payload)
    check_version(payload)
    kernel = parse_kernel(payload)
    timeout_s = parse_timeout_ms(payload)
    tolerance = parse_tolerance(payload)
    has_config = "config" in payload
    has_space = "space" in payload
    if has_config == has_space:
        raise RequestError(
            "invalid_shape",
            "exactly one of 'config' (point query) or 'space' "
            "(grid query) is required",
        )
    if has_config:
        if tolerance is not None:
            raise RequestError(
                "invalid_tolerance",
                "tolerance applies to grid queries only; point "
                "queries are always answered exactly",
                field="tolerance",
            )
        return SimulateRequest(
            kernel=kernel,
            config=parse_config(payload["config"]),
            timeout_s=timeout_s,
        )
    return SimulateRequest(
        kernel=kernel,
        space=parse_space(payload["space"]),
        timeout_s=timeout_s,
        tolerance=tolerance,
    )


def parse_classify(payload: Any) -> ClassifyRequest:
    """Validate a ``/v1/classify`` body (space defaults to the paper
    grid — the taxonomy's end-of-axis features want full resolution)."""
    payload = _require_mapping(payload)
    check_version(payload)
    kernel = parse_kernel(payload)
    space = (
        parse_space(payload["space"]) if "space" in payload else PAPER_SPACE
    )
    return ClassifyRequest(
        kernel=kernel,
        space=space,
        timeout_s=parse_timeout_ms(payload),
        tolerance=parse_tolerance(payload),
    )


def parse_transfer(payload: Any) -> TransferRequest:
    """Validate a ``/v1/transfer`` body.

    Requires ``kernel``, ``source_family``, and ``target_family`` (two
    distinct registered family names); accepts the usual optional
    ``timeout_ms``.
    """
    payload = _require_mapping(payload)
    check_version(payload)
    kernel = parse_kernel(payload)
    for required in ("source_family", "target_family"):
        if required not in payload:
            raise RequestError(
                "missing_field",
                f"request has no '{required}'",
                field=required,
            )
    source = parse_family(payload["source_family"], field="source_family")
    target = parse_family(payload["target_family"], field="target_family")
    if source.name == target.name:
        raise RequestError(
            "invalid_transfer",
            f"source_family and target_family must differ, got "
            f"{source.name!r} twice",
            field="target_family",
        )
    return TransferRequest(
        kernel=kernel,
        source_family=source.name,
        target_family=target.name,
        timeout_s=parse_timeout_ms(payload),
    )


def parse_whatif(payload: Any) -> WhatIfRequest:
    """Validate a ``/v1/whatif`` body (config defaults to the paper
    grid's flagship corner)."""
    payload = _require_mapping(payload)
    check_version(payload)
    kernel = parse_kernel(payload)
    config = (
        parse_config(payload["config"])
        if "config" in payload
        else PAPER_SPACE.max_config
    )
    return WhatIfRequest(
        kernel=kernel, config=config, timeout_s=parse_timeout_ms(payload)
    )


def parse_objective(payload: Mapping[str, Any]):
    """The optional DVFS objective; defaults to ``min_edp``."""
    from repro.power.dvfs_opt import Objective

    spec = payload.get("objective", Objective.MIN_EDP.value)
    if isinstance(spec, str):
        for objective in Objective:
            if objective.value == spec:
                return objective
    known = ", ".join(o.value for o in Objective)
    raise RequestError(
        "invalid_objective",
        f"objective must be one of: {known}; got {spec!r}",
        field="objective",
    )


def parse_power_cap(payload: Mapping[str, Any]) -> Optional[float]:
    """The optional board-power cap in watts (must be > 0)."""
    if "power_cap_w" not in payload:
        return None
    value = payload["power_cap_w"]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(
            "invalid_power_cap",
            f"power_cap_w must be a number, got {value!r}",
            field="power_cap_w",
        )
    if not value > 0:
        raise RequestError(
            "invalid_power_cap",
            f"power_cap_w must be > 0, got {value!r}",
            field="power_cap_w",
        )
    return float(value)


def _parse_flag(
    payload: Mapping[str, Any], field: str, default: bool = False
) -> bool:
    value = payload.get(field, default)
    if not isinstance(value, bool):
        raise RequestError(
            "invalid_flag",
            f"{field} must be a boolean, got {value!r}",
            field=field,
        )
    return value


def parse_optimize(payload: Any) -> OptimizeRequest:
    """Validate a ``/v1/optimize`` body.

    Requires ``kernel``; accepts optional ``kernel_b`` (pair
    optimisation), ``objective`` (default ``min_edp``),
    ``power_cap_w``, ``frontier`` (boolean), ``space`` and
    ``timeout_ms``.
    """
    payload = _require_mapping(payload)
    check_version(payload)
    kernel = parse_kernel(payload)
    kernel_b = (
        parse_kernel_spec(payload["kernel_b"], field="kernel_b")
        if "kernel_b" in payload
        else None
    )
    space = (
        parse_space(payload["space"])
        if "space" in payload
        else PAPER_SPACE
    )
    return OptimizeRequest(
        kernel=kernel,
        kernel_b=kernel_b,
        objective=parse_objective(payload),
        power_cap_w=parse_power_cap(payload),
        frontier=_parse_flag(payload, "frontier"),
        space=space,
        timeout_s=parse_timeout_ms(payload),
    )


def parse_coschedule(payload: Any) -> CoScheduleRequest:
    """Validate a ``/v1/coschedule`` body.

    Requires ``kernel_a`` and ``kernel_b``; accepts at most one of
    ``config`` (single-point breakdown) or ``space`` (surface
    summary, default the paper grid), plus ``timeout_ms``.
    """
    payload = _require_mapping(payload)
    check_version(payload)
    for required in ("kernel_a", "kernel_b"):
        if required not in payload:
            raise RequestError(
                "missing_field",
                f"request has no '{required}'",
                field=required,
            )
    if "config" in payload and "space" in payload:
        raise RequestError(
            "invalid_shape",
            "at most one of 'config' (point) or 'space' (surface) "
            "may be given",
        )
    config = (
        parse_config(payload["config"]) if "config" in payload else None
    )
    space = (
        parse_space(payload["space"])
        if "space" in payload
        else PAPER_SPACE
    )
    return CoScheduleRequest(
        kernel_a=parse_kernel_spec(payload["kernel_a"], field="kernel_a"),
        kernel_b=parse_kernel_spec(payload["kernel_b"], field="kernel_b"),
        config=config,
        space=space,
        timeout_s=parse_timeout_ms(payload),
    )
