"""Deterministic fault injection for the worker fleet.

The resilience layer is only as trustworthy as the failures it has
been exercised against, so this module manufactures them on demand:
a :class:`ChaosInjector` rides inside each worker process and, at
every point where the worker is about to answer a query, draws one
action from a seeded RNG — deliver normally, delay, truncate the
frame mid-write, corrupt the pickle body, sabotage the shm handoff,
hang, or die outright. Mid-drain kills exercise the shutdown path.

Two properties make the schedule usable in tests:

* **Determinism** — the RNG is seeded from ``(seed, worker_id,
  generation)``, so the same chaos spec replays the same fault
  sequence run after run, and a failure found in CI reproduces
  locally from its seed alone.
* **Progress** — the generation (the worker's restart count) is part
  of the seed, so a respawned worker draws a *different* sequence
  than its predecessor. Without this a ``kill`` drawn at event #0
  would recur forever: every respawn would re-kill on the first
  resubmitted query and the fleet could never make progress.

Chaos is configured with a compact spec string so it can ride a CLI
flag::

    gpuscale serve --workers 4 --chaos "seed=7,corrupt=0.05,kill=0.01"

See :func:`parse_chaos` for the grammar. With no ``--chaos`` flag the
injector is absent entirely — the delivery path has literally zero
chaos branches, keeping the non-chaos fleet bit-exact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Optional, Tuple

from repro.errors import ReproError


class ChaosSpecError(ReproError):
    """A malformed ``--chaos`` specification."""


#: Fault kinds an injector can draw, in draw-priority order.
ACTIONS = (
    "kill", "hang", "truncate", "corrupt", "shm_fail", "delay",
)


@dataclass(frozen=True)
class ChaosConfig:
    """One seeded fault schedule for the whole fleet.

    Each ``<action>`` field is the per-event probability of that
    fault; draws are prioritised in :data:`ACTIONS` order, so e.g.
    ``kill`` shadows ``delay`` when both would fire. *arm_after*
    delays the onset — the first N events per worker always deliver
    cleanly, which lets tests establish a healthy baseline first.
    *workers* restricts injection to the named worker ids (``None``
    means all).
    """

    seed: int = 0
    kill: float = 0.0
    hang: float = 0.0
    truncate: float = 0.0
    corrupt: float = 0.0
    shm_fail: float = 0.0
    delay: float = 0.0
    drain_kill: float = 0.0
    delay_ms: float = 50.0
    hang_s: float = 30.0
    arm_after: int = 0
    workers: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        for action in ACTIONS + ("drain_kill",):
            p = getattr(self, action)
            if not 0.0 <= p <= 1.0:
                raise ChaosSpecError(
                    f"chaos probability {action}={p} outside [0, 1]"
                )
        if self.delay_ms < 0 or self.hang_s < 0 or self.arm_after < 0:
            raise ChaosSpecError(
                "delay_ms, hang_s, and arm_after must be >= 0"
            )

    def targets(self, worker_id: int) -> bool:
        """Does this schedule apply to *worker_id*?"""
        return self.workers is None or worker_id in self.workers


_FLOAT_FIELDS = frozenset(
    f.name for f in fields(ChaosConfig) if f.type == "float"
)


def parse_chaos(spec: str) -> ChaosConfig:
    """Parse a ``key=value,key=value`` chaos spec.

    Keys are the :class:`ChaosConfig` fields; ``workers`` takes a
    ``+``-separated id list (``workers=0+2``). Example::

        seed=7,corrupt=0.05,kill=0.01,arm_after=20,workers=0+1
    """
    values: dict = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ChaosSpecError(
                f"chaos spec entry {part!r} is not key=value"
            )
        key, _, raw = part.partition("=")
        key = key.strip()
        raw = raw.strip()
        try:
            if key == "workers":
                values[key] = tuple(
                    sorted({int(w) for w in raw.split("+")})
                )
            elif key in ("seed", "arm_after"):
                values[key] = int(raw)
            elif key in _FLOAT_FIELDS:
                values[key] = float(raw)
            else:
                raise ChaosSpecError(
                    f"unknown chaos spec key {key!r} "
                    f"(known: {', '.join(f.name for f in fields(ChaosConfig))})"
                )
        except ValueError as exc:
            raise ChaosSpecError(
                f"bad chaos spec value {part!r}: {exc}"
            ) from exc
    return ChaosConfig(**values)


def format_chaos(config: ChaosConfig) -> str:
    """The spec string round-tripping *config* (for logs and argv)."""
    parts = []
    defaults = ChaosConfig()
    for f in fields(ChaosConfig):
        value = getattr(config, f.name)
        if value == getattr(defaults, f.name):
            continue
        if f.name == "workers":
            parts.append(
                "workers=" + "+".join(str(w) for w in value)
            )
        else:
            parts.append(f"{f.name}={value}")
    return ",".join(parts) or "seed=0"


class ChaosInjector:
    """Per-worker fault oracle.

    One injector lives in each worker process; :meth:`sample` is
    called once per delivery event and returns the action to take
    (``None`` for clean delivery). The draw sequence is a pure
    function of ``(seed, worker_id, generation)`` — replaying a run
    with the same spec replays the same faults.
    """

    def __init__(
        self, config: ChaosConfig, worker_id: int, generation: int = 0
    ):
        self.config = config
        self.worker_id = worker_id
        self.generation = generation
        self.events = 0
        self._active = config.targets(worker_id)
        self._rng = random.Random(
            f"gpuscale-chaos:{config.seed}:{worker_id}:{generation}"
        )

    def sample(self) -> Optional[str]:
        """Draw the action for the next delivery event.

        Always advances the RNG by a fixed number of draws per event
        so the schedule stays aligned regardless of which actions
        fire.
        """
        event = self.events
        self.events += 1
        draws = [self._rng.random() for _ in ACTIONS]
        if not self._active or event < self.config.arm_after:
            return None
        for action, roll in zip(ACTIONS, draws):
            if roll < getattr(self.config, action):
                return action
        return None

    def sample_drain_kill(self) -> bool:
        """Should this worker die mid-drain instead of exiting
        cleanly?"""
        roll = self._rng.random()
        if not self._active:
            return False
        return roll < self.config.drain_kill
