"""Service telemetry: counters, gauges, histograms, Prometheus text.

A deliberately small, stdlib-only metrics core: the service needs
counts (requests by endpoint/status, batches, rejections), live levels
(queue depth, in-flight requests), and distributions (request latency,
batch size) — and it needs to render them in the Prometheus text
exposition format at ``/metrics`` so any scraper can watch a running
``gpuscale serve``. Everything is guarded by one registry lock; the
recording paths are a dict increment, cheap enough for the request
hot path.

Bucket conventions follow Prometheus: histogram buckets are cumulative
``_bucket{le="..."}`` series with a ``+Inf`` terminator plus ``_sum``
and ``_count``. Label values are escaped per the exposition format
(backslash, double quote, newline).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 250 us to 10 s, log-ish spacing.
LATENCY_BUCKETS = (
    0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default batch-size buckets (requests coalesced per engine dispatch).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

LabelValues = Tuple[str, ...]


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus exposition format."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _format_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(names: Sequence[str], values: LabelValues) -> str:
    if not names:
        return ""
    pairs = ", ".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class Counter:
    """A monotonically increasing sample set, optionally labelled."""

    kind = "counter"

    def __init__(
        self, name: str, help_text: str,
        labelnames: Sequence[str] = (),
    ):
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, *labels: str) -> None:
        """Add *amount* to the sample at *labels* (created at 0)."""
        if len(labels) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {labels!r}"
            )
        self._values[labels] = self._values.get(labels, 0.0) + amount

    def value(self, *labels: str) -> float:
        """Current sample at *labels* (0 when never incremented)."""
        return self._values.get(labels, 0.0)

    def snapshot(self) -> Dict[str, object]:
        """A plain-data copy (picklable; crosses process boundaries)."""
        return {
            "kind": self.kind,
            "help": self.help_text,
            "labelnames": list(self.labelnames),
            "samples": [
                [list(labels), value]
                for labels, value in sorted(self._values.items())
            ],
        }

    def total(self) -> float:
        """Sum across every label combination."""
        return sum(self._values.values())

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        if not self._values:
            if not self.labelnames:
                lines.append(f"{self.name} 0")
            return lines
        for labels in sorted(self._values):
            lines.append(
                f"{self.name}{_render_labels(self.labelnames, labels)} "
                f"{_format_value(self._values[labels])}"
            )
        return lines


class Gauge(Counter):
    """A sample that can go up and down (queue depth, in-flight)."""

    kind = "gauge"

    def set(self, value: float, *labels: str) -> None:
        """Set the sample at *labels* to *value*."""
        if len(labels) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {labels!r}"
            )
        self._values[labels] = float(value)

    def dec(self, amount: float = 1.0, *labels: str) -> None:
        """Subtract *amount* from the sample at *labels*."""
        self.inc(-amount, *labels)


class Histogram:
    """A fixed-bucket distribution (unlabelled; one series per metric)."""

    kind = "histogram"

    def __init__(
        self, name: str, help_text: str,
        buckets: Sequence[float],
    ):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(
            buckets
        ):
            raise ValueError(
                f"{name} buckets must be strictly increasing: {buckets}"
            )
        self.name = name
        self.help_text = help_text
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[i] += 1
                return
        self._counts[-1] += 1

    def bucket_counts(self) -> Dict[str, int]:
        """Cumulative counts keyed by upper bound (incl. ``+Inf``)."""
        result: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, self._counts):
            running += count
            result[_format_value(bound)] = running
        result["+Inf"] = running + self._counts[-1]
        return result

    def quantile(self, q: float) -> float:
        """Approximate *q*-quantile from the bucket boundaries.

        Returns the upper bound of the first bucket whose cumulative
        count reaches ``q * count`` — the same estimate a Prometheus
        ``histogram_quantile`` would give, without interpolation. The
        last bucket's estimate is its lower bound (there is no upper).
        """
        if self.count == 0:
            return float("nan")
        target = q * self.count
        running = 0
        for bound, count in zip(self.buckets, self._counts):
            running += count
            if running >= target:
                return bound
        return self.buckets[-1] if self.buckets else float("inf")

    def snapshot(self) -> Dict[str, object]:
        """A plain-data copy (picklable; crosses process boundaries)."""
        return {
            "kind": self.kind,
            "help": self.help_text,
            "buckets": list(self.buckets),
            "counts": list(self._counts),
            "sum": self.sum,
            "count": self.count,
        }

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for bound, cumulative in self.bucket_counts().items():
            lines.append(
                f'{self.name}_bucket{{le="{bound}"}} {cumulative}'
            )
        lines.append(f"{self.name}_sum {_format_value(self.sum)}")
        lines.append(f"{self.name}_count {self.count}")
        return lines


class MetricsRegistry:
    """A lock-guarded collection of metrics with one text renderer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, object]" = {}

    def counter(
        self, name: str, help_text: str,
        labelnames: Sequence[str] = (),
    ) -> Counter:
        """Create (or fetch) a counter registered under *name*."""
        return self._register(Counter(name, help_text, labelnames))

    def gauge(
        self, name: str, help_text: str,
        labelnames: Sequence[str] = (),
    ) -> Gauge:
        """Create (or fetch) a gauge registered under *name*."""
        return self._register(Gauge(name, help_text, labelnames))

    def histogram(
        self, name: str, help_text: str, buckets: Sequence[float],
    ) -> Histogram:
        """Create (or fetch) a histogram registered under *name*."""
        return self._register(Histogram(name, help_text, buckets))

    def _register(self, metric):
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        f"metric {metric.name!r} already registered "
                        f"as {type(existing).__name__}"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    @property
    def lock(self) -> threading.Lock:
        """The registry lock (shared by the recording helpers below)."""
        return self._lock

    def render(self) -> str:
        """The full Prometheus text exposition (trailing newline)."""
        with self._lock:
            lines: List[str] = []
            for name in sorted(self._metrics):
                lines.extend(self._metrics[name].render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-data copies of every metric, keyed by name.

        Taken under the registry lock, so one snapshot is internally
        consistent; the result is picklable and is what fleet workers
        ship to the router for :func:`render_fleet`.
        """
        with self._lock:
            return {
                name: metric.snapshot()
                for name, metric in self._metrics.items()
            }


def _merge_histogram(
    merged: Dict[str, object], snap: Dict[str, object]
) -> None:
    if merged["buckets"] != snap["buckets"]:
        # Differently-bucketed twins cannot merge; keep the first.
        return
    merged["counts"] = [
        a + b for a, b in zip(merged["counts"], snap["counts"])
    ]
    merged["sum"] += snap["sum"]
    merged["count"] += snap["count"]


def _render_snapshot_metric(
    name: str,
    snap: Dict[str, object],
    worker: Optional[str],
    with_meta: bool,
) -> List[str]:
    """Render one snapshotted metric, optionally labelled by worker."""
    lines: List[str] = []
    if with_meta:
        lines.append(f"# HELP {name} {snap['help']}")
        lines.append(f"# TYPE {name} {snap['kind']}")
    prefix = [] if worker is None else [("worker", worker)]
    if snap["kind"] == "histogram":
        running = 0
        counts = snap["counts"]
        for bound, count in zip(snap["buckets"], counts):
            running += count
            labels = prefix + [("le", _format_value(bound))]
            lines.append(f"{name}_bucket{_render_pairs(labels)} {running}")
        labels = prefix + [("le", "+Inf")]
        lines.append(
            f"{name}_bucket{_render_pairs(labels)} {running + counts[-1]}"
        )
        lines.append(
            f"{name}_sum{_render_pairs(prefix)} "
            f"{_format_value(snap['sum'])}"
        )
        lines.append(f"{name}_count{_render_pairs(prefix)} {snap['count']}")
        return lines
    samples = snap["samples"]
    if not samples and not snap["labelnames"] and worker is None:
        lines.append(f"{name} 0")
        return lines
    for labelvalues, value in samples:
        labels = prefix + list(zip(snap["labelnames"], labelvalues))
        lines.append(
            f"{name}{_render_pairs(labels)} {_format_value(value)}"
        )
    if not samples and not snap["labelnames"]:
        lines.append(f"{name}{_render_pairs(prefix)} 0")
    return lines


def _render_pairs(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    rendered = ", ".join(
        f'{label}="{_escape_label(str(value))}"' for label, value in pairs
    )
    return "{" + rendered + "}"


def render_fleet(snapshots: Dict[str, Dict[str, Dict[str, object]]]) -> str:
    """Aggregate per-process registry snapshots into one exposition.

    *snapshots* maps a worker label (``"router"``, ``"0"``, ``"1"``,
    ...) to that process's :meth:`MetricsRegistry.snapshot`. Every
    series is re-emitted with a ``worker`` label, and a synthetic
    ``worker="fleet"`` series carries the totals — counters and gauges
    sum sample-wise, histograms merge bucket-wise — so one scrape
    shows both the per-worker breakdown and the fleet aggregate under
    the metric's single HELP/TYPE header (what keeps the exposition
    format valid across N processes).
    """
    names = sorted({n for snap in snapshots.values() for n in snap})
    lines: List[str] = []
    for name in names:
        merged: Optional[Dict[str, object]] = None
        first = True
        for worker in sorted(snapshots):
            snap = snapshots[worker].get(name)
            if snap is None:
                continue
            lines.extend(
                _render_snapshot_metric(name, snap, worker, first)
            )
            first = False
            if merged is None:
                merged = {
                    key: (list(value) if isinstance(value, list) else value)
                    for key, value in snap.items()
                }
                if "samples" in snap:
                    merged["samples"] = [
                        [list(labels), value]
                        for labels, value in snap["samples"]
                    ]
            elif snap["kind"] == "histogram":
                _merge_histogram(merged, snap)
            else:
                totals = {
                    tuple(labels): value
                    for labels, value in merged["samples"]
                }
                for labels, value in snap["samples"]:
                    key = tuple(labels)
                    totals[key] = totals.get(key, 0.0) + value
                merged["samples"] = [
                    [list(labels), value]
                    for labels, value in sorted(totals.items())
                ]
        if merged is not None:
            lines.extend(
                _render_snapshot_metric(name, merged, "fleet", False)
            )
    return "\n".join(lines) + "\n"


class ServiceMetrics:
    """The query service's instrument panel.

    One instance per :class:`~repro.service.server.GpuScaleService`.
    All recording methods are thread-safe: the asyncio loop and the
    engine executor thread both report here.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry or MetricsRegistry()
        r = self.registry
        self.requests = r.counter(
            "gpuscale_requests_total",
            "HTTP requests served, by endpoint and status code.",
            ("endpoint", "status"),
        )
        self.request_latency = r.histogram(
            "gpuscale_request_latency_seconds",
            "End-to-end request latency (parse to response write).",
            LATENCY_BUCKETS,
        )
        self.batches = r.counter(
            "gpuscale_batches_total",
            "Micro-batches dispatched to the engine executor.",
        )
        self.batch_size = r.histogram(
            "gpuscale_batch_size",
            "Requests coalesced per micro-batch.",
            BATCH_SIZE_BUCKETS,
        )
        self.engine_calls = r.counter(
            "gpuscale_engine_calls_total",
            "Engine evaluations issued, by call shape.",
            ("shape",),
        )
        self.cache_events = r.counter(
            "gpuscale_cache_events_total",
            "Sweep-cache outcomes for grid queries.",
            ("outcome",),
        )
        self.rejected = r.counter(
            "gpuscale_rejected_total",
            "Requests rejected before evaluation, by reason.",
            ("reason",),
        )
        self.queue_depth = r.gauge(
            "gpuscale_queue_depth",
            "Queries waiting in the admission queue.",
        )
        self.inflight = r.gauge(
            "gpuscale_inflight_requests",
            "HTTP requests currently being handled.",
        )
        # Resilience instrumentation. The per-worker shard breakdown
        # uses a 'shard' label (not 'worker') so fleet aggregation —
        # which stamps every series with the emitting process's
        # worker label — never produces duplicate label names.
        self.deadline_exceeded = r.counter(
            "gpuscale_deadline_exceeded_total",
            "Queries cancelled because their deadline passed.",
        )
        self.hedges = r.counter(
            "gpuscale_hedges_total",
            "Hedged grid dispatches, by shard and outcome "
            "(issued / won).",
            ("shard", "outcome"),
        )
        self.breaker_transitions = r.counter(
            "gpuscale_breaker_transitions_total",
            "Circuit-breaker state transitions, by shard.",
            ("shard", "transition"),
        )
        self.breaker_open = r.gauge(
            "gpuscale_breaker_open",
            "1 while a shard's circuit breaker is open.",
            ("shard",),
        )
        self.worker_restarts = r.counter(
            "gpuscale_worker_restarts_total",
            "Worker processes respawned by the router, by shard.",
            ("shard",),
        )
        self.degraded = r.counter(
            "gpuscale_degraded_total",
            "Responses answered at degraded fidelity, by reason.",
            ("reason",),
        )
        self.tier_selected = r.counter(
            "gpuscale_tier_selected_total",
            "Grid queries routed to a fidelity tier, by tier and "
            "routing reason.",
            ("tier", "reason"),
        )
        self.family_queries = r.counter(
            "gpuscale_family_queries_total",
            "Grid queries served, by microarchitecture family "
            "('custom' for unregistered physics).",
            ("family",),
        )
        self.transfer_requests = r.counter(
            "gpuscale_transfer_requests_total",
            "Cross-architecture transfer predictions served, by "
            "family pair.",
            ("source_family", "target_family"),
        )
        self.optimize_requests = r.counter(
            "gpuscale_optimize_requests_total",
            "Energy-optimisation requests served, by objective.",
            ("objective",),
        )
        self.coschedule_pairs = r.counter(
            "gpuscale_coschedule_pairs_total",
            "Co-scheduled kernel pairs evaluated for responses.",
        )

    # -- recording helpers (each takes the registry lock once) ---------

    def record_request(
        self, endpoint: str, status: int, latency_s: float
    ) -> None:
        """Count one finished HTTP request and its latency."""
        with self.registry.lock:
            self.requests.inc(1.0, endpoint, str(status))
            self.request_latency.observe(latency_s)

    def record_batch(self, size: int, engine_shapes: Iterable[str]) -> None:
        """Count one dispatched micro-batch of *size* requests."""
        with self.registry.lock:
            self.batches.inc()
            self.batch_size.observe(size)
            for shape in engine_shapes:
                self.engine_calls.inc(1.0, shape)

    def record_cache(self, outcome: str, count: int = 1) -> None:
        """Count sweep-cache outcomes (``hit`` / ``miss`` / ``store``)."""
        if count <= 0:
            return
        with self.registry.lock:
            self.cache_events.inc(count, outcome)

    def record_rejection(self, reason: str) -> None:
        """Count one pre-evaluation rejection (overload, timeout, ...)."""
        with self.registry.lock:
            self.rejected.inc(1.0, reason)

    def record_deadline_exceeded(self, count: int = 1) -> None:
        """Count queries cancelled because their deadline passed."""
        if count <= 0:
            return
        with self.registry.lock:
            self.deadline_exceeded.inc(count)

    def record_hedge(self, shard: int, outcome: str) -> None:
        """Count one hedge event (``issued`` / ``won``) for *shard*."""
        with self.registry.lock:
            self.hedges.inc(1.0, str(shard), outcome)

    def record_breaker_transition(
        self, shard: int, old_state: str, new_state: str
    ) -> None:
        """Count one breaker edge and publish the open/closed level."""
        with self.registry.lock:
            self.breaker_transitions.inc(
                1.0, str(shard), f"{old_state}->{new_state}"
            )
            self.breaker_open.set(
                1.0 if new_state == "open" else 0.0, str(shard)
            )

    def record_worker_restart(self, shard: int) -> None:
        """Count one worker respawn for *shard*."""
        with self.registry.lock:
            self.worker_restarts.inc(1.0, str(shard))

    def record_degraded(self, reason: str) -> None:
        """Count one degraded-fidelity response."""
        with self.registry.lock:
            self.degraded.inc(1.0, reason)

    def record_tier(self, tier: str, reason: str) -> None:
        """Count one fidelity-tier routing decision for a grid query."""
        with self.registry.lock:
            self.tier_selected.inc(1.0, tier, reason)

    def record_family(self, family: str) -> None:
        """Count one grid query against a microarchitecture family."""
        with self.registry.lock:
            self.family_queries.inc(1.0, family)

    def record_transfer(self, source: str, target: str) -> None:
        """Count one cross-architecture transfer prediction."""
        with self.registry.lock:
            self.transfer_requests.inc(1.0, source, target)

    def record_optimize(self, objective: str) -> None:
        """Count one energy-optimisation request for *objective*."""
        with self.registry.lock:
            self.optimize_requests.inc(1.0, objective)

    def record_coschedule(self) -> None:
        """Count one co-scheduled pair evaluation."""
        with self.registry.lock:
            self.coschedule_pairs.inc()

    def set_queue_depth(self, depth: int) -> None:
        """Publish the admission queue's current depth."""
        with self.registry.lock:
            self.queue_depth.set(depth)

    def adjust_inflight(self, delta: int) -> None:
        """Track HTTP requests entering (+1) and leaving (-1) handling."""
        with self.registry.lock:
            self.inflight.inc(delta)

    def render(self) -> str:
        """The ``/metrics`` payload."""
        return self.registry.render()
