"""The fleet router: shard, dispatch, supervise, fail over, drain.

:class:`FleetExecutor` gives ``gpuscale serve --workers N`` the same
four-method surface the in-process :class:`~repro.service.batcher.
MicroBatcher` exposes (``start`` / ``submit`` / ``stop`` /
``pending``), which is the seam that lets :mod:`repro.service.server`
run identically in both modes. Behind that surface it owns N spawned
engine-worker processes (:mod:`repro.service.worker`), one socketpair
each, and routes every validated query with a consistent-hash ring:

* **grid queries** shard by the ``(space, engine)`` fingerprint — the
  same canonical-JSON hash the sweep cache keys on — so every query
  against one surface lands on one worker. That single placement rule
  is what makes the fleet's cache single-flight *by construction*:
  concurrent misses for a fingerprint all queue on the same worker's
  batcher, which coalesces them into one study call and one cache
  write, fleet-wide.
* **point queries** shard by ``(kernel, config)`` so duplicates keep
  hitting the same batcher's dedup map.

The resilience layer (PR 7) wraps that placement rule in policy from
:mod:`repro.service.resilience`:

* every worker sits behind a :class:`~repro.service.resilience.
  CircuitBreaker` — repeated infrastructure failures (death, frame
  corruption, timeouts) open it, and an open breaker drops the worker
  out of its shards' preference chains so ring *neighbours* absorb
  the load until a cooldown probe succeeds;
* requests travel as :class:`_Dispatch` records that can be *placed*
  on more than one worker over their lifetime: failover replaces a
  placement when a worker dies or its frames stop decoding, and
  **hedged dispatch** adds a second placement for a grid query that
  has burned a configurable fraction of its deadline budget —
  first answer wins, the loser's entry is dropped so its late frame
  is freed, never double-delivered (queries are pure, so duplicates
  are always safe);
* worker restarts draw from a sliding-window :class:`~repro.service.
  resilience.RestartBudget` instead of the old lifetime cap of 3: a
  flapping worker can restart forever, just not faster than the
  budget, and while it is down its shards fail over instead of
  erroring;
* every admitted query carries an absolute monotonic *deadline* that
  rides the wire to the worker's batcher, so expired work is
  cancelled at whichever hop notices first rather than computed for
  nobody.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import itertools
import socket
import time
from multiprocessing import get_context
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.service import transport
from repro.service.batcher import (
    QUERY_TYPES,
    DeadlineExceededError,
    DrainRateEstimator,
    EnergyGridQuery,
    GridQuery,
    OverloadError,
    PairGridQuery,
    PointResult,
    GridResult,
    Query,
    ServiceClosedError,
    ServiceTimeoutError,
)
from repro.service.chaos import ChaosConfig
from repro.service.metrics import render_fleet
from repro.service.resilience import (
    BreakerConfig,
    CircuitBreaker,
    RestartBudget,
    WorkerUnavailableError,
    expired,
    remaining_s,
)
from repro.service.worker import WorkerConfig, worker_main

__all__ = [
    "FleetExecutor",
    "HashRing",
    "WorkerUnavailableError",
]

#: How long to wait for a freshly spawned worker's ``ready`` frame.
WORKER_START_TIMEOUT_S = 30.0

#: How long a worker gets to ack a ``drain`` frame before termination.
WORKER_DRAIN_TIMEOUT_S = 30.0

#: Virtual nodes per worker on the hash ring.
VNODES_PER_WORKER = 64

#: Default sliding-window restart allowance per worker.
DEFAULT_RESTART_BUDGET = 8
DEFAULT_RESTART_WINDOW_S = 60.0

#: Fraction of a query's deadline budget to burn before hedging a
#: grid query onto a second worker.
DEFAULT_HEDGE_FRACTION = 0.5


def _hash64(key: str) -> int:
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing of shard keys onto worker indices.

    *Virtual nodes* smooth the per-worker share; the mapping depends
    only on ``(n_workers, vnodes)``, so every router instance with the
    same fleet size routes identically (and a restarted worker keeps
    exactly its old shard — restarts never reshuffle placement).
    """

    def __init__(
        self, n_workers: int, vnodes: int = VNODES_PER_WORKER
    ):
        if n_workers < 1:
            raise ValueError(f"need >= 1 worker, got {n_workers}")
        self.n_workers = n_workers
        points: List[Tuple[int, int]] = []
        for worker in range(n_workers):
            for vnode in range(vnodes):
                points.append((_hash64(f"{worker}:{vnode}"), worker))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [w for _, w in points]

    def lookup(self, key: str) -> int:
        """The worker index owning *key*."""
        index = bisect.bisect(self._hashes, _hash64(key))
        return self._owners[index % len(self._owners)]

    def preference(self, key: str) -> List[int]:
        """All workers in failover order for *key*.

        The ring walked clockwise from the key's position, keeping
        the first occurrence of each worker: element 0 is
        :meth:`lookup`, element 1 is where the shard fails over when
        its owner is down or breaker-open, and so on. Deterministic
        per key, so failover (like primary placement) never depends
        on router state.
        """
        start = bisect.bisect(self._hashes, _hash64(key))
        order: List[int] = []
        seen = set()
        total = len(self._owners)
        for step in range(total):
            owner = self._owners[(start + step) % total]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
                if len(order) == self.n_workers:
                    break
        return order


class _Dispatch:
    """One admitted query's routing state.

    A dispatch can be *placed* on several workers over its lifetime —
    failover replaces a placement, hedging adds one — and every
    placement registers in that worker's ``inflight`` map under a
    fresh request id, all pointing back at the same caller-facing
    future. The first frame to resolve the future wins; stale
    placements are dropped so their late frames are released, not
    delivered twice.
    """

    __slots__ = (
        "query", "payload", "future", "timeout", "deadline",
        "placements", "attempts",
    )

    def __init__(self, query, payload, future, timeout, deadline):
        self.query = query
        self.payload = payload
        self.future = future
        self.timeout = timeout
        self.deadline = deadline
        #: [(handle, request_id, is_hedge)]
        self.placements: List[Tuple[Any, int, bool]] = []
        self.attempts = 0


class _WorkerHandle:
    """Router-side state of one worker process."""

    def __init__(
        self,
        index: int,
        breaker: CircuitBreaker,
        budget: RestartBudget,
    ):
        self.index = index
        self.breaker = breaker
        self.budget = budget
        self.process = None
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.supervisor: Optional[asyncio.Task] = None
        self.connected = False
        self.draining = False
        self.restarts = 0
        self.pid: Optional[int] = None
        self.drain_rate = DrainRateEstimator()
        #: request_id -> _Dispatch; the resubmission source of truth
        #: when the process dies.
        self.inflight: Dict[int, _Dispatch] = {}
        #: request_id -> future for ping/metrics/drain round-trips.
        self.control: Dict[int, asyncio.Future] = {}

    @property
    def available(self) -> bool:
        """Can this worker take a dispatch right now?"""
        return self.connected and not self.draining


class FleetExecutor:
    """N worker processes behind the MicroBatcher's submit surface."""

    def __init__(
        self,
        n_workers: int,
        *,
        engine: str = "interval",
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        queue_limit: int = 1024,
        use_cache: bool = True,
        cache_dir: Optional[str] = None,
        chaos: Optional[ChaosConfig] = None,
        metrics: Any = None,
        breaker: Optional[BreakerConfig] = None,
        restart_budget: int = DEFAULT_RESTART_BUDGET,
        restart_window_s: float = DEFAULT_RESTART_WINDOW_S,
        hedge_fraction: Optional[float] = DEFAULT_HEDGE_FRACTION,
    ):
        if n_workers < 1:
            raise ValueError(f"need >= 1 worker, got {n_workers}")
        if hedge_fraction is not None and not 0.0 < hedge_fraction:
            hedge_fraction = None
        self.n_workers = n_workers
        self._engine = engine
        self._worker_config = dict(
            engine=engine,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            queue_limit=queue_limit,
            use_cache=use_cache,
            cache_dir=cache_dir,
            chaos=chaos,
        )
        # The router admits a bounded number of queries per worker; the
        # worker's own queue_limit stays the authoritative 429 source
        # (it knows its drain rate), this cap just bounds router memory
        # if a worker stalls.
        self._inflight_limit = queue_limit + 4 * max_batch
        self._metrics = metrics
        self._hedge_fraction = hedge_fraction
        self._breaker_config = breaker or BreakerConfig()
        self._ring = HashRing(n_workers)
        self._handles = [
            _WorkerHandle(
                i,
                breaker=CircuitBreaker(
                    self._breaker_config,
                    on_transition=self._breaker_recorder(i),
                ),
                budget=RestartBudget(restart_budget, restart_window_s),
            )
            for i in range(n_workers)
        ]
        self._ctx = get_context("spawn")
        self._request_ids = itertools.count(1)
        self._engine_digest: Optional[str] = None
        self._space_digests: Dict[Any, str] = {}
        self._closed = True
        self._draining = False

    # ------------------------------------------------------------------
    # Metrics plumbing (all optional: a metrics-less fleet still works)
    # ------------------------------------------------------------------

    def _record(self, method: str, *args) -> None:
        hook = getattr(self._metrics, method, None)
        if hook is not None:
            hook(*args)

    def _breaker_recorder(self, index: int):
        def on_transition(old_state: str, new_state: str) -> None:
            self._record(
                "record_breaker_transition",
                str(index), old_state, new_state,
            )

        return on_transition

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """True while the fleet accepts queries."""
        return not self._closed and not self._draining

    @property
    def pending(self) -> int:
        """Queries admitted by the router and not yet answered."""
        seen = set()
        for handle in self._handles:
            seen.update(id(d) for d in handle.inflight.values())
        return len(seen)

    async def start(self) -> None:
        """Spawn every worker and wait for all ``ready`` frames."""
        self._closed = False
        await asyncio.gather(
            *(self._spawn(handle) for handle in self._handles)
        )
        for handle in self._handles:
            handle.supervisor = asyncio.get_running_loop().create_task(
                self._supervise(handle)
            )

    async def stop(self, drain: bool = True) -> None:
        """Stop the fleet.

        ``drain=True``: refuse new work, answer every admitted query
        (restarting or failing over any worker that dies mid-drain),
        then hand each worker a ``drain`` frame so its own batcher
        drains, and join the processes. ``drain=False``: fail
        in-flight queries with :class:`ServiceClosedError` and
        terminate immediately.
        """
        if self._closed and not any(h.process for h in self._handles):
            return
        self._draining = True
        if drain:
            await self._await_inflight()
            self._closed = True
            await asyncio.gather(
                *(self._drain_worker(h) for h in self._handles)
            )
        else:
            self._closed = True
            for handle in self._handles:
                for request_id in list(handle.inflight):
                    entry = handle.inflight.pop(request_id, None)
                    if entry is not None and not entry.future.done():
                        entry.future.set_exception(
                            ServiceClosedError("service shut down")
                        )
        for handle in self._handles:
            if handle.supervisor is not None:
                handle.supervisor.cancel()
        await asyncio.gather(
            *(
                h.supervisor
                for h in self._handles
                if h.supervisor is not None
            ),
            return_exceptions=True,
        )
        for handle in self._handles:
            await self._dispose(handle, force=not drain)

    async def _await_inflight(self) -> None:
        """Wait until every admitted query has an answer."""
        while True:
            futures = [
                entry.future
                for handle in self._handles
                for entry in list(handle.inflight.values())
            ]
            futures = [f for f in futures if not f.done()]
            if not futures:
                return
            await asyncio.wait(futures)
            # Let reader callbacks pop answered entries before rescan.
            await asyncio.sleep(0)

    async def _drain_worker(self, handle: _WorkerHandle) -> None:
        handle.draining = True
        if not handle.connected:
            return
        try:
            await asyncio.wait_for(
                self._control_roundtrip(handle, "drain"),
                WORKER_DRAIN_TIMEOUT_S,
            )
        except (asyncio.TimeoutError, ReproError, ConnectionError):
            pass  # _dispose falls back to terminate + join

    async def _dispose(
        self, handle: _WorkerHandle, force: bool
    ) -> None:
        """Close the socket and join (or kill) the process."""
        handle.connected = False
        if handle.writer is not None:
            handle.writer.close()
            try:
                await handle.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            handle.writer = None
        process = handle.process
        if process is None:
            return
        loop = asyncio.get_running_loop()
        if force and process.is_alive():
            process.terminate()
        await loop.run_in_executor(None, process.join, 10)
        if process.is_alive():
            process.kill()
            await loop.run_in_executor(None, process.join, 10)
        handle.process = None

    # ------------------------------------------------------------------
    # Spawning and supervision
    # ------------------------------------------------------------------

    async def _spawn(self, handle: _WorkerHandle) -> None:
        """Start (or replace) *handle*'s process; await its ready frame."""
        parent_sock, child_sock = socket.socketpair()
        config = WorkerConfig(
            worker_id=handle.index,
            generation=handle.restarts,
            **self._worker_config,
        )
        process = self._ctx.Process(
            target=worker_main,
            args=(child_sock, config),
            name=f"gpuscale-worker-{handle.index}",
            daemon=True,
        )
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, process.start)
        child_sock.close()
        reader, writer = await asyncio.open_connection(sock=parent_sock)
        frame = await asyncio.wait_for(
            transport.read_frame(reader), WORKER_START_TIMEOUT_S
        )
        if frame is None or frame[0] != "ready":
            writer.close()
            process.terminate()
            raise WorkerUnavailableError(
                f"worker {handle.index} never reported ready "
                f"(got {frame!r})"
            )
        handle.process = process
        handle.reader = reader
        handle.writer = writer
        handle.pid = frame[2]
        handle.connected = True

    async def _supervise(self, handle: _WorkerHandle) -> None:
        """Read frames until shutdown, restarting a dead worker."""
        while True:
            if not handle.connected or handle.reader is None:
                return
            frame = None
            try:
                frame = await transport.read_frame(handle.reader)
            except (transport.TransportError, ConnectionError, OSError):
                frame = None
            if frame is not None:
                self._handle_frame(handle, frame)
                continue
            # EOF (or stream corruption): the worker died, crashed
            # mid-frame, or exited after a drain ack.
            handle.connected = False
            self._fail_control(
                handle, f"worker {handle.index} died mid-request"
            )
            if self._closed or (
                handle.draining and not handle.inflight
            ):
                return
            await self._restart(handle)

    def _fail_control(self, handle: _WorkerHandle, message: str) -> None:
        """Fail pending control round-trips so nothing awaits a ghost."""
        for request_id in list(handle.control):
            future = handle.control.pop(request_id, None)
            if future is not None and not future.done():
                future.set_exception(WorkerUnavailableError(message))

    async def _restart(self, handle: _WorkerHandle) -> None:
        """Respawn *handle*'s worker within its restart budget.

        Worker death is an infrastructure failure, so it feeds the
        breaker. While the budget is exhausted the shard's in-flight
        work fails over to ring neighbours and the supervisor sleeps
        until the next restart slot frees up — a crash-looping worker
        degrades its shard, it no longer loses it forever.
        """
        await self._dispose(handle, force=True)
        handle.breaker.record_failure()
        while not self._closed:
            if handle.draining and not handle.inflight:
                return
            if not handle.budget.try_acquire():
                self._failover_all(handle)
                wait = min(handle.budget.next_free_s() + 0.01, 1.0)
                await asyncio.sleep(wait)
                continue
            try:
                await self._spawn(handle)
            except (ReproError, OSError, asyncio.TimeoutError):
                await asyncio.sleep(0.2)
                continue
            handle.restarts += 1
            self._record("record_worker_restart", str(handle.index))
            self._resubmit(handle)
            return

    def _resubmit(self, handle: _WorkerHandle) -> None:
        """Replay in-flight queries onto a freshly restarted worker.

        Safe because queries are pure, deterministic computations: the
        caller keeps awaiting the same future and cannot observe the
        replay (results are bit-identical by the engine's determinism).
        """
        for request_id in list(handle.inflight):
            entry = handle.inflight.get(request_id)
            if entry is None:
                continue
            if entry.future.done():  # caller gave up while worker was down
                handle.inflight.pop(request_id, None)
                continue
            self._send(
                handle,
                (
                    "query", request_id, entry.payload,
                    entry.timeout, entry.deadline,
                ),
            )

    def _failover_all(self, handle: _WorkerHandle) -> None:
        """Move a down worker's in-flight work to ring neighbours.

        Dispatches with no eligible neighbour stay parked on *handle*
        and are resubmitted when it finally respawns.
        """
        for request_id in list(handle.inflight):
            dispatch = handle.inflight.get(request_id)
            if dispatch is None:
                continue
            if dispatch.future.done():
                handle.inflight.pop(request_id, None)
                continue
            target = self._pick_target(dispatch, exclude=(handle,))
            if target is None:
                continue  # parked until respawn
            handle.inflight.pop(request_id, None)
            dispatch.placements = [
                p for p in dispatch.placements
                if not (p[0] is handle and p[1] == request_id)
            ]
            self._place(dispatch, target)

    def _send(
        self, handle: _WorkerHandle, frame: Tuple[Any, ...]
    ) -> None:
        """Best-effort frame write; a dead socket is the supervisor's
        problem (EOF -> restart -> resubmit), not the submitter's."""
        if not handle.connected or handle.writer is None:
            return
        try:
            transport.send_frame(handle.writer, frame)
        except (ConnectionError, OSError, RuntimeError):
            handle.connected = False

    def _handle_frame(
        self, handle: _WorkerHandle, frame: Tuple[Any, ...]
    ) -> None:
        kind = frame[0]
        if kind == "result":
            _, request_id, encoded = frame
            dispatch = handle.inflight.pop(request_id, None)
            handle.drain_rate.record(
                1, asyncio.get_running_loop().time()
            )
            if dispatch is None or dispatch.future.done():
                transport.release_result(encoded)
                return
            try:
                result = transport.decode_result(encoded)
            except transport.TransportError as exc:
                # The worker answered but the handoff failed (e.g. a
                # vanished shm segment): infrastructure, not the
                # query's fault — count it and try another placement.
                handle.breaker.record_failure()
                self._drop_placement(dispatch, handle, request_id)
                self._failover_dispatch(dispatch, exc)
                return
            except ReproError as exc:
                dispatch.future.set_exception(exc)
                self._settle(dispatch)
                return
            handle.breaker.record_success()
            if self._was_hedge(dispatch, handle, request_id):
                self._record("record_hedge", str(handle.index), "won")
            dispatch.future.set_result(result)
            self._settle(dispatch)
        elif kind == "error":
            _, request_id, code, message, extra = frame
            dispatch = handle.inflight.pop(request_id, None)
            if dispatch is None or dispatch.future.done():
                return
            # The worker is answering — its infrastructure is fine,
            # whatever it thinks of the query.
            handle.breaker.record_success()
            dispatch.future.set_exception(
                transport.decode_error(code, message, extra)
            )
            self._settle(dispatch)
        elif kind in ("pong", "metrics", "drained"):
            future = handle.control.pop(frame[1], None)
            if future is not None and not future.done():
                future.set_result(frame)

    @staticmethod
    def _was_hedge(
        dispatch: _Dispatch, handle: _WorkerHandle, request_id: int
    ) -> bool:
        return any(
            h is handle and rid == request_id and is_hedge
            for h, rid, is_hedge in dispatch.placements
        )

    def _settle(self, dispatch: _Dispatch) -> None:
        """Drop every remaining placement of a resolved dispatch so
        stale frames are released instead of delivered twice."""
        for h, rid, _ in dispatch.placements:
            h.inflight.pop(rid, None)
        dispatch.placements.clear()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _candidates(self, query: Query) -> List[_WorkerHandle]:
        """The shard's failover chain as handles, owner first."""
        return [
            self._handles[index]
            for index in self._ring.preference(self.shard_key(query))
        ]

    def _pick_target(
        self,
        dispatch: _Dispatch,
        exclude: Tuple[_WorkerHandle, ...] = (),
    ) -> Optional[_WorkerHandle]:
        """The best worker for a new placement of *dispatch*."""
        placed = {h for h, _, _ in dispatch.placements}
        now = time.monotonic()
        for handle in self._candidates(dispatch.query):
            if handle in placed or handle in exclude:
                continue
            if not handle.available or not handle.breaker.allow(now):
                continue
            if len(handle.inflight) >= self._inflight_limit:
                continue
            return handle
        return None

    def _place(
        self,
        dispatch: _Dispatch,
        handle: _WorkerHandle,
        is_hedge: bool = False,
    ) -> int:
        request_id = next(self._request_ids)
        dispatch.placements.append((handle, request_id, is_hedge))
        dispatch.attempts += 1
        handle.inflight[request_id] = dispatch
        self._send(
            handle,
            (
                "query", request_id, dispatch.payload,
                dispatch.timeout, dispatch.deadline,
            ),
        )
        return request_id

    def _drop_placement(
        self,
        dispatch: _Dispatch,
        handle: _WorkerHandle,
        request_id: int,
    ) -> None:
        dispatch.placements = [
            p for p in dispatch.placements
            if not (p[0] is handle and p[1] == request_id)
        ]

    def _failover_dispatch(
        self, dispatch: _Dispatch, exc: ReproError
    ) -> None:
        """Re-place a dispatch whose placement just failed, or fail
        its future with *exc* once the fleet is out of options."""
        if dispatch.future.done():
            self._settle(dispatch)
            return
        if dispatch.placements:
            return  # a sibling placement (hedge) is still in flight
        if dispatch.attempts > 2 * self.n_workers + 1:
            dispatch.future.set_exception(exc)
            return
        target = self._pick_target(dispatch)
        if target is None:
            # Allow one same-worker retry when nobody else is
            # eligible (single-worker fleets still recover from a
            # lost shm segment by recomputing).
            now = time.monotonic()
            for handle in self._candidates(dispatch.query):
                if handle.available and handle.breaker.allow(now):
                    target = handle
                    break
        if target is None:
            dispatch.future.set_exception(exc)
            return
        self._place(dispatch, target)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def _space_digest(self, space) -> str:
        """Cache ``(space, engine)`` fingerprints by space identity."""
        digest = self._space_digests.get(space)
        if digest is None:
            from repro.gpu.engine import engine_fingerprint
            from repro.gpu.uarch import family_label
            from repro.sweep.cache import fingerprint_blob

            if self._engine_digest is None:
                self._engine_digest = fingerprint_blob(
                    {"engine": engine_fingerprint(self._engine)}
                )
            # The family label rides in the shard key so the routing
            # unit is (family, grid, engine); the physics values in
            # space.to_dict() already keep distinct families on
            # distinct shards, the label keeps that legible.
            digest = (
                f"{family_label(space.uarch)}|"
                + fingerprint_blob(
                    {
                        "space": space.to_dict(),
                        "engine": self._engine_digest,
                    }
                )
            )
            self._space_digests[space] = digest
        return digest

    def shard_key(self, query: Query) -> str:
        """The consistent-hash key: ``(family, space, engine)``
        fingerprint for grids, kernel-qualified fingerprints for
        energy and pair surfaces, ``(kernel, config)`` identity for
        points."""
        if isinstance(query, GridQuery):
            return f"g|{self._space_digest(query.space)}"
        if isinstance(query, EnergyGridQuery):
            return (
                f"e|{query.kernel.full_name}"
                f"|{self._space_digest(query.space)}"
            )
        if isinstance(query, PairGridQuery):
            partner = (
                "-" if query.kernel_b is None
                else query.kernel_b.full_name
            )
            return (
                f"x|{query.kernel_a.full_name}|{partner}"
                f"|{self._space_digest(query.space)}"
            )
        config = query.config
        return (
            f"p|{query.kernel.full_name}|{config.cu_count}"
            f"|{config.engine_mhz}|{config.memory_mhz}"
        )

    def worker_for(self, query: Query) -> int:
        """Which worker index *query* routes to (exposed for tests)."""
        return self._ring.lookup(self.shard_key(query))

    async def submit(
        self,
        query: Query,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> Union[PointResult, GridResult]:
        """Route *query* to its shard's healthiest worker.

        *deadline* is absolute ``loop.time()``/``time.monotonic()``;
        it travels with the query to the worker's batcher, bounds the
        await here, and (for grid queries) paces the hedge timer.
        """
        if not isinstance(query, QUERY_TYPES):
            raise TypeError(f"not a query: {query!r}")
        if self._closed or self._draining:
            raise ServiceClosedError(
                "service is shutting down; no new queries admitted"
            )
        loop = asyncio.get_running_loop()
        now = loop.time()
        if expired(deadline, now):
            self._record("record_deadline_exceeded")
            raise DeadlineExceededError(
                "deadline expired before fleet dispatch"
            )
        left = remaining_s(deadline, now)
        budget = timeout
        deadline_bound = False
        if left is not None and (budget is None or left <= budget):
            budget = left
            deadline_bound = True

        # The primary is the healthiest worker in the shard's chain
        # (down and breaker-open workers fail over to neighbours), but
        # saturation does NOT fail over: spilling a hot shard onto its
        # neighbour would break the single-flight cache placement, so
        # a saturated owner still answers 429 with a backoff hint.
        primary = None
        for handle in self._candidates(query):
            if handle.available and handle.breaker.allow(now):
                primary = handle
                break
        if primary is None:
            raise self._no_target_error(query, now)
        if len(primary.inflight) >= self._inflight_limit:
            raise OverloadError(
                f"worker {primary.index} has "
                f"{len(primary.inflight)} queries in flight; retry "
                "with backoff",
                retry_after=primary.drain_rate.retry_after_s(
                    len(primary.inflight)
                ),
            )
        dispatch = _Dispatch(
            query=query,
            payload=transport.encode_query(query),
            future=loop.create_future(),
            timeout=timeout,
            deadline=deadline,
        )
        self._place(dispatch, primary)
        hedge_task = None
        if (
            self._hedge_fraction is not None
            and budget is not None
            and isinstance(
                query, (GridQuery, EnergyGridQuery, PairGridQuery)
            )
            and self.n_workers > 1
        ):
            hedge_task = loop.create_task(
                self._hedge_later(
                    dispatch, budget * self._hedge_fraction
                )
            )
        try:
            return await asyncio.wait_for(dispatch.future, budget)
        except asyncio.TimeoutError:
            # Slow workers count against their breakers: a worker
            # that repeatedly runs queries into their deadlines is
            # indistinguishable from a hung one.
            for h, _, _ in dispatch.placements:
                h.breaker.record_failure()
            if deadline_bound:
                self._record("record_deadline_exceeded")
                raise DeadlineExceededError(
                    f"query missed its deadline after {budget:.3f}s "
                    "in the fleet"
                ) from None
            raise ServiceTimeoutError(
                f"query timed out after {timeout}s in the service"
            ) from None
        finally:
            if hedge_task is not None:
                hedge_task.cancel()
            self._settle(dispatch)

    def _no_target_error(self, query: Query, now: float) -> ReproError:
        """Why is no worker eligible right now?"""
        states = []
        for handle in self._candidates(query):
            if not handle.available:
                states.append(f"worker {handle.index} down")
            elif not handle.breaker.allow(now):
                states.append(f"worker {handle.index} breaker-open")
        return WorkerUnavailableError(
            "no worker can take this query: " + "; ".join(states)
        )

    async def _hedge_later(
        self, dispatch: _Dispatch, delay: float
    ) -> None:
        """After *delay*, duplicate the dispatch onto a second worker.

        Queries are pure, so the duplicate is safe: both placements
        compute the same bits, the first one back resolves the
        future, and :meth:`_settle` drops the loser so its late frame
        is freed.
        """
        try:
            await asyncio.sleep(delay)
        except asyncio.CancelledError:
            return
        if dispatch.future.done() or not dispatch.placements:
            return
        target = self._pick_target(dispatch)
        if target is None:
            return
        self._place(dispatch, target, is_hedge=True)
        self._record("record_hedge", str(target.index), "issued")

    # ------------------------------------------------------------------
    # Health and metrics
    # ------------------------------------------------------------------

    async def _control_roundtrip(
        self, handle: _WorkerHandle, kind: str
    ) -> Tuple[Any, ...]:
        if not handle.connected:
            raise WorkerUnavailableError(
                f"worker {handle.index} is not connected"
            )
        request_id = next(self._request_ids)
        future = asyncio.get_running_loop().create_future()
        handle.control[request_id] = future
        self._send(handle, (kind, request_id))
        try:
            return await future
        finally:
            handle.control.pop(request_id, None)

    def worker_states(self) -> List[Dict[str, Any]]:
        """Per-worker liveness, breaker, and budget for ``/healthz``."""
        now = time.monotonic()
        states = []
        for handle in self._handles:
            alive = (
                handle.process is not None
                and handle.process.is_alive()
                and handle.connected
            )
            states.append(
                {
                    "worker": handle.index,
                    "pid": handle.pid,
                    "alive": bool(alive),
                    "restarts": handle.restarts,
                    "inflight": len(handle.inflight),
                    "breaker": handle.breaker.state(now),
                    "restart_budget": {
                        "available": handle.budget.available(now),
                        "window_s": handle.budget.window_s,
                        "next_free_s": round(
                            handle.budget.next_free_s(now), 3
                        ),
                    },
                }
            )
        return states

    async def render_metrics(self, router_registry) -> str:
        """The fleet-wide ``/metrics`` exposition.

        Collects a snapshot from every reachable worker (a worker that
        fails to answer within 2 s is skipped — a scrape must never
        hang on a dying process) and merges them with the router's own
        registry under per-worker labels plus ``worker="fleet"``
        totals.
        """
        snapshots = {"router": router_registry.snapshot()}

        async def collect(handle: _WorkerHandle) -> None:
            try:
                frame = await asyncio.wait_for(
                    self._control_roundtrip(handle, "metrics"), 2.0
                )
                snapshots[str(handle.index)] = frame[2]
            except (
                asyncio.TimeoutError, ReproError, ConnectionError,
            ):
                pass

        await asyncio.gather(
            *(collect(handle) for handle in self._handles)
        )
        return render_fleet(snapshots)

    def retry_after_s(self) -> float:
        """Backoff hint across the fleet: the worst per-worker drain."""
        return max(
            handle.drain_rate.retry_after_s(len(handle.inflight))
            for handle in self._handles
        )
