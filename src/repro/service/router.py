"""The fleet router: shard, dispatch, supervise, drain.

:class:`FleetExecutor` gives ``gpuscale serve --workers N`` the same
four-method surface the in-process :class:`~repro.service.batcher.
MicroBatcher` exposes (``start`` / ``submit`` / ``stop`` /
``pending``), which is the seam that lets :mod:`repro.service.server`
run identically in both modes. Behind that surface it owns N spawned
engine-worker processes (:mod:`repro.service.worker`), one socketpair
each, and routes every validated query with a consistent-hash ring:

* **grid queries** shard by the ``(space, engine)`` fingerprint — the
  same canonical-JSON hash the sweep cache keys on — so every query
  against one surface lands on one worker. That single placement rule
  is what makes the fleet's cache single-flight *by construction*:
  concurrent misses for a fingerprint all queue on the same worker's
  batcher, which coalesces them into one study call and one cache
  write, fleet-wide.
* **point queries** shard by ``(kernel, config)`` so duplicates keep
  hitting the same batcher's dedup map.

Supervision: a reader task per worker detects death as EOF, respawns
the process, and resubmits that worker's in-flight queries — queries
are pure computations, so replaying them is safe and invisible to the
HTTP caller (they keep awaiting the same future). Graceful shutdown
first answers everything admitted (restarting any worker that dies
mid-drain), then sends each worker a ``drain`` frame and joins it.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import itertools
import socket
from multiprocessing import get_context
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.service import transport
from repro.service.batcher import (
    DrainRateEstimator,
    GridQuery,
    OverloadError,
    PointQuery,
    PointResult,
    GridResult,
    Query,
    ServiceClosedError,
    ServiceTimeoutError,
)
from repro.service.metrics import render_fleet
from repro.service.worker import WorkerConfig, worker_main

#: How long to wait for a freshly spawned worker's ``ready`` frame.
WORKER_START_TIMEOUT_S = 30.0

#: How long a worker gets to ack a ``drain`` frame before termination.
WORKER_DRAIN_TIMEOUT_S = 30.0

#: Consecutive failed (re)spawns before a shard is declared lost.
MAX_RESTART_ATTEMPTS = 3

#: Virtual nodes per worker on the hash ring.
VNODES_PER_WORKER = 64


class WorkerUnavailableError(ReproError):
    """A shard's worker could not be (re)started; its queries fail."""


def _hash64(key: str) -> int:
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing of shard keys onto worker indices.

    *Virtual nodes* smooth the per-worker share; the mapping depends
    only on ``(n_workers, vnodes)``, so every router instance with the
    same fleet size routes identically (and a restarted worker keeps
    exactly its old shard — restarts never reshuffle placement).
    """

    def __init__(
        self, n_workers: int, vnodes: int = VNODES_PER_WORKER
    ):
        if n_workers < 1:
            raise ValueError(f"need >= 1 worker, got {n_workers}")
        points: List[Tuple[int, int]] = []
        for worker in range(n_workers):
            for vnode in range(vnodes):
                points.append((_hash64(f"{worker}:{vnode}"), worker))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [w for _, w in points]

    def lookup(self, key: str) -> int:
        """The worker index owning *key*."""
        index = bisect.bisect(self._hashes, _hash64(key))
        return self._owners[index % len(self._owners)]


class _WorkerHandle:
    """Router-side state of one worker process."""

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.supervisor: Optional[asyncio.Task] = None
        self.connected = False
        self.lost = False  # true once restarts are exhausted
        self.draining = False
        self.restarts = 0
        self.pid: Optional[int] = None
        self.drain_rate = DrainRateEstimator()
        #: request_id -> (payload, future, timeout); the resubmission
        #: source of truth when the process dies.
        self.inflight: Dict[int, Tuple[Any, asyncio.Future, Any]] = {}
        #: request_id -> future for ping/metrics/drain round-trips.
        self.control: Dict[int, asyncio.Future] = {}


class FleetExecutor:
    """N worker processes behind the MicroBatcher's submit surface."""

    def __init__(
        self,
        n_workers: int,
        *,
        engine: str = "interval",
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        queue_limit: int = 1024,
        use_cache: bool = True,
        cache_dir: Optional[str] = None,
    ):
        if n_workers < 1:
            raise ValueError(f"need >= 1 worker, got {n_workers}")
        self.n_workers = n_workers
        self._engine = engine
        self._worker_config = dict(
            engine=engine,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            queue_limit=queue_limit,
            use_cache=use_cache,
            cache_dir=cache_dir,
        )
        # The router admits a bounded number of queries per worker; the
        # worker's own queue_limit stays the authoritative 429 source
        # (it knows its drain rate), this cap just bounds router memory
        # if a worker stalls.
        self._inflight_limit = queue_limit + 4 * max_batch
        self._ring = HashRing(n_workers)
        self._handles = [_WorkerHandle(i) for i in range(n_workers)]
        self._ctx = get_context("spawn")
        self._request_ids = itertools.count(1)
        self._engine_digest: Optional[str] = None
        self._space_digests: Dict[Any, str] = {}
        self._closed = True
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """True while the fleet accepts queries."""
        return not self._closed and not self._draining

    @property
    def pending(self) -> int:
        """Queries admitted by the router and not yet answered."""
        return sum(len(h.inflight) for h in self._handles)

    async def start(self) -> None:
        """Spawn every worker and wait for all ``ready`` frames."""
        self._closed = False
        await asyncio.gather(
            *(self._spawn(handle) for handle in self._handles)
        )
        for handle in self._handles:
            handle.supervisor = asyncio.get_running_loop().create_task(
                self._supervise(handle)
            )

    async def stop(self, drain: bool = True) -> None:
        """Stop the fleet.

        ``drain=True``: refuse new work, answer every admitted query
        (restarting any worker that dies mid-drain), then hand each
        worker a ``drain`` frame so its own batcher drains, and join
        the processes. ``drain=False``: fail in-flight queries with
        :class:`ServiceClosedError` and terminate immediately.
        """
        if self._closed and not any(h.process for h in self._handles):
            return
        self._draining = True
        if drain:
            await self._await_inflight()
            self._closed = True
            await asyncio.gather(
                *(self._drain_worker(h) for h in self._handles)
            )
        else:
            self._closed = True
            for handle in self._handles:
                for request_id in list(handle.inflight):
                    entry = handle.inflight.pop(request_id, None)
                    if entry is not None and not entry[1].done():
                        entry[1].set_exception(
                            ServiceClosedError("service shut down")
                        )
        for handle in self._handles:
            if handle.supervisor is not None:
                handle.supervisor.cancel()
        await asyncio.gather(
            *(
                h.supervisor
                for h in self._handles
                if h.supervisor is not None
            ),
            return_exceptions=True,
        )
        for handle in self._handles:
            await self._dispose(handle, force=not drain)

    async def _await_inflight(self) -> None:
        """Wait until every admitted query has an answer."""
        while True:
            futures = [
                entry[1]
                for handle in self._handles
                for entry in list(handle.inflight.values())
            ]
            futures = [f for f in futures if not f.done()]
            if not futures:
                return
            await asyncio.wait(futures)
            # Let reader callbacks pop answered entries before rescan.
            await asyncio.sleep(0)

    async def _drain_worker(self, handle: _WorkerHandle) -> None:
        handle.draining = True
        if not handle.connected:
            return
        try:
            await asyncio.wait_for(
                self._control_roundtrip(handle, "drain"),
                WORKER_DRAIN_TIMEOUT_S,
            )
        except (asyncio.TimeoutError, ReproError, ConnectionError):
            pass  # _dispose falls back to terminate + join

    async def _dispose(
        self, handle: _WorkerHandle, force: bool
    ) -> None:
        """Close the socket and join (or kill) the process."""
        handle.connected = False
        if handle.writer is not None:
            handle.writer.close()
            try:
                await handle.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            handle.writer = None
        process = handle.process
        if process is None:
            return
        loop = asyncio.get_running_loop()
        if force and process.is_alive():
            process.terminate()
        await loop.run_in_executor(None, process.join, 10)
        if process.is_alive():
            process.kill()
            await loop.run_in_executor(None, process.join, 10)
        handle.process = None

    # ------------------------------------------------------------------
    # Spawning and supervision
    # ------------------------------------------------------------------

    async def _spawn(self, handle: _WorkerHandle) -> None:
        """Start (or replace) *handle*'s process; await its ready frame."""
        parent_sock, child_sock = socket.socketpair()
        config = WorkerConfig(
            worker_id=handle.index, **self._worker_config
        )
        process = self._ctx.Process(
            target=worker_main,
            args=(child_sock, config),
            name=f"gpuscale-worker-{handle.index}",
            daemon=True,
        )
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, process.start)
        child_sock.close()
        reader, writer = await asyncio.open_connection(sock=parent_sock)
        frame = await asyncio.wait_for(
            transport.read_frame(reader), WORKER_START_TIMEOUT_S
        )
        if frame is None or frame[0] != "ready":
            writer.close()
            process.terminate()
            raise WorkerUnavailableError(
                f"worker {handle.index} never reported ready "
                f"(got {frame!r})"
            )
        handle.process = process
        handle.reader = reader
        handle.writer = writer
        handle.pid = frame[2]
        handle.connected = True

    async def _supervise(self, handle: _WorkerHandle) -> None:
        """Read frames until shutdown, restarting a dead worker."""
        while True:
            frame = None
            try:
                frame = await transport.read_frame(handle.reader)
            except (transport.TransportError, ConnectionError, OSError):
                frame = None
            if frame is not None:
                self._handle_frame(handle, frame)
                continue
            # EOF: the worker died (or exited after a drain ack).
            handle.connected = False
            if self._closed or (
                handle.draining and not handle.inflight
            ):
                return
            await self._restart(handle)
            if handle.lost:
                return

    async def _restart(self, handle: _WorkerHandle) -> None:
        """Respawn *handle*'s worker and resubmit its in-flight work."""
        await self._dispose(handle, force=True)
        for request_id in list(handle.control):
            future = handle.control.pop(request_id, None)
            if future is not None and not future.done():
                future.set_exception(
                    WorkerUnavailableError(
                        f"worker {handle.index} died mid-request"
                    )
                )
        for attempt in range(MAX_RESTART_ATTEMPTS):
            try:
                await self._spawn(handle)
            except (ReproError, OSError, asyncio.TimeoutError):
                await asyncio.sleep(0.2 * (attempt + 1))
                continue
            handle.restarts += 1
            self._resubmit(handle)
            return
        handle.lost = True
        for request_id in list(handle.inflight):
            entry = handle.inflight.pop(request_id, None)
            if entry is not None and not entry[1].done():
                entry[1].set_exception(
                    WorkerUnavailableError(
                        f"worker {handle.index} could not be restarted "
                        f"after {MAX_RESTART_ATTEMPTS} attempts"
                    )
                )

    def _resubmit(self, handle: _WorkerHandle) -> None:
        """Replay in-flight queries onto a freshly restarted worker.

        Safe because queries are pure, deterministic computations: the
        caller keeps awaiting the same future and cannot observe the
        replay (results are bit-identical by the engine's determinism).
        """
        for request_id in list(handle.inflight):
            entry = handle.inflight.get(request_id)
            if entry is None:
                continue
            payload, future, timeout = entry
            if future.done():  # caller timed out while worker was down
                handle.inflight.pop(request_id, None)
                continue
            self._send(handle, ("query", request_id, payload, timeout))

    def _send(
        self, handle: _WorkerHandle, frame: Tuple[Any, ...]
    ) -> None:
        """Best-effort frame write; a dead socket is the supervisor's
        problem (EOF -> restart -> resubmit), not the submitter's."""
        if not handle.connected or handle.writer is None:
            return
        try:
            transport.send_frame(handle.writer, frame)
        except (ConnectionError, OSError, RuntimeError):
            handle.connected = False

    def _handle_frame(
        self, handle: _WorkerHandle, frame: Tuple[Any, ...]
    ) -> None:
        kind = frame[0]
        if kind == "result":
            _, request_id, encoded = frame
            entry = handle.inflight.pop(request_id, None)
            handle.drain_rate.record(
                1, asyncio.get_running_loop().time()
            )
            if entry is None or entry[1].done():
                transport.release_result(encoded)
                return
            try:
                entry[1].set_result(transport.decode_result(encoded))
            except ReproError as exc:
                entry[1].set_exception(exc)
        elif kind == "error":
            _, request_id, code, message, extra = frame
            entry = handle.inflight.pop(request_id, None)
            if entry is None or entry[1].done():
                return
            entry[1].set_exception(
                transport.decode_error(code, message, extra)
            )
        elif kind in ("pong", "metrics", "drained"):
            future = handle.control.pop(frame[1], None)
            if future is not None and not future.done():
                future.set_result(frame)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def _space_digest(self, space) -> str:
        """Cache ``(space, engine)`` fingerprints by space identity."""
        digest = self._space_digests.get(space)
        if digest is None:
            from repro.gpu.engine import engine_fingerprint
            from repro.sweep.cache import fingerprint_blob

            if self._engine_digest is None:
                self._engine_digest = fingerprint_blob(
                    {"engine": engine_fingerprint(self._engine)}
                )
            digest = fingerprint_blob(
                {
                    "space": space.to_dict(),
                    "engine": self._engine_digest,
                }
            )
            self._space_digests[space] = digest
        return digest

    def shard_key(self, query: Query) -> str:
        """The consistent-hash key: ``(space, engine)`` fingerprint
        for grids, ``(kernel, config)`` identity for points."""
        if isinstance(query, GridQuery):
            return f"g|{self._space_digest(query.space)}"
        config = query.config
        return (
            f"p|{query.kernel.full_name}|{config.cu_count}"
            f"|{config.engine_mhz}|{config.memory_mhz}"
        )

    def worker_for(self, query: Query) -> int:
        """Which worker index *query* routes to (exposed for tests)."""
        return self._ring.lookup(self.shard_key(query))

    async def submit(
        self, query: Query, timeout: Optional[float] = None
    ) -> Union[PointResult, GridResult]:
        """Route *query* to its shard's worker; await the answer."""
        if not isinstance(query, (PointQuery, GridQuery)):
            raise TypeError(f"not a query: {query!r}")
        if self._closed or self._draining:
            raise ServiceClosedError(
                "service is shutting down; no new queries admitted"
            )
        handle = self._handles[self.worker_for(query)]
        if handle.lost:
            raise WorkerUnavailableError(
                f"worker {handle.index} is down and could not be "
                "restarted"
            )
        if len(handle.inflight) >= self._inflight_limit:
            raise OverloadError(
                f"worker {handle.index} has {len(handle.inflight)} "
                "queries in flight; retry with backoff",
                retry_after=handle.drain_rate.retry_after_s(
                    len(handle.inflight)
                ),
            )
        request_id = next(self._request_ids)
        future = asyncio.get_running_loop().create_future()
        payload = transport.encode_query(query)
        handle.inflight[request_id] = (payload, future, timeout)
        self._send(handle, ("query", request_id, payload, timeout))
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            handle.inflight.pop(request_id, None)
            raise ServiceTimeoutError(
                f"query timed out after {timeout}s in the service"
            ) from None

    # ------------------------------------------------------------------
    # Health and metrics
    # ------------------------------------------------------------------

    async def _control_roundtrip(
        self, handle: _WorkerHandle, kind: str
    ) -> Tuple[Any, ...]:
        if not handle.connected:
            raise WorkerUnavailableError(
                f"worker {handle.index} is not connected"
            )
        request_id = next(self._request_ids)
        future = asyncio.get_running_loop().create_future()
        handle.control[request_id] = future
        self._send(handle, (kind, request_id))
        try:
            return await future
        finally:
            handle.control.pop(request_id, None)

    def worker_states(self) -> List[Dict[str, Any]]:
        """Per-worker liveness for ``/healthz``."""
        states = []
        for handle in self._handles:
            alive = (
                handle.process is not None
                and handle.process.is_alive()
                and handle.connected
            )
            states.append(
                {
                    "worker": handle.index,
                    "pid": handle.pid,
                    "alive": bool(alive),
                    "restarts": handle.restarts,
                    "inflight": len(handle.inflight),
                }
            )
        return states

    async def render_metrics(self, router_registry) -> str:
        """The fleet-wide ``/metrics`` exposition.

        Collects a snapshot from every reachable worker (a worker that
        fails to answer within 2 s is skipped — a scrape must never
        hang on a dying process) and merges them with the router's own
        registry under per-worker labels plus ``worker="fleet"``
        totals.
        """
        snapshots = {"router": router_registry.snapshot()}

        async def collect(handle: _WorkerHandle) -> None:
            try:
                frame = await asyncio.wait_for(
                    self._control_roundtrip(handle, "metrics"), 2.0
                )
                snapshots[str(handle.index)] = frame[2]
            except (
                asyncio.TimeoutError, ReproError, ConnectionError,
            ):
                pass

        await asyncio.gather(
            *(collect(handle) for handle in self._handles)
        )
        return render_fleet(snapshots)

    def retry_after_s(self) -> float:
        """Backoff hint across the fleet: the worst per-worker drain."""
        return max(
            handle.drain_rate.retry_after_s(len(handle.inflight))
            for handle in self._handles
        )
