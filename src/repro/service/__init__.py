"""The online query service: inference-style serving of the engines.

The study engine answers 237,897-point sweeps in ~30 ms, but until
this package every consumer had to fork a CLI run. :mod:`repro.service`
turns the engine registry into an always-on building block shaped like
an inference stack:

* :mod:`repro.service.batcher` — an asyncio micro-batcher that
  coalesces concurrent simulate queries into single grid/study engine
  calls, bit-exact versus direct per-request calls.
* :mod:`repro.service.server` — a stdlib-only asyncio HTTP server
  exposing ``/v1/simulate``, ``/v1/classify``, ``/v1/whatif``,
  ``/v1/engines``, ``/healthz``, and ``/metrics``.
* :mod:`repro.service.schema` — versioned request validation with
  structured 400 errors.
* :mod:`repro.service.metrics` — counters and latency/batch-size
  histograms rendered in Prometheus text format.
* :mod:`repro.service.router` / :mod:`repro.service.worker` /
  :mod:`repro.service.transport` — the ``--workers N`` multi-process
  fleet: a consistent-hash router in the serving process, N spawned
  engine workers each running their own batcher, and the framed
  shared-memory IPC between them.
* :mod:`repro.service.loadgen` — the closed- and open-loop
  load-generator harness behind the service throughput and
  saturation benchmarks.

``gpuscale serve`` wires it all together.
"""

from repro.service.batcher import (
    DrainRateEstimator,
    EnergyGridQuery,
    GridQuery,
    MicroBatcher,
    OverloadError,
    PairGridQuery,
    PointQuery,
    ServiceClosedError,
    ServiceTimeoutError,
)
from repro.service.metrics import (
    MetricsRegistry,
    ServiceMetrics,
    render_fleet,
)
from repro.service.router import (
    FleetExecutor,
    HashRing,
    WorkerUnavailableError,
)
from repro.service.schema import RequestError, SCHEMA_VERSION
from repro.service.server import GpuScaleService, ServiceConfig
from repro.service.worker import WorkerConfig

__all__ = [
    "DrainRateEstimator",
    "EnergyGridQuery",
    "FleetExecutor",
    "GpuScaleService",
    "GridQuery",
    "HashRing",
    "MetricsRegistry",
    "MicroBatcher",
    "OverloadError",
    "PairGridQuery",
    "PointQuery",
    "RequestError",
    "SCHEMA_VERSION",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceTimeoutError",
    "WorkerConfig",
    "WorkerUnavailableError",
    "render_fleet",
]
