"""The online query service: inference-style serving of the engines.

The study engine answers 237,897-point sweeps in ~30 ms, but until
this package every consumer had to fork a CLI run. :mod:`repro.service`
turns the engine registry into an always-on building block shaped like
an inference stack:

* :mod:`repro.service.batcher` — an asyncio micro-batcher that
  coalesces concurrent simulate queries into single grid/study engine
  calls, bit-exact versus direct per-request calls.
* :mod:`repro.service.server` — a stdlib-only asyncio HTTP server
  exposing ``/v1/simulate``, ``/v1/classify``, ``/v1/whatif``,
  ``/v1/engines``, ``/healthz``, and ``/metrics``.
* :mod:`repro.service.schema` — versioned request validation with
  structured 400 errors.
* :mod:`repro.service.metrics` — counters and latency/batch-size
  histograms rendered in Prometheus text format.
* :mod:`repro.service.loadgen` — the load-generator harness behind the
  service throughput benchmark.

``gpuscale serve`` wires it all together.
"""

from repro.service.batcher import (
    GridQuery,
    MicroBatcher,
    OverloadError,
    PointQuery,
    ServiceClosedError,
    ServiceTimeoutError,
)
from repro.service.metrics import MetricsRegistry, ServiceMetrics
from repro.service.schema import RequestError, SCHEMA_VERSION
from repro.service.server import GpuScaleService, ServiceConfig

__all__ = [
    "GpuScaleService",
    "GridQuery",
    "MetricsRegistry",
    "MicroBatcher",
    "OverloadError",
    "PointQuery",
    "RequestError",
    "SCHEMA_VERSION",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceTimeoutError",
]
