"""Atomic file persistence.

Every artifact the package writes (datasets, CSV exports, report
files, campaign journal shards and manifests) goes through
write-to-temp-then-:func:`os.replace`, so an interrupted write — a
killed campaign, a full disk, a crashing worker — never leaves a
truncated file at the final path. The final path either holds the
previous complete contents or the new complete contents, never a
half-written hybrid.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

#: Per-process counter making every temp name unique. The pid alone is
#: not enough: two *threads* of one process writing the same final path
#: concurrently (e.g. the query service's engine worker racing a test
#: harness on one cache entry) would share a pid-suffixed temp file and
#: interleave their bytes.
_SEQUENCE = itertools.count()


@contextmanager
def atomic_path(path: Union[str, Path]) -> Iterator[Path]:
    """Yield a temporary sibling path; publish it on clean exit.

    The body writes to the yielded temp path. If it completes without
    raising, the temp file is renamed over *path* atomically; if it
    raises, the temp file is removed and *path* is left untouched.
    Temp names are unique per call (pid, thread, sequence number), so
    concurrent writers — threads included — never share one; the last
    ``os.replace`` to land wins, and every intermediate state of the
    final path is some writer's complete output.
    """
    path = Path(path)
    tmp = path.with_name(
        f".{path.name}.tmp.{os.getpid()}"
        f".{threading.get_ident()}.{next(_SEQUENCE)}"
    )
    try:
        yield tmp
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Atomically write *text* to *path*; returns the final path."""
    path = Path(path)
    with atomic_path(path) as tmp:
        tmp.write_text(text)
    return path
