"""Hardware configuration of the modelled GCN-class GPU.

The IISWC'15 study swept three knobs on a single physical GPU:

* **compute-unit count** — an 11x range (the abstract's "11x difference
  in compute units"),
* **engine (core) clock** — a 5x range,
* **memory clock** — an 8.3x range of resulting DRAM bandwidth.

:class:`HardwareConfig` captures one point of that space plus the fixed
microarchitectural parameters (SIMD width, cache sizes, bus width) of
the reference product, and exposes the derived peak capabilities the
roofline-style analysis needs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GB, KIB, MIB


#: Microarchitecture fields carrying real (non-integer) values; every
#: other physics field deserialises as an int.
_FLOAT_FIELDS = frozenset(
    {"dram_fixed_latency_ns", "host_bandwidth_fraction"}
)


@dataclass(frozen=True)
class Microarchitecture:
    """Fixed (non-swept) parameters of the modelled GPU.

    Defaults describe a Hawaii-class (FirePro W9100-like) part: 4
    16-lane SIMDs per CU, 16 KiB vector L1 per CU, 1 MiB shared L2,
    64 KiB LDS per CU, and a 512-bit GDDR5 interface (quad-pumped).

    The ``name`` slug is display-only identity (metrics labels,
    ``/healthz``, error messages). It is excluded from equality,
    hashing, and :meth:`to_dict` so cache/journal fingerprints stay
    derived purely from physics values — renaming a family never
    invalidates cached sweeps, and two parts with identical physics
    memoize as one.
    """

    simds_per_cu: int = 4
    lanes_per_simd: int = 16
    max_waves_per_simd: int = 10
    max_workgroups_per_cu: int = 16
    vgprs_per_simd: int = 256
    sgprs_per_cu: int = 512
    lds_bytes_per_cu: int = 64 * KIB
    l1_bytes_per_cu: int = 16 * KIB
    l2_bytes_total: int = 1 * MIB
    l2_banks: int = 16
    memory_bus_bits: int = 512
    memory_data_rate: int = 4  # GDDR5 transfers per memory-clock cycle
    l1_latency_cycles: int = 114
    l2_latency_cycles: int = 190
    dram_latency_cycles: int = 30  # interface serialisation, memory clock
    dram_fixed_latency_ns: float = 150.0  # DRAM core timings + controller,
    # fixed in wall-clock time (tRCD/tCAS/tRP do not scale with clocks)
    vgpr_granule: int = 4  # VGPR allocation granularity (waves round up)
    sgpr_granule: int = 8  # SGPR allocation granularity
    #: Fraction of peak DRAM bandwidth reserved by a host sharing the
    #: memory controller (APU contention); 0 for discrete parts.
    host_bandwidth_fraction: float = 0.0
    name: str = dataclasses.field(default="", compare=False)

    def __post_init__(self) -> None:
        for field_name in (
            "simds_per_cu",
            "lanes_per_simd",
            "max_waves_per_simd",
            "max_workgroups_per_cu",
            "vgprs_per_simd",
            "sgprs_per_cu",
            "lds_bytes_per_cu",
            "l1_bytes_per_cu",
            "l2_bytes_total",
            "l2_banks",
            "memory_bus_bits",
            "memory_data_rate",
            "l1_latency_cycles",
            "l2_latency_cycles",
            "dram_latency_cycles",
            "vgpr_granule",
            "sgpr_granule",
        ):
            if getattr(self, field_name) < 1:
                raise ConfigurationError(f"{field_name} must be >= 1")
        if self.dram_fixed_latency_ns < 0:
            raise ConfigurationError("dram_fixed_latency_ns must be >= 0")
        if not 0.0 <= self.host_bandwidth_fraction < 1.0:
            raise ConfigurationError(
                "host_bandwidth_fraction must be in [0, 1), got "
                f"{self.host_bandwidth_fraction}"
            )

    @property
    def label(self) -> str:
        """The display slug, ``"custom"`` for anonymous instances."""
        return self.name or "custom"

    @property
    def lanes_per_cu(self) -> int:
        """Vector lanes per compute unit (64 on GCN)."""
        return self.simds_per_cu * self.lanes_per_simd

    @property
    def max_waves_per_cu(self) -> int:
        """Architectural wavefront-slot cap per CU (40 on GCN)."""
        return self.simds_per_cu * self.max_waves_per_simd

    def to_dict(self) -> dict:
        """Serialise every physics parameter (JSON-compatible).

        The ``name`` slug is deliberately omitted: fingerprints built
        over this payload identify the *physics*, so renames never
        invalidate caches.
        """
        return {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name != "name"
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Microarchitecture":
        """Reconstruct from :meth:`to_dict` output (validated).

        Accepts an optional ``"name"`` key (display identity) on top of
        the physics payload; missing physics fields take the Hawaii
        defaults, so payloads written before a field existed still load.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - fields
        if unknown:
            raise ConfigurationError(
                f"unknown microarchitecture fields: {sorted(unknown)}"
            )
        converted = {}
        for key, value in payload.items():
            if key == "name":
                converted[key] = str(value)
            elif key in _FLOAT_FIELDS:
                converted[key] = float(value)
            else:
                converted[key] = int(value)
        return cls(**converted)


#: The reference microarchitecture used across the study.
HAWAII_UARCH = Microarchitecture(name="hawaii")


@dataclass(frozen=True)
class HardwareConfig:
    """One point in the (CU count, engine clock, memory clock) space."""

    cu_count: int
    engine_mhz: float
    memory_mhz: float
    uarch: Microarchitecture = HAWAII_UARCH

    def __post_init__(self) -> None:
        if self.cu_count < 1:
            raise ConfigurationError(
                f"cu_count must be >= 1, got {self.cu_count}"
            )
        if self.engine_mhz <= 0:
            raise ConfigurationError(
                f"engine_mhz must be > 0, got {self.engine_mhz}"
            )
        if self.memory_mhz <= 0:
            raise ConfigurationError(
                f"memory_mhz must be > 0, got {self.memory_mhz}"
            )

    # ------------------------------------------------------------------
    # Derived peak capabilities
    # ------------------------------------------------------------------

    @property
    def engine_hz(self) -> float:
        """Engine clock in Hz."""
        return self.engine_mhz * 1e6

    @property
    def memory_hz(self) -> float:
        """Memory clock in Hz."""
        return self.memory_mhz * 1e6

    @property
    def peak_valu_lane_ops_per_sec(self) -> float:
        """Peak vector-lane operations per second (single-op, not FMA)."""
        return self.cu_count * self.uarch.lanes_per_cu * self.engine_hz

    @property
    def peak_gflops(self) -> float:
        """Peak single-precision GFLOP/s counting FMA as two FLOPs."""
        return 2.0 * self.peak_valu_lane_ops_per_sec / 1e9

    @property
    def peak_dram_bytes_per_sec(self) -> float:
        """Peak DRAM bandwidth in bytes/second.

        ``bus_bits/8`` bytes per transfer, ``memory_data_rate`` transfers
        per memory-clock cycle (4 for GDDR5). At 1250 MHz on a 512-bit
        bus this gives the W9100's datasheet 320 GB/s. On shared-memory
        parts the host's reserved share
        (``uarch.host_bandwidth_fraction``) comes off the top.
        """
        bytes_per_cycle = (
            self.uarch.memory_bus_bits / 8 * self.uarch.memory_data_rate
        )
        return (
            bytes_per_cycle
            * self.memory_hz
            * (1.0 - self.uarch.host_bandwidth_fraction)
        )

    @property
    def peak_dram_gb_per_sec(self) -> float:
        """Peak DRAM bandwidth in decimal GB/s."""
        return self.peak_dram_bytes_per_sec / GB

    @property
    def peak_l2_bytes_per_sec(self) -> float:
        """Peak L2 bandwidth in bytes/second.

        The L2 sits in the engine clock domain and moves 64 bytes per
        bank per cycle — this is why cache-resident kernels scale with
        *engine* frequency rather than memory frequency.
        """
        return self.uarch.l2_banks * 64 * self.engine_hz

    @property
    def peak_lds_bytes_per_sec(self) -> float:
        """Aggregate LDS bandwidth in bytes/second (32 banks x 4 B/cycle)."""
        return self.cu_count * 128 * self.engine_hz

    @property
    def machine_balance_flops_per_byte(self) -> float:
        """Roofline ridge point: peak FLOPs per peak DRAM byte."""
        return self.peak_gflops * 1e9 / self.peak_dram_bytes_per_sec

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def replace(self, **changes) -> "HardwareConfig":
        """Return a copy with ``changes`` applied (validated)."""
        return dataclasses.replace(self, **changes)

    def label(self) -> str:
        """Short human-readable identifier, e.g. ``44cu_1000e_1250m``."""
        return (
            f"{self.cu_count}cu_{self.engine_mhz:g}e_{self.memory_mhz:g}m"
        )

    def to_dict(self) -> dict:
        """Serialise the swept knobs (the uarch is implied by context)."""
        return {
            "cu_count": self.cu_count,
            "engine_mhz": self.engine_mhz,
            "memory_mhz": self.memory_mhz,
        }

    @classmethod
    def from_dict(
        cls, payload: dict, uarch: Microarchitecture = HAWAII_UARCH
    ) -> "HardwareConfig":
        """Reconstruct from :meth:`to_dict` output."""
        return cls(
            cu_count=int(payload["cu_count"]),
            engine_mhz=float(payload["engine_mhz"]),
            memory_mhz=float(payload["memory_mhz"]),
            uarch=uarch,
        )
