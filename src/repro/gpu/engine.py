"""The timing-engine seam: protocol, descriptors, and registry.

Every evaluator in the repo — the scalar interval oracle, the
vectorized batch/study interval engine, the discrete-event cross-check,
the fault-injection wrapper, and the k-NN surrogate predictor — is a
*timing engine*: an object that turns (kernel, hardware) questions into
seconds. This module defines the one seam they all plug into:

* :class:`TimingEngine` — the structural protocol. An engine declares
  which call shapes it supports (``supports_point`` /
  ``supports_grid`` / ``supports_study``) and implements only those;
  consumers negotiate capabilities instead of switching on enums.
* :class:`EngineDescriptor` — a stable identity (name, family,
  version, substrate material) from which the sweep cache and the
  campaign journal derive their fingerprints, so no layer above the
  engine ever reaches into engine internals again.
* The process-wide registry — :func:`register_engine` /
  :func:`get_engine` / :func:`list_engines`. Adding a backend is one
  registration; the facade, sweep runners, cache, campaign, and CLI
  pick it up by name with zero further changes.

The legacy :class:`Engine` and :class:`GridMode` enums survive as
deprecated aliases whose values *are* registry names / mode names;
:func:`normalize_engine` and :func:`normalize_grid_mode` collapse
either spelling to the canonical string, which is the only currency
the rest of the stack speaks.

:class:`GridSpace` is the structural contract of the sweep layer's
``ConfigurationSpace`` — the exact attribute surface grid-capable
engines consume. Engine modules annotate against it instead of
forward-referencing ``repro.sweep``, which removes the gpu -> sweep
import cycle the old ``TYPE_CHECKING`` guards papered over.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.gpu.config import HardwareConfig, Microarchitecture


# ----------------------------------------------------------------------
# Structural grid contract (breaks the gpu -> sweep forward reference)
# ----------------------------------------------------------------------


@runtime_checkable
class GridSpace(Protocol):
    """What a grid-capable engine needs from a configuration space.

    ``repro.sweep.space.ConfigurationSpace`` satisfies this by
    construction; anything else exposing the same axes, shape, and
    per-coordinate :meth:`config` lookup works identically. Engines
    must consume *only* this surface.
    """

    cu_counts: Tuple[int, ...]
    engine_mhz: Tuple[float, ...]
    memory_mhz: Tuple[float, ...]
    uarch: "Microarchitecture"

    @property
    def shape(self) -> Tuple[int, int, int]:
        """(num CU settings, num engine states, num memory states)."""
        ...

    def config(
        self, cu_idx: int, eng_idx: int, mem_idx: int
    ) -> "HardwareConfig":
        """The configuration at one grid coordinate."""
        ...


# ----------------------------------------------------------------------
# Capabilities and identity
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EngineCapabilities:
    """Which call shapes an engine implements natively.

    Consumers degrade gracefully along study -> grid -> point: a
    missing study path falls back to per-kernel grids (restoring
    per-kernel fault attribution), a missing grid path falls back to a
    point loop (the reference-oracle evaluation order).
    """

    point: bool = False
    grid: bool = False
    study: bool = False

    def as_dict(self) -> Dict[str, bool]:
        """The three flags keyed by call shape."""
        return {"point": self.point, "grid": self.grid, "study": self.study}


#: Fidelity tiers, most faithful first. ``reference`` engines model
#: microarchitectural mechanisms directly (the discrete-event
#: cross-check); ``exact`` engines are the analytical interval family
#: that defines the study dataset; ``approximate`` engines trade
#: accuracy for speed and publish a measured error budget. The service
#: routes a toleranced query to the cheapest tier whose error fits.
FIDELITY_TIERS: Tuple[str, ...] = ("reference", "exact", "approximate")


def fidelity_rank(fidelity: str) -> int:
    """Position of *fidelity* in :data:`FIDELITY_TIERS` (0 = most
    faithful); unknown strings rank after every known tier."""
    try:
        return FIDELITY_TIERS.index(fidelity)
    except ValueError:
        return len(FIDELITY_TIERS)


@dataclass(frozen=True)
class EngineDescriptor:
    """Stable identity of one timing engine.

    *name* is the registry key (``"interval-batch"``); *family* is the
    numerical-equivalence class (``"interval"``): engines in one family
    are equivalence-tested to produce identical datasets, so
    fingerprints must not distinguish them. *version* tracks the
    engine's numerics; *material* names the modelled substrate.

    *fidelity* places the engine on the :data:`FIDELITY_TIERS` ladder
    and *error_budget* bounds its error against the exact tier: 0.0
    for reference/exact engines (equivalence-tested), a measured
    median-relative-error ceiling for approximate ones. Neither field
    enters :meth:`fingerprint_material` — fidelity metadata routes
    queries, it does not change what an engine computes.
    """

    name: str
    family: str
    version: int = 1
    material: str = "gcn3-hawaii-class"
    fidelity: str = "exact"
    error_budget: float = 0.0

    def fingerprint_material(self) -> str:
        """The string cache keys and campaign journals embed.

        Version 1 engines emit the bare family name — byte-identical
        to the pre-registry fingerprint payloads, so existing cache
        entries and resumable journals stay valid. A version bump
        (i.e. a numerics change) moves the material and invalidates
        both, which is exactly what a numerics change must do.
        """
        if self.version == 1:
            return self.family
        return f"{self.family}@v{self.version}"


@runtime_checkable
class TimingEngine(Protocol):
    """Structural protocol every timing engine implements.

    ``supports_*`` flags declare the call shapes; an engine implements
    only the matching ``simulate*`` methods. ``descriptor()`` supplies
    the stable identity fingerprints derive from. The signatures use
    ``Any`` for kernel/result types so engine modules need no imports
    beyond this seam to conform.
    """

    @property
    def supports_point(self) -> bool:
        """True if ``simulate(kernel, config)`` is implemented."""
        ...

    @property
    def supports_grid(self) -> bool:
        """True if ``simulate_grid(kernel, space)`` is implemented."""
        ...

    @property
    def supports_study(self) -> bool:
        """True if ``simulate_study(pack, space)`` is implemented."""
        ...

    def descriptor(self) -> EngineDescriptor:
        """This engine's stable identity."""
        ...


# ----------------------------------------------------------------------
# Deprecated enum aliases
# ----------------------------------------------------------------------


class Engine(Enum):
    """Deprecated alias: legacy engine selector.

    Values are registry names; use ``engine="interval"`` (or any name
    from :func:`list_engines`) instead. Kept so pre-registry call
    sites keep working unchanged.
    """

    INTERVAL = "interval"
    EVENT = "event"


class GridMode(Enum):
    """Deprecated alias: legacy grid-evaluation selector.

    Values are mode names (``"batch"``, ``"scalar"``, ``"study"``);
    pass the strings directly. ``scalar`` forces the point-loop
    oracle, ``study`` requests whole-study kernel-axis batching.
    """

    BATCH = "batch"
    SCALAR = "scalar"
    STUDY = "study"


#: Anything that names an engine: a registry name, a legacy enum
#: member, or an object carrying a ``descriptor()``.
EngineSpec = Union[str, Engine, TimingEngine]

#: Anything that names a grid-evaluation mode.
GridModeSpec = Union[str, GridMode]

GRID_MODES = ("batch", "scalar", "study")


def normalize_engine(spec: EngineSpec) -> str:
    """Collapse an engine spelling to its canonical registry name."""
    if isinstance(spec, str):
        return spec
    if isinstance(spec, Enum):
        return str(spec.value)
    descriptor = getattr(spec, "descriptor", None)
    if callable(descriptor):
        return descriptor().name
    raise ConfigurationError(f"cannot interpret {spec!r} as an engine")


def normalize_grid_mode(spec: GridModeSpec) -> str:
    """Collapse a grid-mode spelling to its canonical mode name."""
    mode = str(spec.value) if isinstance(spec, Enum) else str(spec)
    if mode not in GRID_MODES:
        raise ConfigurationError(
            f"unknown grid mode {mode!r}; valid: {GRID_MODES}"
        )
    return mode


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


@dataclass
class EngineRegistration:
    """One registry entry: identity, capabilities, factory, telemetry.

    ``calls`` is the per-engine instrumentation hook: every facade
    evaluation routed to this engine increments it (thread-safely,
    via :func:`record_engine_call`). The sweep cache's acceptance
    test pins that cached re-runs leave every counter untouched.
    """

    name: str
    factory: Callable[..., Any]
    capabilities: EngineCapabilities
    descriptor: EngineDescriptor
    summary: str = ""
    calls: int = field(default=0, compare=False)


_REGISTRY: Dict[str, EngineRegistration] = {}
_REGISTRY_LOCK = threading.Lock()


def register_engine(
    name: str,
    factory: Callable[..., Any],
    *,
    capabilities: EngineCapabilities,
    descriptor: Optional[EngineDescriptor] = None,
    summary: str = "",
    replace: bool = False,
) -> EngineRegistration:
    """Register a timing-engine factory under *name*.

    *factory* is called by :func:`get_engine` (keyword arguments pass
    through) and must return an object satisfying
    :class:`TimingEngine`. Registering an existing name raises unless
    ``replace=True``. Returns the registration entry.
    """
    if not name or "/" in name:
        raise ConfigurationError(f"invalid engine name {name!r}")
    entry = EngineRegistration(
        name=name,
        factory=factory,
        capabilities=capabilities,
        descriptor=descriptor
        or EngineDescriptor(name=name, family=name),
        summary=summary,
    )
    with _REGISTRY_LOCK:
        if name in _REGISTRY and not replace:
            raise ConfigurationError(
                f"engine {name!r} is already registered "
                "(pass replace=True to override)"
            )
        _REGISTRY[name] = entry
    return entry


def unregister_engine(name: str) -> bool:
    """Drop one registration; ``True`` if something was removed."""
    with _REGISTRY_LOCK:
        return _REGISTRY.pop(name, None) is not None


def engine_registration(name: str) -> EngineRegistration:
    """The registry entry for *name*, or a structured error."""
    with _REGISTRY_LOCK:
        entry = _REGISTRY.get(name)
    if entry is None:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ConfigurationError(
            f"unknown engine {name!r}; registered engines: {known}"
        )
    return entry


def get_engine(spec: EngineSpec, **kwargs: Any) -> Any:
    """Instantiate the engine registered under *spec*.

    Each call returns a fresh instance (engines may carry per-instance
    caches); keyword arguments are forwarded to the factory.
    """
    return engine_registration(normalize_engine(spec)).factory(**kwargs)


def list_engines() -> Tuple[EngineRegistration, ...]:
    """Every registration, sorted by name."""
    with _REGISTRY_LOCK:
        entries = sorted(_REGISTRY.values(), key=lambda e: e.name)
    return tuple(entries)


def engine_names() -> Tuple[str, ...]:
    """Registered engine names, sorted."""
    return tuple(entry.name for entry in list_engines())


def find_family_engine(
    family: str, capability: str, *, exclude: str = ""
) -> Optional[EngineRegistration]:
    """A registration in *family* natively supporting *capability*.

    This is the negotiation primitive behind the facade: the scalar
    interval oracle has no grid path, but its family sibling
    ``interval-batch`` does, so grid calls resolve there. Returns
    ``None`` when the family offers no such engine — callers then
    degrade (grid -> point loop) or refuse (study).
    """
    for entry in list_engines():
        if entry.name == exclude:
            continue
        if entry.descriptor.family != family:
            continue
        if getattr(entry.capabilities, capability, False):
            return entry
    return None


def engine_fingerprint(spec: EngineSpec) -> str:
    """Fingerprint material of *spec* for cache keys and journals.

    Derived from the engine's :class:`EngineDescriptor` — never from
    engine internals. Engines sharing a family (equivalence-tested
    paths) share material, so they share cache entries.
    """
    descriptor = getattr(spec, "descriptor", None)
    if callable(descriptor):
        return descriptor().fingerprint_material()
    return (
        engine_registration(normalize_engine(spec))
        .descriptor.fingerprint_material()
    )


# ----------------------------------------------------------------------
# Instrumentation (replaces the old module-global call counter)
# ----------------------------------------------------------------------


def record_engine_call(name: str) -> None:
    """Count one engine evaluation against *name*'s registry entry.

    Unregistered names are counted under an ad-hoc entryless tally so
    wrappers around exotic simulators never lose telemetry.
    """
    with _REGISTRY_LOCK:
        entry = _REGISTRY.get(name)
        if entry is not None:
            entry.calls += 1
        else:
            _UNREGISTERED_CALLS[name] = _UNREGISTERED_CALLS.get(name, 0) + 1


_UNREGISTERED_CALLS: Dict[str, int] = {}


def engine_calls(name: Optional[str] = None) -> int:
    """Engine evaluations since the last reset.

    With *name*, that engine's count; without, the total across every
    registry entry (plus any unregistered tallies).
    """
    with _REGISTRY_LOCK:
        if name is not None:
            entry = _REGISTRY.get(name)
            if entry is not None:
                return entry.calls
            return _UNREGISTERED_CALLS.get(name, 0)
        return sum(e.calls for e in _REGISTRY.values()) + sum(
            _UNREGISTERED_CALLS.values()
        )


def reset_engine_calls() -> None:
    """Zero every engine's call counter."""
    with _REGISTRY_LOCK:
        for entry in _REGISTRY.values():
            entry.calls = 0
        _UNREGISTERED_CALLS.clear()


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------
#
# Factories import lazily: this module is the seam the engine modules
# themselves import (for GridSpace / EngineDescriptor), so importing
# them here at module level would cycle.


def _interval_factory(**kwargs: Any) -> Any:
    from repro.gpu.interval_model import IntervalModel

    return IntervalModel(**kwargs)


def _interval_batch_factory(**kwargs: Any) -> Any:
    from repro.gpu.interval_batch import BatchIntervalModel

    return BatchIntervalModel(**kwargs)


def _study_mt_factory(**kwargs: Any) -> Any:
    from repro.gpu.study_mt import StudyMTModel

    return StudyMTModel(**kwargs)


def _event_factory(**kwargs: Any) -> Any:
    from repro.gpu.event_sim import EventSimulator

    return EventSimulator(**kwargs)


def _predictor_factory(**kwargs: Any) -> Any:
    from repro.predict.engine import PredictorEngine

    return PredictorEngine(**kwargs)


def _faulty_factory(simulator: Any = None, specs: Any = (), **kwargs: Any) -> Any:
    from repro.gpu.simulator import GpuSimulator
    from repro.sweep.faults import FaultyEngine

    if simulator is None:
        simulator = GpuSimulator("interval")
    return FaultyEngine(simulator, specs, **kwargs)


#: Descriptors of the built-in engines — the single source the engine
#: classes' ``descriptor()`` methods and the registry both return.
INTERVAL_DESCRIPTOR = EngineDescriptor(name="interval", family="interval")
INTERVAL_BATCH_DESCRIPTOR = EngineDescriptor(
    name="interval-batch", family="interval"
)
# study-mt shares the interval family at version 1, so it shares the
# family's fingerprint material — and therefore its cache entries —
# exactly as the bit-exactness tests demand.
STUDY_MT_DESCRIPTOR = EngineDescriptor(name="study-mt", family="interval")
EVENT_DESCRIPTOR = EngineDescriptor(
    name="event", family="event", fidelity="reference"
)
#: Declared ceiling on the predictor's median relative error across
#: held-out corpus kernels — the static budget `/v1/engines` reports.
#: Routing uses the live per-space measured error, which is tighter.
PREDICTOR_ERROR_BUDGET = 0.35
PREDICTOR_DESCRIPTOR = EngineDescriptor(
    name="predictor",
    family="predictor",
    material="knn-surrogate",
    fidelity="approximate",
    error_budget=PREDICTOR_ERROR_BUDGET,
)
# The wrapper is its own family on purpose: family membership promises
# numerical equivalence, so fault-corrupted results must never resolve
# as (or fingerprint like) a clean interval engine.
FAULTY_DESCRIPTOR = EngineDescriptor(
    name="faulty", family="faulty", material="fault-injection-wrapper"
)


def _register_builtins() -> None:
    register_engine(
        "interval",
        _interval_factory,
        capabilities=EngineCapabilities(point=True),
        descriptor=INTERVAL_DESCRIPTOR,
        summary="scalar analytical interval model (reference oracle)",
        replace=True,
    )
    register_engine(
        "interval-batch",
        _interval_batch_factory,
        capabilities=EngineCapabilities(grid=True, study=True),
        descriptor=INTERVAL_BATCH_DESCRIPTOR,
        summary="vectorized interval model (per-kernel grid and "
        "whole-study kernel-axis batching)",
        replace=True,
    )
    register_engine(
        "study-mt",
        _study_mt_factory,
        capabilities=EngineCapabilities(study=True),
        descriptor=STUDY_MT_DESCRIPTOR,
        summary="multi-core study engine: kernel-axis tiles across a "
        "process pool assembled through shared memory",
        replace=True,
    )
    register_engine(
        "event",
        _event_factory,
        capabilities=EngineCapabilities(point=True),
        descriptor=EVENT_DESCRIPTOR,
        summary="discrete-event cross-check (workgroup granularity)",
        replace=True,
    )
    register_engine(
        "predictor",
        _predictor_factory,
        capabilities=EngineCapabilities(grid=True),
        descriptor=PREDICTOR_DESCRIPTOR,
        summary="k-NN surrogate: transplants corpus scaling surfaces "
        "anchored by seven exact probe simulations",
        replace=True,
    )
    register_engine(
        "faulty",
        _faulty_factory,
        capabilities=EngineCapabilities(point=True, grid=True),
        descriptor=FAULTY_DESCRIPTOR,
        summary="fault-injection wrapper around another engine "
        "(testing the sweep's recovery paths)",
        replace=True,
    )


_register_builtins()
