"""Profiler-style performance counters derived from a simulation.

The original study interpreted its measurements through the usual
vendor-profiler lens — VALU busy percentage, cache hit rates, achieved
bandwidth, occupancy. :func:`collect_counters` derives that familiar
counter set from a :class:`~repro.gpu.interval_model.KernelRunResult`,
so downstream tooling (roofline placement, bottleneck reports, the
``gpuscale kernel`` command) can speak profiler vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.gpu.config import HardwareConfig
from repro.gpu.interval_model import IntervalModel, KernelRunResult
from repro.kernels.kernel import Kernel


@dataclass(frozen=True)
class CounterReport:
    """The derived counter set for one kernel execution."""

    kernel_name: str
    config_label: str
    duration_us: float
    valu_busy_fraction: float
    achieved_gflops: float
    achieved_dram_gbps: float
    dram_utilisation: float
    l1_hit_rate: float
    l2_hit_rate: float
    occupancy_waves: int
    occupancy_fraction: float
    occupancy_limiter: str
    active_cus: int
    bottleneck: str

    def as_dict(self) -> Dict[str, object]:
        """Flatten for tabular rendering."""
        return {
            "kernel": self.kernel_name,
            "config": self.config_label,
            "duration_us": self.duration_us,
            "valu_busy": self.valu_busy_fraction,
            "gflops": self.achieved_gflops,
            "dram_gbps": self.achieved_dram_gbps,
            "dram_util": self.dram_utilisation,
            "l1_hit": self.l1_hit_rate,
            "l2_hit": self.l2_hit_rate,
            "waves_per_cu": self.occupancy_waves,
            "occupancy": self.occupancy_fraction,
            "limiter": self.occupancy_limiter,
            "active_cus": self.active_cus,
            "bottleneck": self.bottleneck,
        }


def counters_from_result(
    kernel: Kernel, result: KernelRunResult
) -> CounterReport:
    """Derive the counter set from an existing simulation result."""
    ch = kernel.characteristics
    config = result.config
    items = float(kernel.geometry.global_size)

    total_flops = items * ch.valu_ops_per_item
    achieved_gflops = total_flops / result.time_s / 1e9

    dram_gbps = result.dram_bytes / result.time_s / 1e9
    dram_utilisation = min(
        1.0, dram_gbps * 1e9 / config.peak_dram_bytes_per_sec
    )

    valu_busy = min(1.0, result.breakdown.compute_s / result.time_s)

    return CounterReport(
        kernel_name=result.kernel_name,
        config_label=config.label(),
        duration_us=result.time_s * 1e6,
        valu_busy_fraction=valu_busy,
        achieved_gflops=achieved_gflops,
        achieved_dram_gbps=dram_gbps,
        dram_utilisation=dram_utilisation,
        l1_hit_rate=ch.l1_reuse,
        l2_hit_rate=result.l2_hit_rate,
        occupancy_waves=result.occupancy.waves_per_cu,
        occupancy_fraction=result.occupancy.occupancy_fraction,
        occupancy_limiter=result.occupancy.limiter,
        active_cus=result.dispatch.active_cus,
        bottleneck=result.breakdown.bottleneck,
    )


def collect_counters(
    kernel: Kernel,
    config: HardwareConfig,
    model: IntervalModel = None,
) -> CounterReport:
    """Simulate *kernel* at *config* and derive its counters."""
    model = model or IntervalModel()
    result = model.simulate(kernel, config)
    return counters_from_result(kernel, result)
