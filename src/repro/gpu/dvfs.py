"""DVFS domains and the legal operating points of the study GPU.

The study GPU exposes two independently re-clockable domains — the
engine (shader core + caches) and the memory interface — plus firmware
CU fusing. This module records the legal ranges used by the paper's
sweep (a 5x engine-clock range, a memory-clock range giving 8.3x
bandwidth, and CU counts spanning an 11x range) and provides helpers to
snap arbitrary requests onto legal states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FrequencyDomain:
    """One clock domain with a discrete set of legal states (MHz)."""

    name: str
    states_mhz: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.states_mhz:
            raise ConfigurationError(f"domain {self.name!r} has no states")
        if any(s <= 0 for s in self.states_mhz):
            raise ConfigurationError(
                f"domain {self.name!r} has a non-positive state"
            )
        if tuple(sorted(self.states_mhz)) != self.states_mhz:
            raise ConfigurationError(
                f"domain {self.name!r} states must be sorted ascending"
            )
        if len(set(self.states_mhz)) != len(self.states_mhz):
            raise ConfigurationError(
                f"domain {self.name!r} has duplicate states"
            )

    @property
    def min_mhz(self) -> float:
        """Lowest legal state."""
        return self.states_mhz[0]

    @property
    def max_mhz(self) -> float:
        """Highest legal state."""
        return self.states_mhz[-1]

    @property
    def dynamic_range(self) -> float:
        """Ratio of highest to lowest state."""
        return self.max_mhz / self.min_mhz

    def is_legal(self, mhz: float) -> bool:
        """True when *mhz* is exactly one of the domain's states."""
        return mhz in self.states_mhz

    def snap(self, mhz: float) -> float:
        """Nearest legal state to *mhz* (ties resolve downward)."""
        if mhz <= 0:
            raise ConfigurationError(f"cannot snap non-positive clock {mhz}")
        return min(self.states_mhz, key=lambda s: (abs(s - mhz), s))

    def floor(self, mhz: float) -> float:
        """Highest legal state <= *mhz* (or the minimum state)."""
        candidates = [s for s in self.states_mhz if s <= mhz]
        return candidates[-1] if candidates else self.min_mhz


def _evenly_spaced(low: float, high: float, count: int) -> Tuple[float, ...]:
    """*count* evenly spaced clock states from *low* to *high*, in MHz."""
    if count < 2:
        raise ConfigurationError("a swept domain needs >= 2 states")
    step = (high - low) / (count - 1)
    return tuple(round(low + i * step, 3) for i in range(count))


#: Engine clock: 9 states covering the paper's 5x range (200..1000 MHz).
ENGINE_DOMAIN = FrequencyDomain("engine", _evenly_spaced(200.0, 1000.0, 9))

#: Memory clock: 9 states covering the paper's 8.3x bandwidth range
#: (150..1250 MHz on the 512-bit GDDR5 bus -> 38.4..320 GB/s, 8.33x).
MEMORY_DOMAIN = FrequencyDomain("memory", _evenly_spaced(150.0, 1250.0, 9))

#: CU fusing: 4..44 active CUs in steps of 4 (11 settings, 11x range).
CU_SETTINGS: Tuple[int, ...] = tuple(range(4, 45, 4))


def legal_cu_counts() -> Sequence[int]:
    """The 11 CU-count settings the study sweeps."""
    return CU_SETTINGS


def snap_cu_count(cu_count: int) -> int:
    """Nearest legal CU-fusing setting to *cu_count*."""
    if cu_count < 1:
        raise ConfigurationError(f"cu_count must be >= 1, got {cu_count}")
    return min(CU_SETTINGS, key=lambda c: (abs(c - cu_count), c))
