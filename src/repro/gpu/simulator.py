"""Public simulation facade.

:class:`GpuSimulator` hides the choice of timing engine behind one
``simulate`` call. The analytical interval engine is the default (fast
enough for the full 267-kernel x 891-configuration sweep); the
discrete-event engine provides an independent cross-check of scaling
shapes.

For whole-grid workloads, :meth:`GpuSimulator.simulate_grid` evaluates
one kernel over an entire :class:`~repro.sweep.space.ConfigurationSpace`
at once. With the interval engine this dispatches to the vectorized
:class:`~repro.gpu.interval_batch.BatchIntervalModel` (the default);
:class:`GridMode.SCALAR` forces the point-by-point path, which is the
reference oracle for debugging batch-engine regressions.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, ReproError, SimulationError
from repro.gpu.config import HardwareConfig
from repro.gpu.event_sim import EventSimResult, EventSimulator
from repro.gpu.interval_batch import (
    BatchIntervalModel,
    GridBreakdown,
    KernelGridResult,
    StudyGridResult,
)
from repro.gpu.interval_model import IntervalModel, KernelRunResult
from repro.kernels.kernel import Kernel
from repro.kernels.pack import KernelPack

if TYPE_CHECKING:  # avoid a gpu -> sweep import cycle at runtime
    from repro.sweep.space import ConfigurationSpace

SimulationResult = Union[KernelRunResult, EventSimResult]

#: Process-wide count of engine evaluations (scalar, grid, or study
#: calls). The result cache's acceptance test asserts cached re-runs
#: leave this untouched; it is diagnostic state, not a public metric.
_ENGINE_CALLS = 0


def engine_call_count() -> int:
    """Engine evaluations (simulate/grid/study) since the last reset."""
    return _ENGINE_CALLS


def reset_engine_call_count() -> None:
    """Zero the process-wide engine-call counter."""
    global _ENGINE_CALLS
    _ENGINE_CALLS = 0


def _count_engine_call() -> None:
    global _ENGINE_CALLS
    _ENGINE_CALLS += 1


class Engine(Enum):
    """Available timing engines."""

    INTERVAL = "interval"
    EVENT = "event"


class GridMode(Enum):
    """How grid-shaped simulations are evaluated."""

    #: Vectorized batch engine (NumPy broadcast over one kernel's grid).
    BATCH = "batch"
    #: One scalar ``simulate`` call per configuration (reference oracle).
    SCALAR = "scalar"
    #: Whole-study kernel-axis batching: every kernel's grid in one
    #: broadcast over the (kernel, cu, eng, mem) lattice.
    STUDY = "study"


class GpuSimulator:
    """Simulate kernels on configurable GCN-class hardware."""

    def __init__(self, engine: Engine = Engine.INTERVAL):
        self._engine = engine
        self._interval = IntervalModel()
        self._interval_batch = BatchIntervalModel()
        self._event = EventSimulator()

    @property
    def engine(self) -> Engine:
        """The engine this simulator dispatches to."""
        return self._engine

    def simulate(
        self, kernel: Kernel, config: HardwareConfig
    ) -> SimulationResult:
        """Run *kernel* at *config* and return a result with ``time_s``
        and ``items_per_second``."""
        _count_engine_call()
        if self._engine is Engine.INTERVAL:
            return self._interval.simulate(kernel, config)
        if self._engine is Engine.EVENT:
            return self._event.simulate(kernel, config)
        raise ConfigurationError(f"unknown engine {self._engine!r}")

    def simulate_grid(
        self,
        kernel: Kernel,
        space: "ConfigurationSpace",
        mode: GridMode = GridMode.BATCH,
    ) -> KernelGridResult:
        """Run *kernel* at every configuration of *space* at once.

        Returns ``(n_cu, n_eng, n_mem)`` time/throughput tensors indexed
        like :meth:`ConfigurationSpace.config`. The interval engine uses
        the vectorized batch path unless *mode* forces the scalar
        oracle; the event engine always simulates point by point.

        Unexpected engine failures (anything outside the package's own
        error hierarchy) are wrapped in a structured
        :class:`~repro.errors.SimulationError` naming the kernel, so
        fault-tolerant sweeps can attribute and quarantine them.
        """
        _count_engine_call()
        try:
            if self._engine is Engine.INTERVAL and mode in (
                GridMode.BATCH,
                GridMode.STUDY,  # a single kernel *is* a 1-kernel study
            ):
                return self._interval_batch.simulate_grid(kernel, space)
            return self._scalar_grid(kernel, space)
        except ReproError:
            raise
        except Exception as exc:
            raise SimulationError(
                kernel.full_name, f"{type(exc).__name__}: {exc}"
            ) from exc

    def simulate_study(
        self,
        kernels: Union[KernelPack, Sequence[Kernel]],
        space: "ConfigurationSpace",
    ) -> StudyGridResult:
        """Run every kernel at every configuration in one broadcast.

        Accepts a prepacked :class:`~repro.kernels.pack.KernelPack` or
        any kernel sequence (packed on the fly). Interval engine only —
        the event engine has no batch formulation, so callers holding an
        event simulator get a :class:`~repro.errors.ConfigurationError`
        and should fall back to per-kernel grids.

        Unexpected engine failures are wrapped in a
        :class:`~repro.errors.SimulationError`; whole-study evaluation
        cannot attribute a failure to one kernel, so the sweep layer
        retries kernel by kernel to isolate and quarantine the culprit.
        """
        if self._engine is not Engine.INTERVAL:
            raise ConfigurationError(
                "whole-study batching requires the interval engine, "
                f"got {self._engine.value!r}"
            )
        pack = (
            kernels
            if isinstance(kernels, KernelPack)
            else KernelPack.from_kernels(list(kernels))
        )
        _count_engine_call()
        try:
            return self._interval_batch.simulate_study(pack, space)
        except ReproError:
            raise
        except Exception as exc:
            raise SimulationError(
                "<study>", f"{type(exc).__name__}: {exc}"
            ) from exc

    def _scalar_grid(
        self, kernel: Kernel, space: "ConfigurationSpace"
    ) -> KernelGridResult:
        """Point-by-point grid evaluation through :meth:`simulate`."""
        shape = space.shape
        n_cu, n_eng, n_mem = shape
        time_s = np.empty(shape, dtype=np.float64)
        intervals = {
            name: np.zeros(shape, dtype=np.float64)
            for name in (
                "compute", "salu", "lds", "l2", "dram", "latency",
                "atomic", "barrier", "launch",
            )
        }
        l2_hit_rate = np.zeros(n_cu, dtype=np.float64)
        dram_bytes = np.zeros(n_cu, dtype=np.float64)
        occupancy = None
        for c in range(n_cu):
            for e in range(n_eng):
                for m in range(n_mem):
                    result = self.simulate(kernel, space.config(c, e, m))
                    time_s[c, e, m] = result.time_s
                    breakdown = getattr(result, "breakdown", None)
                    if breakdown is not None:
                        for name, value in breakdown.as_dict().items():
                            intervals[name][c, e, m] = value
                    if isinstance(result, KernelRunResult):
                        occupancy = result.occupancy
                        l2_hit_rate[c] = result.l2_hit_rate
                        dram_bytes[c] = result.dram_bytes
        return KernelGridResult(
            kernel_name=kernel.full_name,
            time_s=time_s,
            items_per_second=kernel.geometry.global_size / time_s,
            breakdown=GridBreakdown(
                **{f"{k}_s": v for k, v in intervals.items()}
            ),
            occupancy=occupancy,
            l2_hit_rate=l2_hit_rate,
            dram_bytes=dram_bytes,
            global_size=kernel.geometry.global_size,
        )

    def time_s(self, kernel: Kernel, config: HardwareConfig) -> float:
        """Execution time in seconds (convenience)."""
        return self.simulate(kernel, config).time_s

    def performance(self, kernel: Kernel, config: HardwareConfig) -> float:
        """Throughput in work-items/second (the sweep's metric)."""
        return self.simulate(kernel, config).items_per_second


def simulate(
    kernel: Kernel,
    config: HardwareConfig,
    engine: Engine = Engine.INTERVAL,
) -> SimulationResult:
    """Module-level convenience wrapper around :class:`GpuSimulator`."""
    return GpuSimulator(engine).simulate(kernel, config)
