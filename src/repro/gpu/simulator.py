"""Public simulation facade.

:class:`GpuSimulator` hides the choice of timing engine behind one
``simulate`` call. The analytical interval engine is the default (fast
enough for the full 267-kernel x 891-configuration sweep); the
discrete-event engine provides an independent cross-check of scaling
shapes.
"""

from __future__ import annotations

from enum import Enum
from typing import Union

from repro.errors import ConfigurationError
from repro.gpu.config import HardwareConfig
from repro.gpu.event_sim import EventSimResult, EventSimulator
from repro.gpu.interval_model import IntervalModel, KernelRunResult
from repro.kernels.kernel import Kernel

SimulationResult = Union[KernelRunResult, EventSimResult]


class Engine(Enum):
    """Available timing engines."""

    INTERVAL = "interval"
    EVENT = "event"


class GpuSimulator:
    """Simulate kernels on configurable GCN-class hardware."""

    def __init__(self, engine: Engine = Engine.INTERVAL):
        self._engine = engine
        self._interval = IntervalModel()
        self._event = EventSimulator()

    @property
    def engine(self) -> Engine:
        """The engine this simulator dispatches to."""
        return self._engine

    def simulate(
        self, kernel: Kernel, config: HardwareConfig
    ) -> SimulationResult:
        """Run *kernel* at *config* and return a result with ``time_s``
        and ``items_per_second``."""
        if self._engine is Engine.INTERVAL:
            return self._interval.simulate(kernel, config)
        if self._engine is Engine.EVENT:
            return self._event.simulate(kernel, config)
        raise ConfigurationError(f"unknown engine {self._engine!r}")

    def time_s(self, kernel: Kernel, config: HardwareConfig) -> float:
        """Execution time in seconds (convenience)."""
        return self.simulate(kernel, config).time_s

    def performance(self, kernel: Kernel, config: HardwareConfig) -> float:
        """Throughput in work-items/second (the sweep's metric)."""
        return self.simulate(kernel, config).items_per_second


def simulate(
    kernel: Kernel,
    config: HardwareConfig,
    engine: Engine = Engine.INTERVAL,
) -> SimulationResult:
    """Module-level convenience wrapper around :class:`GpuSimulator`."""
    return GpuSimulator(engine).simulate(kernel, config)
