"""Public simulation facade.

:class:`GpuSimulator` hides the choice of timing engine behind one
``simulate`` call. The analytical interval engine is the default (fast
enough for the full 267-kernel x 891-configuration sweep); the
discrete-event engine provides an independent cross-check of scaling
shapes.

For whole-grid workloads, :meth:`GpuSimulator.simulate_grid` evaluates
one kernel over an entire :class:`~repro.sweep.space.ConfigurationSpace`
at once. With the interval engine this dispatches to the vectorized
:class:`~repro.gpu.interval_batch.BatchIntervalModel` (the default);
:class:`GridMode.SCALAR` forces the point-by-point path, which is the
reference oracle for debugging batch-engine regressions.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.errors import ConfigurationError, ReproError, SimulationError
from repro.gpu.config import HardwareConfig
from repro.gpu.event_sim import EventSimResult, EventSimulator
from repro.gpu.interval_batch import (
    BatchIntervalModel,
    GridBreakdown,
    KernelGridResult,
)
from repro.gpu.interval_model import IntervalModel, KernelRunResult
from repro.kernels.kernel import Kernel

if TYPE_CHECKING:  # avoid a gpu -> sweep import cycle at runtime
    from repro.sweep.space import ConfigurationSpace

SimulationResult = Union[KernelRunResult, EventSimResult]


class Engine(Enum):
    """Available timing engines."""

    INTERVAL = "interval"
    EVENT = "event"


class GridMode(Enum):
    """How :meth:`GpuSimulator.simulate_grid` evaluates a grid."""

    #: Vectorized batch engine (NumPy broadcast over the whole grid).
    BATCH = "batch"
    #: One scalar ``simulate`` call per configuration (reference oracle).
    SCALAR = "scalar"


class GpuSimulator:
    """Simulate kernels on configurable GCN-class hardware."""

    def __init__(self, engine: Engine = Engine.INTERVAL):
        self._engine = engine
        self._interval = IntervalModel()
        self._interval_batch = BatchIntervalModel()
        self._event = EventSimulator()

    @property
    def engine(self) -> Engine:
        """The engine this simulator dispatches to."""
        return self._engine

    def simulate(
        self, kernel: Kernel, config: HardwareConfig
    ) -> SimulationResult:
        """Run *kernel* at *config* and return a result with ``time_s``
        and ``items_per_second``."""
        if self._engine is Engine.INTERVAL:
            return self._interval.simulate(kernel, config)
        if self._engine is Engine.EVENT:
            return self._event.simulate(kernel, config)
        raise ConfigurationError(f"unknown engine {self._engine!r}")

    def simulate_grid(
        self,
        kernel: Kernel,
        space: "ConfigurationSpace",
        mode: GridMode = GridMode.BATCH,
    ) -> KernelGridResult:
        """Run *kernel* at every configuration of *space* at once.

        Returns ``(n_cu, n_eng, n_mem)`` time/throughput tensors indexed
        like :meth:`ConfigurationSpace.config`. The interval engine uses
        the vectorized batch path unless *mode* forces the scalar
        oracle; the event engine always simulates point by point.

        Unexpected engine failures (anything outside the package's own
        error hierarchy) are wrapped in a structured
        :class:`~repro.errors.SimulationError` naming the kernel, so
        fault-tolerant sweeps can attribute and quarantine them.
        """
        try:
            if self._engine is Engine.INTERVAL and mode is GridMode.BATCH:
                return self._interval_batch.simulate_grid(kernel, space)
            return self._scalar_grid(kernel, space)
        except ReproError:
            raise
        except Exception as exc:
            raise SimulationError(
                kernel.full_name, f"{type(exc).__name__}: {exc}"
            ) from exc

    def _scalar_grid(
        self, kernel: Kernel, space: "ConfigurationSpace"
    ) -> KernelGridResult:
        """Point-by-point grid evaluation through :meth:`simulate`."""
        shape = space.shape
        n_cu, n_eng, n_mem = shape
        time_s = np.empty(shape, dtype=np.float64)
        intervals = {
            name: np.zeros(shape, dtype=np.float64)
            for name in (
                "compute", "salu", "lds", "l2", "dram", "latency",
                "atomic", "barrier", "launch",
            )
        }
        l2_hit_rate = np.zeros(n_cu, dtype=np.float64)
        dram_bytes = np.zeros(n_cu, dtype=np.float64)
        occupancy = None
        for c in range(n_cu):
            for e in range(n_eng):
                for m in range(n_mem):
                    result = self.simulate(kernel, space.config(c, e, m))
                    time_s[c, e, m] = result.time_s
                    breakdown = getattr(result, "breakdown", None)
                    if breakdown is not None:
                        for name, value in breakdown.as_dict().items():
                            intervals[name][c, e, m] = value
                    if isinstance(result, KernelRunResult):
                        occupancy = result.occupancy
                        l2_hit_rate[c] = result.l2_hit_rate
                        dram_bytes[c] = result.dram_bytes
        return KernelGridResult(
            kernel_name=kernel.full_name,
            time_s=time_s,
            items_per_second=kernel.geometry.global_size / time_s,
            breakdown=GridBreakdown(
                **{f"{k}_s": v for k, v in intervals.items()}
            ),
            occupancy=occupancy,
            l2_hit_rate=l2_hit_rate,
            dram_bytes=dram_bytes,
            global_size=kernel.geometry.global_size,
        )

    def time_s(self, kernel: Kernel, config: HardwareConfig) -> float:
        """Execution time in seconds (convenience)."""
        return self.simulate(kernel, config).time_s

    def performance(self, kernel: Kernel, config: HardwareConfig) -> float:
        """Throughput in work-items/second (the sweep's metric)."""
        return self.simulate(kernel, config).items_per_second


def simulate(
    kernel: Kernel,
    config: HardwareConfig,
    engine: Engine = Engine.INTERVAL,
) -> SimulationResult:
    """Module-level convenience wrapper around :class:`GpuSimulator`."""
    return GpuSimulator(engine).simulate(kernel, config)
