"""Public simulation facade over the engine registry.

:class:`GpuSimulator` hides the choice of timing engine behind one
``simulate`` call. It is a thin capability-resolving shell: the engine
named at construction is looked up in the registry
(:mod:`repro.gpu.engine`), and each call shape — point, grid, study —
is routed to the named engine when it supports that shape natively, to
a family sibling that does (the scalar interval oracle's grid calls
resolve to ``interval-batch``), or degraded one level (grid -> point
loop) when nothing in the family can batch it. Engines selectable here
are exactly the registry's: ``gpuscale engines`` lists them, and a new
backend registered with :func:`repro.gpu.engine.register_engine`
becomes available to every consumer of this facade without touching
this module.

The legacy :class:`Engine`/:class:`GridMode` enums are re-exported as
deprecated aliases; their values are registry/mode names, and every
parameter accepting them also accepts the plain string.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, ReproError, SimulationError
from repro.gpu.config import HardwareConfig
from repro.gpu.engine import (
    Engine,
    EngineCapabilities,
    EngineDescriptor,
    EngineSpec,
    GridMode,
    GridModeSpec,
    GridSpace,
    engine_calls,
    engine_registration,
    find_family_engine,
    get_engine,
    normalize_engine,
    normalize_grid_mode,
    record_engine_call,
    reset_engine_calls,
)
from repro.gpu.event_sim import EventSimResult
from repro.gpu.interval_batch import (
    GridBreakdown,
    KernelGridResult,
    StudyGridResult,
)
from repro.gpu.interval_model import KernelRunResult
from repro.kernels.kernel import Kernel
from repro.kernels.pack import KernelPack, memoized_pack

SimulationResult = Union[KernelRunResult, EventSimResult]

__all__ = [
    "Engine",
    "GpuSimulator",
    "GridMode",
    "SimulationResult",
    "engine_call_count",
    "reset_engine_call_count",
    "simulate",
]


def engine_call_count() -> int:
    """Engine evaluations (simulate/grid/study) since the last reset.

    Compatibility shim over the registry's per-engine counters
    (:func:`repro.gpu.engine.engine_calls`): the total across every
    registered engine. The result cache's acceptance test asserts
    cached re-runs leave this untouched.
    """
    return engine_calls()


def reset_engine_call_count() -> None:
    """Zero every engine's call counter (compatibility shim)."""
    reset_engine_calls()


class GpuSimulator:
    """Simulate kernels on configurable GCN-class hardware.

    *engine* names any registered timing engine (``"interval"``,
    ``"event"``, ``"predictor"``, ...) or is a legacy :class:`Engine`
    member. Capability resolution happens once, here; no consumer
    above this facade branches on engine identity again.
    """

    def __init__(self, engine: EngineSpec = "interval"):
        name = normalize_engine(engine)
        registration = engine_registration(name)  # fail fast on typos
        self._name = name
        self._family = registration.descriptor.family
        backend = get_engine(name)
        # Resolve each call shape: the named engine if it supports the
        # shape natively, else a family sibling that does. Instances
        # are shared across shapes resolving to the same engine so
        # per-instance caches (e.g. per-uarch batch state) are shared.
        resolved = {name: backend}

        def resolve(capability: str):
            if getattr(registration.capabilities, capability, False):
                return backend
            sibling = find_family_engine(
                self._family, capability, exclude=name
            )
            if sibling is None:
                return None
            if sibling.name not in resolved:
                resolved[sibling.name] = get_engine(sibling.name)
            return resolved[sibling.name]

        self._point = resolve("point")
        self._grid = resolve("grid")
        self._study = resolve("study")

    @property
    def engine(self) -> Union[Engine, str]:
        """The engine selection (legacy enum where one exists)."""
        try:
            return Engine(self._name)
        except ValueError:
            return self._name

    @property
    def engine_name(self) -> str:
        """Registry name of the engine this simulator dispatches to."""
        return self._name

    def descriptor(self) -> EngineDescriptor:
        """Stable identity of the selected engine."""
        return engine_registration(self._name).descriptor

    # -- negotiated capabilities (the facade satisfies TimingEngine) ---

    @property
    def supports_point(self) -> bool:
        """True if single-point simulation is available."""
        return self._point is not None

    @property
    def supports_grid(self) -> bool:
        """True if grid simulation is available (natively or degraded)."""
        return self._point is not None or self._grid is not None

    @property
    def supports_study(self) -> bool:
        """True if whole-study batching is available."""
        return self._study is not None

    @property
    def capabilities(self) -> EngineCapabilities:
        """The negotiated capability set of this facade."""
        return EngineCapabilities(
            point=self.supports_point,
            grid=self.supports_grid,
            study=self.supports_study,
        )

    # ------------------------------------------------------------------
    # Call shapes
    # ------------------------------------------------------------------

    def simulate(
        self, kernel: Kernel, config: HardwareConfig
    ) -> SimulationResult:
        """Run *kernel* at *config* and return a result with ``time_s``
        and ``items_per_second``."""
        if self._point is None:
            raise ConfigurationError(
                f"engine {self._name!r} cannot simulate single points "
                "(no point-capable engine in its family)"
            )
        record_engine_call(self._name)
        return self._point.simulate(kernel, config)

    def simulate_grid(
        self,
        kernel: Kernel,
        space: GridSpace,
        mode: GridModeSpec = "batch",
    ) -> KernelGridResult:
        """Run *kernel* at every configuration of *space* at once.

        Returns ``(n_cu, n_eng, n_mem)`` time/throughput tensors indexed
        like ``ConfigurationSpace.config``. The grid-capable engine
        resolved at construction evaluates the whole grid in one call
        unless ``mode="scalar"`` forces the point-loop oracle; engines
        with no grid path in their family degrade to the point loop
        transparently.

        Unexpected engine failures (anything outside the package's own
        error hierarchy) are wrapped in a structured
        :class:`~repro.errors.SimulationError` naming the kernel, so
        fault-tolerant sweeps can attribute and quarantine them.
        """
        mode = normalize_grid_mode(mode)
        record_engine_call(self._name)
        try:
            if mode == "scalar" or self._grid is None:
                return self._point_grid(kernel, space)
            return self._grid.simulate_grid(kernel, space)
        except ReproError:
            raise
        except Exception as exc:
            raise SimulationError(
                kernel.full_name, f"{type(exc).__name__}: {exc}"
            ) from exc

    def simulate_study(
        self,
        kernels: Union[KernelPack, Sequence[Kernel]],
        space: GridSpace,
    ) -> StudyGridResult:
        """Run every kernel at every configuration in one broadcast.

        Accepts a prepacked :class:`~repro.kernels.pack.KernelPack` or
        any kernel sequence (packed on the fly). Requires a
        study-capable engine in the selected family — callers holding
        one without (the event engine, the predictor) get a
        :class:`~repro.errors.ConfigurationError` and should fall back
        to per-kernel grids.

        Unexpected engine failures are wrapped in a
        :class:`~repro.errors.SimulationError`; whole-study evaluation
        cannot attribute a failure to one kernel, so the sweep layer
        retries kernel by kernel to isolate and quarantine the culprit.
        """
        if self._study is None:
            raise ConfigurationError(
                "whole-study batching requires a study-capable engine, "
                f"and {self._name!r} has none in its family"
            )
        pack = (
            kernels
            if isinstance(kernels, KernelPack)
            else memoized_pack(list(kernels))
        )
        record_engine_call(self._name)
        try:
            return self._study.simulate_study(pack, space)
        except ReproError:
            raise
        except Exception as exc:
            raise SimulationError(
                "<study>", f"{type(exc).__name__}: {exc}"
            ) from exc

    def _point_grid(
        self, kernel: Kernel, space: GridSpace
    ) -> KernelGridResult:
        """Point-by-point grid evaluation through :meth:`simulate`.

        The generic grid -> point degradation: the reference-oracle
        evaluation order for the interval family, and the only grid
        path for point-only engines (event simulator, point-only
        registrations)."""
        shape = space.shape
        n_cu, n_eng, n_mem = shape
        time_s = np.empty(shape, dtype=np.float64)
        intervals = {
            name: np.zeros(shape, dtype=np.float64)
            for name in (
                "compute", "salu", "lds", "l2", "dram", "latency",
                "atomic", "barrier", "launch",
            )
        }
        l2_hit_rate = np.zeros(n_cu, dtype=np.float64)
        dram_bytes = np.zeros(n_cu, dtype=np.float64)
        occupancy = None
        for c in range(n_cu):
            for e in range(n_eng):
                for m in range(n_mem):
                    result = self.simulate(kernel, space.config(c, e, m))
                    time_s[c, e, m] = result.time_s
                    breakdown = getattr(result, "breakdown", None)
                    if breakdown is not None:
                        for name, value in breakdown.as_dict().items():
                            intervals[name][c, e, m] = value
                    if isinstance(result, KernelRunResult):
                        occupancy = result.occupancy
                        l2_hit_rate[c] = result.l2_hit_rate
                        dram_bytes[c] = result.dram_bytes
        return KernelGridResult(
            kernel_name=kernel.full_name,
            time_s=time_s,
            items_per_second=kernel.geometry.global_size / time_s,
            breakdown=GridBreakdown(
                **{f"{k}_s": v for k, v in intervals.items()}
            ),
            occupancy=occupancy,
            l2_hit_rate=l2_hit_rate,
            dram_bytes=dram_bytes,
            global_size=kernel.geometry.global_size,
        )

    def time_s(self, kernel: Kernel, config: HardwareConfig) -> float:
        """Execution time in seconds (convenience)."""
        return self.simulate(kernel, config).time_s

    def performance(self, kernel: Kernel, config: HardwareConfig) -> float:
        """Throughput in work-items/second (the sweep's metric)."""
        return self.simulate(kernel, config).items_per_second


def simulate(
    kernel: Kernel,
    config: HardwareConfig,
    engine: EngineSpec = "interval",
) -> SimulationResult:
    """Module-level convenience wrapper around :class:`GpuSimulator`."""
    return GpuSimulator(engine).simulate(kernel, config)
