"""Analytic L1/L2 cache model.

The cache hierarchy is the source of two scaling behaviours the paper
highlights:

1. **Cache-resident kernels scale with engine frequency, not memory
   frequency** — the L2 lives in the engine clock domain, so traffic it
   absorbs never sees the memory-clock knob.
2. **Adding CUs can reduce performance** — each resident workgroup
   brings its private working set into the shared L2; beyond some CU
   count the aggregate concurrent footprint exceeds capacity, hit rate
   collapses, DRAM traffic *grows* with CU count, and memory-bound
   kernels slow down.

The model is analytic rather than trace-driven: achieved L2 reuse is
the kernel's intrinsic reuse (``l2_reuse``) multiplied by the
probability that a line is still resident when re-referenced, which
falls as the concurrent footprint overflows the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.gpu.config import Microarchitecture
from repro.kernels.kernel import Kernel

if TYPE_CHECKING:  # typing-only; keeps gpu -> kernels import lazy
    from repro.kernels.pack import KernelPack


@dataclass(frozen=True)
class CacheBehaviour:
    """Resolved cache behaviour of one kernel at one concurrency level."""

    l1_hit_rate: float
    l2_hit_rate: float
    concurrent_footprint_bytes: float

    @property
    def dram_fraction(self) -> float:
        """Fraction of issued global traffic that reaches DRAM."""
        return (1.0 - self.l1_hit_rate) * (1.0 - self.l2_hit_rate)

    @property
    def l2_fraction(self) -> float:
        """Fraction of issued global traffic served by the L2."""
        return (1.0 - self.l1_hit_rate) * self.l2_hit_rate


class CacheModel:
    """Analytic cache hierarchy for one microarchitecture."""

    def __init__(self, uarch: Microarchitecture):
        self._uarch = uarch

    @property
    def uarch(self) -> Microarchitecture:
        """The microarchitecture this model describes."""
        return self._uarch

    def l1_hit_rate(self, kernel: Kernel) -> float:
        """Per-CU L1 hit rate.

        L1 reuse is dominated by intra-workgroup spatial/temporal
        locality, which is a property of the kernel alone: workgroups do
        not share an L1, so the CU count does not perturb it.
        """
        return kernel.characteristics.l1_reuse

    def concurrent_footprint_bytes(
        self, kernel: Kernel, active_cus: int, workgroups_per_cu: int
    ) -> float:
        """Distinct bytes competing for L2 residency at one instant.

        The shared part of the footprint is counted once (every
        workgroup walks the same data); the private part contributes
        one per-workgroup slice for each *resident* workgroup, so it
        grows linearly with active CUs until the whole grid is
        resident.
        """
        ch = kernel.characteristics
        num_workgroups = kernel.geometry.num_workgroups
        shared_set = ch.footprint_bytes * ch.shared_footprint
        private_total = ch.footprint_bytes - shared_set
        resident_wgs = min(num_workgroups, active_cus * workgroups_per_cu)
        private_resident = private_total * resident_wgs / num_workgroups
        return shared_set + private_resident

    def l2_hit_rate(
        self, kernel: Kernel, active_cus: int, workgroups_per_cu: int
    ) -> float:
        """Achieved L2 hit rate for L1 misses at this concurrency.

        ``l2_reuse`` is the hit rate an infinite L2 would achieve; it is
        scaled by the probability a line survives until its reuse,
        modelled as ``min(1, capacity / concurrent_footprint)``. With a
        1 MiB L2 and multi-megabyte concurrent footprints this produces
        the sharp hit-rate collapse responsible for inverse CU scaling.
        """
        ch = kernel.characteristics
        footprint = self.concurrent_footprint_bytes(
            kernel, active_cus, workgroups_per_cu
        )
        if footprint <= 0.0:
            return ch.l2_reuse
        residency = min(1.0, self._uarch.l2_bytes_total / footprint)
        return ch.l2_reuse * residency

    def behaviour(
        self, kernel: Kernel, active_cus: int, workgroups_per_cu: int
    ) -> CacheBehaviour:
        """Full cache behaviour of *kernel* at this concurrency level."""
        if active_cus < 1:
            raise ValueError(f"active_cus must be >= 1, got {active_cus}")
        if workgroups_per_cu < 1:
            raise ValueError(
                f"workgroups_per_cu must be >= 1, got {workgroups_per_cu}"
            )
        return CacheBehaviour(
            l1_hit_rate=self.l1_hit_rate(kernel),
            l2_hit_rate=self.l2_hit_rate(
                kernel, active_cus, workgroups_per_cu
            ),
            concurrent_footprint_bytes=self.concurrent_footprint_bytes(
                kernel, active_cus, workgroups_per_cu
            ),
        )

    def behaviour_batch(
        self, pack: "KernelPack", active_cus: np.ndarray,
        workgroups_per_cu: np.ndarray,
    ) -> "BatchCacheBehaviour":
        """Vectorized :meth:`behaviour` over (kernel, CU-count) pairs.

        *active_cus* is ``(K, C)`` (the dispatch plan's active-CU
        matrix); *workgroups_per_cu* is the ``(K,)`` per-kernel
        occupancy. Arithmetic repeats the scalar methods elementwise —
        same association order, same guards — so the arrays are exactly
        the scalar values.
        """
        if np.any(active_cus < 1):
            raise ValueError(
                f"active_cus must be >= 1, got {int(active_cus.min())}"
            )
        if np.any(workgroups_per_cu < 1):
            raise ValueError(
                "workgroups_per_cu must be >= 1, got "
                f"{int(workgroups_per_cu.min())}"
            )
        footprint_bytes = pack.ch("footprint_bytes").reshape(-1, 1)
        shared_fraction = pack.ch("shared_footprint").reshape(-1, 1)
        num_workgroups = pack.num_workgroups.reshape(-1, 1)
        per_cu = workgroups_per_cu.reshape(-1, 1)

        shared_set = footprint_bytes * shared_fraction
        private_total = footprint_bytes - shared_set
        resident_wgs = np.minimum(num_workgroups, active_cus * per_cu)
        private_resident = private_total * resident_wgs / num_workgroups
        footprint = shared_set + private_resident

        l2_reuse = pack.ch("l2_reuse").reshape(-1, 1)
        # footprint == 0 (zero-footprint kernel) falls through to the
        # bare l2_reuse, matching the scalar guard; errstate silences
        # the discarded division.
        with np.errstate(divide="ignore"):
            residency = np.minimum(
                1.0, self._uarch.l2_bytes_total / footprint
            )
        l2_hit_rate = np.where(
            footprint <= 0.0, l2_reuse, l2_reuse * residency
        )

        l1_hit_rate = pack.ch("l1_reuse")
        dram_fraction = (
            (1.0 - l1_hit_rate.reshape(-1, 1)) * (1.0 - l2_hit_rate)
        )
        return BatchCacheBehaviour(
            l1_hit_rate=l1_hit_rate,
            l2_hit_rate=l2_hit_rate,
            dram_fraction=dram_fraction,
            concurrent_footprint_bytes=footprint,
        )


@dataclass(frozen=True)
class BatchCacheBehaviour:
    """Cache behaviour of K kernels across C CU settings.

    ``l1_hit_rate`` is ``(K,)`` (a kernel-only property); the rest are
    ``(K, C)`` matrices aligned with the dispatch plan's active-CU
    matrix.
    """

    l1_hit_rate: np.ndarray
    l2_hit_rate: np.ndarray
    dram_fraction: np.ndarray
    concurrent_footprint_bytes: np.ndarray

    def behaviour(
        self, kernel_index: int, cu_index: int
    ) -> CacheBehaviour:
        """The scalar :class:`CacheBehaviour` at one lattice point."""
        return CacheBehaviour(
            l1_hit_rate=float(self.l1_hit_rate[kernel_index]),
            l2_hit_rate=float(self.l2_hit_rate[kernel_index, cu_index]),
            concurrent_footprint_bytes=float(
                self.concurrent_footprint_bytes[kernel_index, cu_index]
            ),
        )
