"""The Kaveri-class APU family.

The paper emulates the "small, embedded designs to large, high-powered
discrete cards" span by fusing down one discrete GPU. A natural
question it leaves open is whether the taxonomy *transfers*: is a
kernel that is bandwidth-bound on the discrete card also bandwidth-
bound on an APU whose machine balance is entirely different? This
module defines a Kaveri-class APU family (shared DDR3 memory: ~9x less
raw bus bandwidth than the discrete flagship, ~11x less once the host's
share of the shared controller comes off the top, smaller L2, fewer
CUs) and the sweep grid for it. It feeds the portability experiment in
``benchmarks/test_extension_portability.py`` (promoted to a tier-1
smoke in ``tests/gpu/test_portability_smoke.py``) and registers as the
``"kaveri"`` entry of the family registry in :mod:`repro.gpu.uarch`.
"""

from __future__ import annotations

from repro.gpu.config import HardwareConfig, Microarchitecture
from repro.sweep.space import ConfigurationSpace
from repro.units import KIB

#: Kaveri-class APU: 8 CUs, 512 KiB L2, 128-bit DDR3-2133 (dual
#: channel, double data rate -> ~34 GB/s raw at the top memory state).
#: The CPU shares the memory controller; ``host_bandwidth_fraction``
#: models its reserved slice, leaving the GPU ~29 GB/s effective.
KAVERI_UARCH = Microarchitecture(
    l2_bytes_total=512 * KIB,
    l2_banks=4,
    memory_bus_bits=128,
    memory_data_rate=2,
    dram_fixed_latency_ns=120.0,
    host_bandwidth_fraction=0.15,
    name="kaveri",
)

#: The APU's flagship operating point (A10-7850K-like).
KAVERI_FLAGSHIP = HardwareConfig(
    cu_count=8, engine_mhz=720.0, memory_mhz=1066.0, uarch=KAVERI_UARCH
)

#: Sweep grid for the APU family: 4 CU settings x 7 engine states x 7
#: memory states = 196 configurations, with knob ranges in the same
#: spirit as the paper's (4x CU, 3.6x engine, 5.3x bandwidth).
APU_SPACE = ConfigurationSpace(
    cu_counts=(2, 4, 6, 8),
    engine_mhz=(200.0, 300.0, 400.0, 500.0, 600.0, 660.0, 720.0),
    memory_mhz=(200.0, 333.0, 467.0, 600.0, 733.0, 900.0, 1066.0),
    uarch=KAVERI_UARCH,
)


def apu_balance_vs_discrete() -> float:
    """Machine-balance ratio (APU over discrete flagship).

    Shared DDR3 cuts effective bandwidth by ~11x (a ~9x narrower bus
    plus the host's reserved share) while compute only falls ~8x, so
    the APU's FLOP-per-byte ridge sits *higher*: kernels migrate toward
    bandwidth-bound when they move from the discrete card to the APU.
    """
    from repro.gpu.products import W9100_LIKE

    return (
        KAVERI_FLAGSHIP.machine_balance_flops_per_byte
        / W9100_LIKE.machine_balance_flops_per_byte
    )
