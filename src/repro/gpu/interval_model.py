"""Analytical interval (bottleneck) timing model.

This is the fast engine behind the 237,897-point sweep (267 kernels x
891 configurations). It decomposes a kernel execution into overlapping
intervals, computes the time each machine resource would need in
isolation, and combines them with a mostly-overlapped bottleneck rule.

Resources modelled, and the scaling class each one produces when it
dominates:

=====================  ==============================================
Interval               Dominant-resource scaling behaviour
=====================  ==============================================
VALU compute           ~ CU count x engine clock ("compute-bound")
Scalar ALU             ~ CU count x engine clock
LDS                    ~ CU count x engine clock
L2 bandwidth           ~ engine clock only (cache-resident kernels)
DRAM bandwidth         ~ memory clock ("bandwidth-bound"); may *fall*
                       with CU count via L2 thrash + row-locality loss
Exposed latency        plateaus: the fixed controller/PHY latency term
                       responds to neither clock
Atomic serialisation   ~ engine clock; worsens with concurrency
Barrier overhead       ~ engine clock
Launch overhead        constant — caps tiny kernels everywhere
=====================  ==============================================

A small non-overlap charge keeps mixed kernels ("balanced" in the
taxonomy) sensitive to both clocks rather than snapping to a single
pure bottleneck.

This scalar form is the *reference oracle*: full sweeps go through the
vectorized twin in ``interval_batch.py``, which mirrors this file's
arithmetic operation by operation. When changing any expression here,
make the matching change there (the equivalence tests in
``tests/gpu/test_interval_batch.py`` and the axis-dependence table in
DESIGN.md's "Engine architecture" section will catch drift).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.gpu.caches import CacheModel
from repro.gpu.config import HardwareConfig, Microarchitecture
from repro.gpu.dispatch import DispatchPlan, plan_dispatch
from repro.gpu.engine import INTERVAL_DESCRIPTOR, EngineDescriptor
from repro.gpu.memory import MemoryModel
from repro.gpu.occupancy import OccupancyResult, compute_occupancy
from repro.kernels.kernel import Kernel
from repro.units import us_to_seconds

#: Bytes per memory request (one cache line / one coalesced transaction).
REQUEST_BYTES = 64

#: Engine cycles a contended atomic occupies at the L2 (round trip).
ATOMIC_SERIAL_CYCLES = 190

#: Extra contended-atomic cost growth per additional concurrent CU,
#: normalised to the 44-CU device (retry/backoff traffic).
ATOMIC_CONCURRENCY_SLOPE = 0.6

#: Engine cycles to drain and release one workgroup barrier.
BARRIER_CYCLES = 128

#: Fraction of the non-dominant intervals that fails to overlap with
#: the bottleneck interval.
NON_OVERLAP_FRACTION = 0.12

#: Waves needed per CU before the VALU pipelines reach full issue rate.
FULL_ISSUE_WAVES = 4


@dataclass(frozen=True)
class IntervalBreakdown:
    """Per-resource isolated times (seconds) for one kernel execution."""

    compute_s: float
    salu_s: float
    lds_s: float
    l2_s: float
    dram_s: float
    latency_s: float
    atomic_s: float
    barrier_s: float
    launch_s: float

    def as_dict(self) -> Dict[str, float]:
        """All intervals keyed by name."""
        return {
            "compute": self.compute_s,
            "salu": self.salu_s,
            "lds": self.lds_s,
            "l2": self.l2_s,
            "dram": self.dram_s,
            "latency": self.latency_s,
            "atomic": self.atomic_s,
            "barrier": self.barrier_s,
            "launch": self.launch_s,
        }

    @property
    def bottleneck(self) -> str:
        """Name of the largest overlappable interval."""
        overlappable = {
            k: v
            for k, v in self.as_dict().items()
            if k not in ("atomic", "barrier", "launch")
        }
        return max(overlappable, key=overlappable.__getitem__)


@dataclass(frozen=True)
class KernelRunResult:
    """Outcome of simulating one kernel at one hardware configuration."""

    kernel_name: str
    config: HardwareConfig
    time_s: float
    breakdown: IntervalBreakdown
    occupancy: OccupancyResult
    dispatch: DispatchPlan
    l2_hit_rate: float
    dram_bytes: float
    global_size: int

    @property
    def items_per_second(self) -> float:
        """Throughput in work-items per second (the performance metric)."""
        return self.global_size / self.time_s


class IntervalModel:
    """Analytical timing model over one microarchitecture.

    Registered as the ``"interval"`` timing engine: point-capable
    only — grid and study calls resolve to the vectorized family
    sibling ``"interval-batch"``, or force this oracle point by point
    via ``mode="scalar"``.
    """

    supports_point = True
    supports_grid = False
    supports_study = False

    def __init__(self) -> None:
        self._cache_models: Dict[Microarchitecture, CacheModel] = {}

    def descriptor(self) -> EngineDescriptor:
        """Stable engine identity (name/family/version)."""
        return INTERVAL_DESCRIPTOR

    def simulate(
        self, kernel: Kernel, config: HardwareConfig
    ) -> KernelRunResult:
        """Predict the execution time of *kernel* on *config*."""
        uarch = config.uarch
        ch = kernel.characteristics
        geometry = kernel.geometry

        occupancy = compute_occupancy(geometry, kernel.resources, uarch)
        dispatch = plan_dispatch(geometry, occupancy, config.cu_count)
        active_cus = dispatch.active_cus

        cache_model = self._cache_model(uarch)
        caches = cache_model.behaviour(
            kernel, active_cus, occupancy.workgroups_per_cu
        )
        memory = MemoryModel(config)

        items = float(geometry.global_size)
        total_waves = float(geometry.total_waves)
        engine_hz = config.engine_hz

        # --- Throughput intervals -------------------------------------
        compute_s = self._compute_interval(
            items, ch, occupancy, active_cus, uarch, engine_hz
        )
        salu_s = total_waves * ch.salu_ops_per_item / (active_cus * engine_hz)
        lds_s = self._lds_interval(items, ch, active_cus, config)

        issued_bytes = items * ch.global_bytes_per_item
        l2_bytes = issued_bytes * (1.0 - caches.l1_hit_rate)
        dram_bytes = issued_bytes * caches.dram_fraction
        l2_s = l2_bytes / config.peak_l2_bytes_per_sec

        # --- DRAM bandwidth, bounded by Little's law -------------------
        achieved_bw = memory.state(
            ch.coalescing_efficiency, ch.row_locality_sensitivity, active_cus
        ).achieved_bytes_per_sec
        concurrency = (
            active_cus * occupancy.waves_per_cu * ch.memory_parallelism
        )
        unloaded_latency = memory.unloaded_miss_latency_s()
        little_bw = concurrency * REQUEST_BYTES / unloaded_latency
        effective_bw = min(achieved_bw, little_bw)
        dram_s = dram_bytes / effective_bw if dram_bytes > 0 else 0.0

        # --- Exposed dependence-chain latency (two-pass for loading) ---
        latency_s = self._latency_interval(
            l2_bytes, dram_bytes, ch, occupancy, active_cus, memory, caches,
            utilisation=0.0,
        )
        first_pass_max = max(compute_s, salu_s, lds_s, l2_s, dram_s, latency_s)
        if first_pass_max > 0.0 and dram_bytes > 0.0:
            utilisation = min(1.0, (dram_bytes / achieved_bw) / first_pass_max)
            latency_s = self._latency_interval(
                l2_bytes, dram_bytes, ch, occupancy, active_cus, memory,
                caches, utilisation=utilisation,
            )

        # --- Serial additions ------------------------------------------
        atomic_s = self._atomic_interval(items, ch, active_cus, engine_hz)
        barrier_s = (
            geometry.num_workgroups
            * ch.barriers_per_workgroup
            * BARRIER_CYCLES
            / engine_hz
            / dispatch.resident_workgroups_total
        )
        launch_s = us_to_seconds(ch.launch_overhead_us)

        breakdown = IntervalBreakdown(
            compute_s=compute_s,
            salu_s=salu_s,
            lds_s=lds_s,
            l2_s=l2_s,
            dram_s=dram_s,
            latency_s=latency_s,
            atomic_s=atomic_s,
            barrier_s=barrier_s,
            launch_s=launch_s,
        )

        # Tail quantisation applies to per-CU resources (the last batch
        # leaves CUs idle) but not to device-shared ones: a partial
        # batch still saturates the DRAM and L2 it is using.
        overlappable = (compute_s, salu_s, lds_s, l2_s, dram_s, latency_s)
        local_peak = max(compute_s, salu_s, lds_s, latency_s)
        shared_peak = max(l2_s, dram_s)
        dominant = max(
            local_peak * dispatch.quantisation_factor, shared_peak
        )
        spill = NON_OVERLAP_FRACTION * (
            sum(overlappable) - max(overlappable)
        )
        parallel_s = dominant + spill
        time_s = parallel_s + atomic_s + barrier_s + launch_s

        return KernelRunResult(
            kernel_name=kernel.full_name,
            config=config,
            time_s=time_s,
            breakdown=breakdown,
            occupancy=occupancy,
            dispatch=dispatch,
            l2_hit_rate=caches.l2_hit_rate,
            dram_bytes=dram_bytes,
            global_size=geometry.global_size,
        )

    # ------------------------------------------------------------------
    # Interval helpers
    # ------------------------------------------------------------------

    def _cache_model(self, uarch) -> CacheModel:
        # Keyed by value, not id(): chunked campaigns deserialise a
        # fresh (equal) Microarchitecture per chunk, and an id() key
        # would rebuild cache state for every one of them.
        if uarch not in self._cache_models:
            self._cache_models[uarch] = CacheModel(uarch)
        return self._cache_models[uarch]

    @staticmethod
    def _compute_interval(
        items, ch, occupancy, active_cus, uarch, engine_hz
    ) -> float:
        """VALU time: lane-ops over aggregate lane throughput.

        Divergence inflates issued lane-ops (inactive lanes still burn
        issue slots); low occupancy throttles issue below the one
        lane-op per lane per cycle peak until FULL_ISSUE_WAVES waves are
        resident.
        """
        lane_ops = items * ch.valu_ops_per_item / ch.simd_efficiency
        issue_factor = min(1.0, occupancy.waves_per_cu / FULL_ISSUE_WAVES)
        throughput = active_cus * uarch.lanes_per_cu * engine_hz * issue_factor
        return lane_ops / throughput

    @staticmethod
    def _lds_interval(items, ch, active_cus, config) -> float:
        """LDS time: bytes over aggregate LDS bandwidth of active CUs."""
        lds_bytes = items * ch.lds_bytes_per_item
        if lds_bytes == 0.0:
            return 0.0
        per_device = config.peak_lds_bytes_per_sec
        active_share = per_device * active_cus / config.cu_count
        return lds_bytes / active_share

    @staticmethod
    def _latency_interval(
        l2_bytes, dram_bytes, ch, occupancy, active_cus, memory, caches,
        utilisation,
    ) -> float:
        """Serial dependence-chain exposure.

        Dependent requests expose the full round trip; chains in
        different waves proceed in parallel, so exposure divides by the
        wave-level concurrency. L2-resident dependent accesses see the
        (shorter, engine-clocked) L2 latency.
        """
        if ch.dependent_access_fraction == 0.0:
            return 0.0
        requests = (l2_bytes + 0.0) / REQUEST_BYTES
        dependent = requests * ch.dependent_access_fraction
        miss_fraction = 0.0 if l2_bytes == 0 else dram_bytes / l2_bytes
        dram_latency = memory.loaded_miss_latency_s(utilisation)
        uarch = memory.config.uarch
        l2_latency = uarch.l2_latency_cycles / memory.config.engine_hz
        mean_latency = (
            miss_fraction * dram_latency + (1.0 - miss_fraction) * l2_latency
        )
        concurrency = max(1.0, active_cus * occupancy.waves_per_cu)
        return dependent * mean_latency / concurrency

    @staticmethod
    def _atomic_interval(items, ch, active_cus, engine_hz) -> float:
        """Contended-atomic serialisation at the L2.

        Conflicting atomics to one address serialise; retry traffic
        grows with the number of CUs racing, so this interval *worsens*
        as CUs are added — an inverse-CU mechanism independent of the
        memory system.
        """
        if ch.atomic_ops_per_item == 0.0 or ch.atomic_contention == 0.0:
            return 0.0
        serialised = items * ch.atomic_ops_per_item * ch.atomic_contention
        concurrency_growth = 1.0 + ATOMIC_CONCURRENCY_SLOPE * (
            ch.atomic_contention * (active_cus - 1) / 43.0
        )
        cycles = serialised * ATOMIC_SERIAL_CYCLES * concurrency_growth
        return cycles / engine_hz
