"""Batch interval engine: one kernel's full configuration grid at once.

The scalar :class:`~repro.gpu.interval_model.IntervalModel` evaluates
one ``(kernel, config)`` pair per call; sweeping the paper grid that
way costs 891 Python round trips per kernel, ~99% of which is
interpreter overhead re-deriving quantities that do not change between
configurations. This module exploits the structure of the model:

* **CU-axis hoisting.** Occupancy depends only on the kernel and the
  microarchitecture — one value per kernel. Dispatch, cache behaviour,
  and DRAM bandwidth efficiency depend only on the CU count — one value
  per CU setting (11 on the paper grid) instead of one per
  configuration (891). See DESIGN.md ("Engine architecture") for the
  full axis-dependence table; the scalar/batch equivalence tests pin it.
* **Clock-axis broadcasting.** Every remaining quantity is an
  elementwise arithmetic expression in ``engine_hz`` and ``memory_hz``,
  so the nine interval terms — including the two-pass loaded-latency
  refinement and the quantisation/non-overlap combination rule —
  broadcast over the ``(n_cu, n_eng, n_mem)`` grid as a handful of
  NumPy array operations.

The arithmetic deliberately mirrors the scalar model operation by
operation (same association order, same guards) so that the two paths
agree to within ``rtol=1e-12`` on every grid point; the scalar path
remains the reference oracle (``tests/gpu/test_interval_batch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

import numpy as np

from repro.gpu.caches import CacheModel
from repro.gpu.config import HardwareConfig, Microarchitecture
from repro.gpu.dispatch import plan_dispatch
from repro.gpu.interval_model import (
    ATOMIC_CONCURRENCY_SLOPE,
    ATOMIC_SERIAL_CYCLES,
    BARRIER_CYCLES,
    FULL_ISSUE_WAVES,
    NON_OVERLAP_FRACTION,
    REQUEST_BYTES,
)
from repro.gpu.memory import MAX_QUEUE_STRETCH, MemoryModel
from repro.gpu.occupancy import OccupancyResult, compute_occupancy
from repro.kernels.kernel import Kernel
from repro.units import ns_to_seconds, us_to_seconds

if TYPE_CHECKING:  # avoid a gpu -> sweep import cycle at runtime
    from repro.sweep.space import ConfigurationSpace

#: Names of the overlappable intervals, in the scalar model's
#: tie-breaking order (``IntervalBreakdown.bottleneck`` keeps the first
#: of equal maxima).
OVERLAPPABLE_INTERVALS = (
    "compute", "salu", "lds", "l2", "dram", "latency",
)


@dataclass(frozen=True)
class GridBreakdown:
    """Per-resource isolated times over the whole grid (seconds).

    Each array has the full ``(n_cu, n_eng, n_mem)`` shape, matching
    :meth:`ConfigurationSpace.shape`.
    """

    compute_s: np.ndarray
    salu_s: np.ndarray
    lds_s: np.ndarray
    l2_s: np.ndarray
    dram_s: np.ndarray
    latency_s: np.ndarray
    atomic_s: np.ndarray
    barrier_s: np.ndarray
    launch_s: np.ndarray

    def as_dict(self) -> Dict[str, np.ndarray]:
        """All interval grids keyed by name."""
        return {
            "compute": self.compute_s,
            "salu": self.salu_s,
            "lds": self.lds_s,
            "l2": self.l2_s,
            "dram": self.dram_s,
            "latency": self.latency_s,
            "atomic": self.atomic_s,
            "barrier": self.barrier_s,
            "launch": self.launch_s,
        }

    @property
    def bottleneck(self) -> np.ndarray:
        """Largest overlappable interval's name at every grid point."""
        stacked = np.stack(
            [getattr(self, f"{name}_s") for name in OVERLAPPABLE_INTERVALS]
        )
        winners = np.argmax(stacked, axis=0)
        return np.asarray(OVERLAPPABLE_INTERVALS, dtype=object)[winners]


@dataclass(frozen=True)
class KernelGridResult:
    """Outcome of simulating one kernel over a full configuration grid.

    The grid analogue of
    :class:`~repro.gpu.interval_model.KernelRunResult`: ``time_s`` and
    ``items_per_second`` are ``(n_cu, n_eng, n_mem)`` tensors indexed
    exactly like :meth:`ConfigurationSpace.config`. Quantities that the
    model hoists onto the CU axis (cache behaviour, DRAM traffic) are
    reported as ``(n_cu,)`` vectors — they provably cannot vary along
    the clock axes.
    """

    kernel_name: str
    time_s: np.ndarray
    items_per_second: np.ndarray
    breakdown: GridBreakdown
    occupancy: OccupancyResult
    l2_hit_rate: np.ndarray
    dram_bytes: np.ndarray
    global_size: int


class BatchIntervalModel:
    """Vectorized analytical timing model over one microarchitecture.

    Produces the same numbers as
    :class:`~repro.gpu.interval_model.IntervalModel` (to ``rtol=1e-12``)
    at >10x the sweep throughput.
    """

    def __init__(self) -> None:
        self._cache_models: Dict[int, CacheModel] = {}

    def simulate_grid(
        self, kernel: Kernel, space: "ConfigurationSpace"
    ) -> KernelGridResult:
        """Predict *kernel*'s execution time at every point of *space*."""
        uarch = space.uarch
        ch = kernel.characteristics
        geometry = kernel.geometry
        n_cu, n_eng, n_mem = space.shape
        shape = (n_cu, n_eng, n_mem)

        # Grid axes, shaped for broadcasting: CU quantities vary along
        # axis 0, engine-clock quantities along axis 1, memory-clock
        # quantities along axis 2.
        cu_counts = np.asarray(space.cu_counts, dtype=np.int64)
        cu_counts = cu_counts.reshape(n_cu, 1, 1)
        engine_hz = np.asarray(space.engine_mhz, dtype=np.float64) * 1e6
        engine_hz = engine_hz.reshape(1, n_eng, 1)
        memory_hz = np.asarray(space.memory_mhz, dtype=np.float64) * 1e6
        memory_hz = memory_hz.reshape(1, 1, n_mem)

        # --- CU-axis hoist: 1 occupancy + n_cu dispatch/cache/DRAM
        # evaluations instead of one per configuration ----------------
        occupancy = compute_occupancy(geometry, kernel.resources, uarch)
        plans = [
            plan_dispatch(geometry, occupancy, cu) for cu in space.cu_counts
        ]
        active_cus = np.asarray(
            [p.active_cus for p in plans], dtype=np.int64
        ).reshape(n_cu, 1, 1)
        quantisation = np.asarray(
            [p.quantisation_factor for p in plans]
        ).reshape(n_cu, 1, 1)
        resident_total = np.asarray(
            [p.resident_workgroups_total for p in plans], dtype=np.int64
        ).reshape(n_cu, 1, 1)

        cache_model = self._cache_model(uarch)
        behaviours = [
            cache_model.behaviour(
                kernel, p.active_cus, occupancy.workgroups_per_cu
            )
            for p in plans
        ]
        l1_hit_rate = behaviours[0].l1_hit_rate  # kernel-only property
        l2_hit_rate = np.asarray([b.l2_hit_rate for b in behaviours])
        dram_fraction = np.asarray(
            [b.dram_fraction for b in behaviours]
        ).reshape(n_cu, 1, 1)

        # bandwidth_efficiency only reads the kernel's access pattern
        # and the active-CU count; any config of this uarch will do.
        memory = MemoryModel(
            HardwareConfig(
                cu_count=space.cu_counts[0],
                engine_mhz=space.engine_mhz[0],
                memory_mhz=space.memory_mhz[0],
                uarch=uarch,
            )
        )
        efficiency = np.asarray(
            [
                memory.bandwidth_efficiency(
                    ch.coalescing_efficiency,
                    ch.row_locality_sensitivity,
                    p.active_cus,
                )
                for p in plans
            ]
        ).reshape(n_cu, 1, 1)

        items = float(geometry.global_size)
        total_waves = float(geometry.total_waves)

        # --- Throughput intervals -------------------------------------
        lane_ops = items * ch.valu_ops_per_item / ch.simd_efficiency
        issue_factor = min(1.0, occupancy.waves_per_cu / FULL_ISSUE_WAVES)
        throughput = (
            active_cus * uarch.lanes_per_cu * engine_hz * issue_factor
        )
        compute_s = lane_ops / throughput

        salu_s = (
            total_waves * ch.salu_ops_per_item / (active_cus * engine_hz)
        )

        lds_bytes = items * ch.lds_bytes_per_item
        if lds_bytes == 0.0:
            lds_s = np.float64(0.0)
        else:
            per_device = cu_counts * 128 * engine_hz
            active_share = per_device * active_cus / cu_counts
            lds_s = lds_bytes / active_share

        issued_bytes = items * ch.global_bytes_per_item
        l2_bytes = issued_bytes * (1.0 - l1_hit_rate)
        dram_bytes = issued_bytes * dram_fraction
        peak_l2 = uarch.l2_banks * 64 * engine_hz
        l2_s = l2_bytes / peak_l2

        # --- DRAM bandwidth, bounded by Little's law -------------------
        bytes_per_cycle = (
            uarch.memory_bus_bits / 8 * uarch.memory_data_rate
        )
        peak_dram = bytes_per_cycle * memory_hz
        achieved_bw = peak_dram * efficiency
        concurrency = (
            active_cus * occupancy.waves_per_cu * ch.memory_parallelism
        )
        l2_time = uarch.l2_latency_cycles / engine_hz
        dram_time = uarch.dram_latency_cycles / memory_hz
        fixed_time = ns_to_seconds(uarch.dram_fixed_latency_ns)
        unloaded_latency = l2_time + dram_time + fixed_time
        little_bw = concurrency * REQUEST_BYTES / unloaded_latency
        effective_bw = np.minimum(achieved_bw, little_bw)
        dram_positive = dram_bytes > 0.0
        dram_s = np.where(dram_positive, dram_bytes / effective_bw, 0.0)

        # --- Exposed dependence-chain latency (two-pass for loading) ---
        # Queueing applies only to the memory-side latency terms; the
        # engine-domain L2 pipeline is unaffected (see MemoryModel).
        memory_side = dram_time + fixed_time
        if ch.dependent_access_fraction == 0.0:
            latency_s = np.float64(0.0)
        else:
            requests = (l2_bytes + 0.0) / REQUEST_BYTES
            dependent = requests * ch.dependent_access_fraction
            if l2_bytes == 0:
                miss_fraction = np.float64(0.0)
            else:
                miss_fraction = dram_bytes / l2_bytes
            chain_concurrency = np.maximum(
                1.0, active_cus * occupancy.waves_per_cu
            )
            l2_latency = uarch.l2_latency_cycles / engine_hz

            def exposed(dram_latency):
                mean_latency = (
                    miss_fraction * dram_latency
                    + (1.0 - miss_fraction) * l2_latency
                )
                return dependent * mean_latency / chain_concurrency

            # Pass 1: unloaded queues (utilisation 0 -> no stretch).
            latency_s = exposed(l2_time + memory_side / (1.0 - 0.0))

            first_pass_max = _chain_max(
                compute_s, salu_s, lds_s, l2_s, dram_s, latency_s
            )
            refine = (first_pass_max > 0.0) & dram_positive
            if np.any(refine):
                with np.errstate(divide="ignore", invalid="ignore"):
                    utilisation = np.minimum(
                        1.0, (dram_bytes / achieved_bw) / first_pass_max
                    )
                utilisation = np.where(refine, utilisation, 0.0)
                bounded = np.minimum(
                    utilisation, 1.0 - 1.0 / MAX_QUEUE_STRETCH
                )
                loaded = l2_time + memory_side / (1.0 - bounded)
                latency_s = np.where(refine, exposed(loaded), latency_s)

        # --- Serial additions ------------------------------------------
        if ch.atomic_ops_per_item == 0.0 or ch.atomic_contention == 0.0:
            atomic_s = np.float64(0.0)
        else:
            serialised = (
                items * ch.atomic_ops_per_item * ch.atomic_contention
            )
            concurrency_growth = 1.0 + ATOMIC_CONCURRENCY_SLOPE * (
                ch.atomic_contention * (active_cus - 1) / 43.0
            )
            cycles = serialised * ATOMIC_SERIAL_CYCLES * concurrency_growth
            atomic_s = cycles / engine_hz

        barrier_s = (
            geometry.num_workgroups
            * ch.barriers_per_workgroup
            * BARRIER_CYCLES
            / engine_hz
            / resident_total
        )
        launch_s = us_to_seconds(ch.launch_overhead_us)

        # --- Combination (quantised local peak vs shared peak) ---------
        local_peak = _chain_max(compute_s, salu_s, lds_s, latency_s)
        shared_peak = np.maximum(l2_s, dram_s)
        dominant = np.maximum(local_peak * quantisation, shared_peak)
        overlap_sum = (
            ((((compute_s + salu_s) + lds_s) + l2_s) + dram_s) + latency_s
        )
        overlap_max = np.maximum(local_peak, shared_peak)
        spill = NON_OVERLAP_FRACTION * (overlap_sum - overlap_max)
        parallel_s = dominant + spill
        time_s = parallel_s + atomic_s + barrier_s + launch_s

        time_s = _materialise(time_s, shape)
        items_per_second = geometry.global_size / time_s

        breakdown = GridBreakdown(
            compute_s=_materialise(compute_s, shape),
            salu_s=_materialise(salu_s, shape),
            lds_s=_materialise(lds_s, shape),
            l2_s=_materialise(l2_s, shape),
            dram_s=_materialise(dram_s, shape),
            latency_s=_materialise(latency_s, shape),
            atomic_s=_materialise(atomic_s, shape),
            barrier_s=_materialise(barrier_s, shape),
            launch_s=_materialise(launch_s, shape),
        )

        return KernelGridResult(
            kernel_name=kernel.full_name,
            time_s=time_s,
            items_per_second=items_per_second,
            breakdown=breakdown,
            occupancy=occupancy,
            l2_hit_rate=l2_hit_rate,
            dram_bytes=dram_bytes.reshape(n_cu),
            global_size=geometry.global_size,
        )

    def _cache_model(self, uarch: Microarchitecture) -> CacheModel:
        key = id(uarch)
        if key not in self._cache_models:
            self._cache_models[key] = CacheModel(uarch)
        return self._cache_models[key]


def _chain_max(first, *rest):
    """Elementwise maximum of several broadcastable arrays."""
    result = first
    for term in rest:
        result = np.maximum(result, term)
    return result


def _materialise(value, shape) -> np.ndarray:
    """Broadcast *value* to *shape* as a fresh contiguous array."""
    return np.ascontiguousarray(
        np.broadcast_to(np.asarray(value, dtype=np.float64), shape)
    )
