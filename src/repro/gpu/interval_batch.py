"""Batch interval engine: one kernel's full configuration grid at once.

The scalar :class:`~repro.gpu.interval_model.IntervalModel` evaluates
one ``(kernel, config)`` pair per call; sweeping the paper grid that
way costs 891 Python round trips per kernel, ~99% of which is
interpreter overhead re-deriving quantities that do not change between
configurations. This module exploits the structure of the model:

* **CU-axis hoisting.** Occupancy depends only on the kernel and the
  microarchitecture — one value per kernel. Dispatch, cache behaviour,
  and DRAM bandwidth efficiency depend only on the CU count — one value
  per CU setting (11 on the paper grid) instead of one per
  configuration (891). See DESIGN.md ("Engine architecture") for the
  full axis-dependence table; the scalar/batch equivalence tests pin it.
* **Clock-axis broadcasting.** Every remaining quantity is an
  elementwise arithmetic expression in ``engine_hz`` and ``memory_hz``,
  so the nine interval terms — including the two-pass loaded-latency
  refinement and the quantisation/non-overlap combination rule —
  broadcast over the ``(n_cu, n_eng, n_mem)`` grid as a handful of
  NumPy array operations.

The arithmetic deliberately mirrors the scalar model operation by
operation (same association order, same guards) so that the two paths
agree to within ``rtol=1e-12`` on every grid point; the scalar path
remains the reference oracle (``tests/gpu/test_interval_batch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.gpu.caches import CacheModel
from repro.gpu.config import HardwareConfig, Microarchitecture
from repro.gpu.dispatch import plan_dispatch, plan_dispatch_batch
from repro.gpu.engine import (
    INTERVAL_BATCH_DESCRIPTOR,
    EngineDescriptor,
    GridSpace,
)
from repro.gpu.interval_model import (
    ATOMIC_CONCURRENCY_SLOPE,
    ATOMIC_SERIAL_CYCLES,
    BARRIER_CYCLES,
    FULL_ISSUE_WAVES,
    NON_OVERLAP_FRACTION,
    REQUEST_BYTES,
)
from repro.gpu.memory import MAX_QUEUE_STRETCH, MemoryModel
from repro.gpu.occupancy import (
    BatchOccupancy,
    OccupancyResult,
    compute_occupancy,
    compute_occupancy_batch,
)
from repro.kernels.kernel import Kernel
from repro.kernels.pack import KernelPack
from repro.units import ns_to_seconds, us_to_seconds

#: Names of the overlappable intervals, in the scalar model's
#: tie-breaking order (``IntervalBreakdown.bottleneck`` keeps the first
#: of equal maxima).
OVERLAPPABLE_INTERVALS = (
    "compute", "salu", "lds", "l2", "dram", "latency",
)


@dataclass(frozen=True)
class GridBreakdown:
    """Per-resource isolated times over the whole grid (seconds).

    Each array has the full ``(n_cu, n_eng, n_mem)`` shape, matching
    :meth:`ConfigurationSpace.shape`.
    """

    compute_s: np.ndarray
    salu_s: np.ndarray
    lds_s: np.ndarray
    l2_s: np.ndarray
    dram_s: np.ndarray
    latency_s: np.ndarray
    atomic_s: np.ndarray
    barrier_s: np.ndarray
    launch_s: np.ndarray

    def as_dict(self) -> Dict[str, np.ndarray]:
        """All interval grids keyed by name."""
        return {
            "compute": self.compute_s,
            "salu": self.salu_s,
            "lds": self.lds_s,
            "l2": self.l2_s,
            "dram": self.dram_s,
            "latency": self.latency_s,
            "atomic": self.atomic_s,
            "barrier": self.barrier_s,
            "launch": self.launch_s,
        }

    @property
    def bottleneck(self) -> np.ndarray:
        """Largest overlappable interval's name at every grid point."""
        stacked = np.stack(
            [getattr(self, f"{name}_s") for name in OVERLAPPABLE_INTERVALS]
        )
        winners = np.argmax(stacked, axis=0)
        return np.asarray(OVERLAPPABLE_INTERVALS, dtype=object)[winners]


@dataclass(frozen=True)
class KernelGridResult:
    """Outcome of simulating one kernel over a full configuration grid.

    The grid analogue of
    :class:`~repro.gpu.interval_model.KernelRunResult`: ``time_s`` and
    ``items_per_second`` are ``(n_cu, n_eng, n_mem)`` tensors indexed
    exactly like :meth:`ConfigurationSpace.config`. Quantities that the
    model hoists onto the CU axis (cache behaviour, DRAM traffic) are
    reported as ``(n_cu,)`` vectors — they provably cannot vary along
    the clock axes.
    """

    kernel_name: str
    time_s: np.ndarray
    items_per_second: np.ndarray
    breakdown: GridBreakdown
    occupancy: OccupancyResult
    l2_hit_rate: np.ndarray
    dram_bytes: np.ndarray
    global_size: int


@dataclass(frozen=True)
class StudyGridResult:
    """Outcome of simulating an entire kernel pack over one grid.

    The whole-study analogue of :class:`KernelGridResult`: ``time_s``
    and ``items_per_second`` are ``(n_kernels, n_cu, n_eng, n_mem)``
    tensors whose leading axis follows pack order; slicing
    ``items_per_second[i]`` yields exactly the per-kernel grid the
    batch path produces for ``pack.kernel(i)``. CU-axis quantities
    (L2 hit rate, DRAM traffic) are ``(n_kernels, n_cu)`` matrices;
    occupancy is per kernel only.
    """

    kernel_names: "tuple[str, ...]"
    time_s: np.ndarray
    items_per_second: np.ndarray
    occupancy: BatchOccupancy
    l2_hit_rate: np.ndarray
    dram_bytes: np.ndarray
    global_size: np.ndarray

    def __len__(self) -> int:
        return len(self.kernel_names)

    def perf_row(self, index: int) -> np.ndarray:
        """One kernel's ``(n_cu, n_eng, n_mem)`` throughput grid."""
        return self.items_per_second[index]


class BatchIntervalModel:
    """Vectorized analytical timing model over one microarchitecture.

    Produces the same numbers as
    :class:`~repro.gpu.interval_model.IntervalModel` (to ``rtol=1e-12``)
    at >10x the sweep throughput.
    """

    supports_point = False
    supports_grid = True
    supports_study = True

    def __init__(self) -> None:
        self._uarch_states: Dict[Microarchitecture, _UarchState] = {}

    def descriptor(self) -> EngineDescriptor:
        """Stable engine identity (shares the ``interval`` family)."""
        return INTERVAL_BATCH_DESCRIPTOR

    def simulate_grid(
        self, kernel: Kernel, space: GridSpace
    ) -> KernelGridResult:
        """Predict *kernel*'s execution time at every point of *space*."""
        uarch = space.uarch
        ch = kernel.characteristics
        geometry = kernel.geometry
        n_cu, n_eng, n_mem = space.shape
        shape = (n_cu, n_eng, n_mem)

        # Grid axes, shaped for broadcasting: CU quantities vary along
        # axis 0, engine-clock quantities along axis 1, memory-clock
        # quantities along axis 2.
        cu_counts = np.asarray(space.cu_counts, dtype=np.int64)
        cu_counts = cu_counts.reshape(n_cu, 1, 1)
        engine_hz = np.asarray(space.engine_mhz, dtype=np.float64) * 1e6
        engine_hz = engine_hz.reshape(1, n_eng, 1)
        memory_hz = np.asarray(space.memory_mhz, dtype=np.float64) * 1e6
        memory_hz = memory_hz.reshape(1, 1, n_mem)

        # --- CU-axis hoist: 1 occupancy + n_cu dispatch/cache/DRAM
        # evaluations instead of one per configuration ----------------
        occupancy = compute_occupancy(geometry, kernel.resources, uarch)
        plans = [
            plan_dispatch(geometry, occupancy, cu) for cu in space.cu_counts
        ]
        active_cus = np.asarray(
            [p.active_cus for p in plans], dtype=np.int64
        ).reshape(n_cu, 1, 1)
        quantisation = np.asarray(
            [p.quantisation_factor for p in plans]
        ).reshape(n_cu, 1, 1)
        resident_total = np.asarray(
            [p.resident_workgroups_total for p in plans], dtype=np.int64
        ).reshape(n_cu, 1, 1)

        state = self._state(uarch)
        cache_model = state.cache_model
        behaviours = [
            cache_model.behaviour(
                kernel, p.active_cus, occupancy.workgroups_per_cu
            )
            for p in plans
        ]
        l1_hit_rate = behaviours[0].l1_hit_rate  # kernel-only property
        l2_hit_rate = np.asarray([b.l2_hit_rate for b in behaviours])
        dram_fraction = np.asarray(
            [b.dram_fraction for b in behaviours]
        ).reshape(n_cu, 1, 1)

        # bandwidth_efficiency only reads the kernel's access pattern
        # and the active-CU count, so the memoized per-uarch model works
        # for every configuration of this space.
        memory = state.memory_model
        efficiency = np.asarray(
            [
                memory.bandwidth_efficiency(
                    ch.coalescing_efficiency,
                    ch.row_locality_sensitivity,
                    p.active_cus,
                )
                for p in plans
            ]
        ).reshape(n_cu, 1, 1)

        items = float(geometry.global_size)
        total_waves = float(geometry.total_waves)

        # --- Throughput intervals -------------------------------------
        lane_ops = items * ch.valu_ops_per_item / ch.simd_efficiency
        issue_factor = min(1.0, occupancy.waves_per_cu / FULL_ISSUE_WAVES)
        throughput = (
            active_cus * uarch.lanes_per_cu * engine_hz * issue_factor
        )
        compute_s = lane_ops / throughput

        salu_s = (
            total_waves * ch.salu_ops_per_item / (active_cus * engine_hz)
        )

        lds_bytes = items * ch.lds_bytes_per_item
        if lds_bytes == 0.0:
            lds_s = np.float64(0.0)
        else:
            per_device = cu_counts * 128 * engine_hz
            active_share = per_device * active_cus / cu_counts
            lds_s = lds_bytes / active_share

        issued_bytes = items * ch.global_bytes_per_item
        l2_bytes = issued_bytes * (1.0 - l1_hit_rate)
        dram_bytes = issued_bytes * dram_fraction
        peak_l2 = uarch.l2_banks * 64 * engine_hz
        l2_s = l2_bytes / peak_l2

        # --- DRAM bandwidth, bounded by Little's law -------------------
        bytes_per_cycle = (
            uarch.memory_bus_bits / 8 * uarch.memory_data_rate
        )
        # Host contention comes off the top in the same operand order
        # as HardwareConfig.peak_dram_bytes_per_sec (bit-compat).
        peak_dram = (
            bytes_per_cycle * memory_hz
            * (1.0 - uarch.host_bandwidth_fraction)
        )
        achieved_bw = peak_dram * efficiency
        concurrency = (
            active_cus * occupancy.waves_per_cu * ch.memory_parallelism
        )
        l2_time = uarch.l2_latency_cycles / engine_hz
        dram_time = uarch.dram_latency_cycles / memory_hz
        fixed_time = ns_to_seconds(uarch.dram_fixed_latency_ns)
        unloaded_latency = l2_time + dram_time + fixed_time
        little_bw = concurrency * REQUEST_BYTES / unloaded_latency
        effective_bw = np.minimum(achieved_bw, little_bw)
        dram_positive = dram_bytes > 0.0
        dram_s = np.where(dram_positive, dram_bytes / effective_bw, 0.0)

        # --- Exposed dependence-chain latency (two-pass for loading) ---
        # Queueing applies only to the memory-side latency terms; the
        # engine-domain L2 pipeline is unaffected (see MemoryModel).
        memory_side = dram_time + fixed_time
        if ch.dependent_access_fraction == 0.0:
            latency_s = np.float64(0.0)
        else:
            requests = (l2_bytes + 0.0) / REQUEST_BYTES
            dependent = requests * ch.dependent_access_fraction
            if l2_bytes == 0:
                miss_fraction = np.float64(0.0)
            else:
                miss_fraction = dram_bytes / l2_bytes
            chain_concurrency = np.maximum(
                1.0, active_cus * occupancy.waves_per_cu
            )
            l2_latency = uarch.l2_latency_cycles / engine_hz

            def exposed(dram_latency):
                mean_latency = (
                    miss_fraction * dram_latency
                    + (1.0 - miss_fraction) * l2_latency
                )
                return dependent * mean_latency / chain_concurrency

            # Pass 1: unloaded queues (utilisation 0 -> no stretch).
            latency_s = exposed(l2_time + memory_side / (1.0 - 0.0))

            first_pass_max = _chain_max(
                compute_s, salu_s, lds_s, l2_s, dram_s, latency_s
            )
            refine = (first_pass_max > 0.0) & dram_positive
            if np.any(refine):
                with np.errstate(divide="ignore", invalid="ignore"):
                    utilisation = np.minimum(
                        1.0, (dram_bytes / achieved_bw) / first_pass_max
                    )
                utilisation = np.where(refine, utilisation, 0.0)
                bounded = np.minimum(
                    utilisation, 1.0 - 1.0 / MAX_QUEUE_STRETCH
                )
                loaded = l2_time + memory_side / (1.0 - bounded)
                latency_s = np.where(refine, exposed(loaded), latency_s)

        # --- Serial additions ------------------------------------------
        if ch.atomic_ops_per_item == 0.0 or ch.atomic_contention == 0.0:
            atomic_s = np.float64(0.0)
        else:
            serialised = (
                items * ch.atomic_ops_per_item * ch.atomic_contention
            )
            concurrency_growth = 1.0 + ATOMIC_CONCURRENCY_SLOPE * (
                ch.atomic_contention * (active_cus - 1) / 43.0
            )
            cycles = serialised * ATOMIC_SERIAL_CYCLES * concurrency_growth
            atomic_s = cycles / engine_hz

        barrier_s = (
            geometry.num_workgroups
            * ch.barriers_per_workgroup
            * BARRIER_CYCLES
            / engine_hz
            / resident_total
        )
        launch_s = us_to_seconds(ch.launch_overhead_us)

        # --- Combination (quantised local peak vs shared peak) ---------
        local_peak = _chain_max(compute_s, salu_s, lds_s, latency_s)
        shared_peak = np.maximum(l2_s, dram_s)
        dominant = np.maximum(local_peak * quantisation, shared_peak)
        overlap_sum = (
            ((((compute_s + salu_s) + lds_s) + l2_s) + dram_s) + latency_s
        )
        overlap_max = np.maximum(local_peak, shared_peak)
        spill = NON_OVERLAP_FRACTION * (overlap_sum - overlap_max)
        parallel_s = dominant + spill
        time_s = parallel_s + atomic_s + barrier_s + launch_s

        time_s = _materialise(time_s, shape)
        items_per_second = geometry.global_size / time_s

        breakdown = GridBreakdown(
            compute_s=_materialise(compute_s, shape),
            salu_s=_materialise(salu_s, shape),
            lds_s=_materialise(lds_s, shape),
            l2_s=_materialise(l2_s, shape),
            dram_s=_materialise(dram_s, shape),
            latency_s=_materialise(latency_s, shape),
            atomic_s=_materialise(atomic_s, shape),
            barrier_s=_materialise(barrier_s, shape),
            launch_s=_materialise(launch_s, shape),
        )

        return KernelGridResult(
            kernel_name=kernel.full_name,
            time_s=time_s,
            items_per_second=items_per_second,
            breakdown=breakdown,
            occupancy=occupancy,
            l2_hit_rate=l2_hit_rate,
            dram_bytes=dram_bytes.reshape(n_cu),
            global_size=geometry.global_size,
        )

    def simulate_study(
        self, pack: KernelPack, space: GridSpace
    ) -> StudyGridResult:
        """Predict every packed kernel at every point of *space* at once.

        The kernel axis joins the broadcast: per-kernel quantities are
        ``(K, 1, 1, 1)`` columns, dispatch/cache/DRAM-efficiency state
        is a ``(K, C, 1, 1)`` matrix, and the clock terms keep their
        ``(1, 1, E, 1)`` / ``(1, 1, 1, M)`` shapes — the whole
        267-kernel x 891-configuration study collapses into one set of
        ``(K, C, E, M)`` array expressions with no Python loop over
        kernels or CUs.

        The arithmetic repeats :meth:`simulate_grid` operation by
        operation (scalar guards become exact zero products or masked
        ``np.where`` branches), so slicing the result along the kernel
        axis reproduces the per-kernel batch path, which itself matches
        the scalar oracle (``tests/gpu/test_study_engine.py``).
        """
        uarch = space.uarch
        n_cu, n_eng, n_mem = space.shape
        n_kernels = len(pack)
        shape = (n_kernels, n_cu, n_eng, n_mem)

        def col(values: np.ndarray) -> np.ndarray:
            """A per-kernel vector as a (K, 1, 1, 1) broadcast column."""
            return values.reshape(n_kernels, 1, 1, 1)

        cu_counts_1d = np.asarray(space.cu_counts, dtype=np.int64)
        cu_counts = cu_counts_1d.reshape(1, n_cu, 1, 1)
        engine_hz = np.asarray(space.engine_mhz, dtype=np.float64) * 1e6
        engine_hz = engine_hz.reshape(1, 1, n_eng, 1)
        memory_hz = np.asarray(space.memory_mhz, dtype=np.float64) * 1e6
        memory_hz = memory_hz.reshape(1, 1, 1, n_mem)

        # --- Kernel/CU-axis hoist, now vectorized over the pack -------
        occupancy = compute_occupancy_batch(pack, uarch)
        waves_per_cu = col(occupancy.waves_per_cu)
        dispatch = plan_dispatch_batch(
            pack.num_workgroups, occupancy.workgroups_per_cu, cu_counts_1d
        )
        active_cus = dispatch.active_cus.reshape(n_kernels, n_cu, 1, 1)
        quantisation = dispatch.quantisation_factor.reshape(
            n_kernels, n_cu, 1, 1
        )
        resident_total = dispatch.resident_workgroups_total.reshape(
            n_kernels, n_cu, 1, 1
        )

        state = self._state(uarch)
        caches = state.cache_model.behaviour_batch(
            pack, dispatch.active_cus, occupancy.workgroups_per_cu
        )
        l1_hit_rate = col(caches.l1_hit_rate)
        dram_fraction = caches.dram_fraction.reshape(
            n_kernels, n_cu, 1, 1
        )
        efficiency = state.memory_model.bandwidth_efficiency_batch(
            pack.ch("coalescing_efficiency"),
            pack.ch("row_locality_sensitivity"),
            dispatch.active_cus,
        ).reshape(n_kernels, n_cu, 1, 1)

        items = col(
            pack.geometry["global_size"].astype(np.float64)
        )
        total_waves = col(pack.total_waves.astype(np.float64))

        # --- Throughput intervals -------------------------------------
        lane_ops = (
            items * col(pack.ch("valu_ops_per_item"))
            / col(pack.ch("simd_efficiency"))
        )
        issue_factor = np.minimum(
            1.0, waves_per_cu / FULL_ISSUE_WAVES
        )
        throughput = (
            active_cus * uarch.lanes_per_cu * engine_hz * issue_factor
        )
        compute_s = lane_ops / throughput

        salu_s = (
            total_waves * col(pack.ch("salu_ops_per_item"))
            / (active_cus * engine_hz)
        )

        # A zero-LDS kernel divides an exact 0.0 numerator — same value
        # the scalar guard returns, with no per-kernel branch.
        lds_bytes = items * col(pack.ch("lds_bytes_per_item"))
        per_device = cu_counts * 128 * engine_hz
        active_share = per_device * active_cus / cu_counts
        lds_s = lds_bytes / active_share

        issued_bytes = items * col(pack.global_bytes_per_item)
        l2_bytes = issued_bytes * (1.0 - l1_hit_rate)
        dram_bytes = issued_bytes * dram_fraction
        peak_l2 = uarch.l2_banks * 64 * engine_hz
        l2_s = l2_bytes / peak_l2

        # --- DRAM bandwidth, bounded by Little's law -------------------
        bytes_per_cycle = (
            uarch.memory_bus_bits / 8 * uarch.memory_data_rate
        )
        # Host contention comes off the top in the same operand order
        # as HardwareConfig.peak_dram_bytes_per_sec (bit-compat).
        peak_dram = (
            bytes_per_cycle * memory_hz
            * (1.0 - uarch.host_bandwidth_fraction)
        )
        achieved_bw = peak_dram * efficiency
        concurrency = (
            active_cus * waves_per_cu
            * col(pack.ch("memory_parallelism"))
        )
        l2_time = uarch.l2_latency_cycles / engine_hz
        dram_time = uarch.dram_latency_cycles / memory_hz
        fixed_time = ns_to_seconds(uarch.dram_fixed_latency_ns)
        unloaded_latency = l2_time + dram_time + fixed_time
        little_bw = concurrency * REQUEST_BYTES / unloaded_latency
        effective_bw = np.minimum(achieved_bw, little_bw)
        dram_positive = dram_bytes > 0.0
        dram_s = np.where(dram_positive, dram_bytes / effective_bw, 0.0)

        # --- Exposed dependence-chain latency (two-pass for loading) ---
        # A zero dependent-access fraction zeroes ``dependent`` and with
        # it every latency product, reproducing the scalar early-out.
        memory_side = dram_time + fixed_time
        requests = (l2_bytes + 0.0) / REQUEST_BYTES
        dependent = requests * col(
            pack.ch("dependent_access_fraction")
        )
        l2_bytes_positive = l2_bytes > 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            miss_fraction = np.where(
                l2_bytes_positive, dram_bytes / l2_bytes, 0.0
            )
        chain_concurrency = np.maximum(
            1.0, active_cus * waves_per_cu
        )
        l2_latency = uarch.l2_latency_cycles / engine_hz

        def exposed(dram_latency):
            mean_latency = (
                miss_fraction * dram_latency
                + (1.0 - miss_fraction) * l2_latency
            )
            return dependent * mean_latency / chain_concurrency

        # Pass 1: unloaded queues (utilisation 0 -> no stretch).
        latency_s = exposed(l2_time + memory_side / (1.0 - 0.0))

        first_pass_max = _chain_max(
            compute_s, salu_s, lds_s, l2_s, dram_s, latency_s
        )
        refine = (first_pass_max > 0.0) & dram_positive
        if np.any(refine):
            with np.errstate(divide="ignore", invalid="ignore"):
                utilisation = np.minimum(
                    1.0, (dram_bytes / achieved_bw) / first_pass_max
                )
            utilisation = np.where(refine, utilisation, 0.0)
            bounded = np.minimum(
                utilisation, 1.0 - 1.0 / MAX_QUEUE_STRETCH
            )
            loaded = l2_time + memory_side / (1.0 - bounded)
            latency_s = np.where(refine, exposed(loaded), latency_s)

        # --- Serial additions ------------------------------------------
        # Zero atomic traffic or contention zeroes ``serialised`` and
        # the whole term, matching the scalar guard exactly.
        contention = col(pack.ch("atomic_contention"))
        serialised = (
            items * col(pack.ch("atomic_ops_per_item")) * contention
        )
        concurrency_growth = 1.0 + ATOMIC_CONCURRENCY_SLOPE * (
            contention * (active_cus - 1) / 43.0
        )
        cycles = serialised * ATOMIC_SERIAL_CYCLES * concurrency_growth
        atomic_s = cycles / engine_hz

        barrier_s = (
            col(pack.num_workgroups)
            * col(pack.ch("barriers_per_workgroup"))
            * BARRIER_CYCLES
            / engine_hz
            / resident_total
        )
        launch_s = us_to_seconds(col(pack.ch("launch_overhead_us")))

        # --- Combination (quantised local peak vs shared peak) ---------
        local_peak = _chain_max(compute_s, salu_s, lds_s, latency_s)
        shared_peak = np.maximum(l2_s, dram_s)
        dominant = np.maximum(local_peak * quantisation, shared_peak)
        overlap_sum = (
            ((((compute_s + salu_s) + lds_s) + l2_s) + dram_s) + latency_s
        )
        overlap_max = np.maximum(local_peak, shared_peak)
        spill = NON_OVERLAP_FRACTION * (overlap_sum - overlap_max)
        parallel_s = dominant + spill
        time_s = parallel_s + atomic_s + barrier_s + launch_s

        time_s = _materialise(time_s, shape)
        items_per_second = col(pack.geometry["global_size"]) / time_s

        return StudyGridResult(
            kernel_names=pack.names,
            time_s=time_s,
            items_per_second=items_per_second,
            occupancy=occupancy,
            l2_hit_rate=caches.l2_hit_rate,
            dram_bytes=dram_bytes.reshape(n_kernels, n_cu),
            global_size=pack.geometry["global_size"].copy(),
        )

    def _state(self, uarch: Microarchitecture) -> "_UarchState":
        # Keyed by value, not id(): chunked campaigns deserialise a
        # fresh (equal) Microarchitecture per chunk, and an id() key
        # would rebuild cache/memory state for every one of them.
        if uarch not in self._uarch_states:
            self._uarch_states[uarch] = _UarchState(
                cache_model=CacheModel(uarch),
                memory_model=MemoryModel(
                    HardwareConfig(
                        cu_count=1,
                        engine_mhz=1.0,
                        memory_mhz=1.0,
                        uarch=uarch,
                    )
                ),
            )
        return self._uarch_states[uarch]

    def _cache_model(self, uarch: Microarchitecture) -> CacheModel:
        return self._state(uarch).cache_model


@dataclass(frozen=True)
class _UarchState:
    """Per-microarchitecture derived state, built once and reused.

    ``bandwidth_efficiency`` reads no clock or CU field of its config,
    so one placeholder :class:`HardwareConfig` serves every grid point
    of every space on this uarch.
    """

    cache_model: CacheModel
    memory_model: MemoryModel


def _chain_max(first, *rest):
    """Elementwise maximum of several broadcastable arrays."""
    result = first
    for term in rest:
        result = np.maximum(result, term)
    return result


def _materialise(value, shape) -> np.ndarray:
    """Broadcast *value* to *shape* as a fresh contiguous array."""
    return np.ascontiguousarray(
        np.broadcast_to(np.asarray(value, dtype=np.float64), shape)
    )
