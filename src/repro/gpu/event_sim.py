"""Coarse-grained discrete-event simulator (workgroup granularity).

The analytical :class:`~repro.gpu.interval_model.IntervalModel` assumes
a perfectly balanced, steady-state machine. This engine relaxes that:
it dispatches individual workgroups onto CU slots, recomputes shared-
resource shares as residency changes, and injects deterministic
per-workgroup imbalance. It exists to *cross-check* the analytical
model's scaling shapes (the two engines must agree on the sign of every
axis response — see ``tests/gpu/test_engine_agreement.py``), and to
capture dynamic effects the interval model folds into constants:

* dispatch imbalance and ragged tails,
* residency-dependent DRAM shares during ramp-up/drain,
* cold-cache warmup for the first workgroup wave on each CU.

It is ~100x slower than the interval model, so the full 891-point sweep
uses the analytical engine and the event engine validates samples.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Tuple

from repro.gpu.caches import CacheModel
from repro.gpu.config import HardwareConfig
from repro.gpu.dispatch import plan_dispatch
from repro.gpu.engine import EVENT_DESCRIPTOR, EngineDescriptor
from repro.gpu.interval_model import REQUEST_BYTES
from repro.gpu.memory import MemoryModel
from repro.gpu.occupancy import compute_occupancy
from repro.kernels.kernel import Kernel
from repro.units import us_to_seconds

#: Relative amplitude of the deterministic per-workgroup imbalance.
IMBALANCE_AMPLITUDE = 0.06

#: Cold-cache inflation applied to each CU's first workgroup.
WARMUP_FACTOR = 1.25


def _imbalance(workgroup_index: int) -> float:
    """Deterministic per-workgroup runtime multiplier in [1-a, 1+a].

    A cheap integer hash spreads workgroup indices over the interval so
    repeated runs are identical (no RNG) while adjacent workgroups
    still differ.
    """
    h = (workgroup_index * 2654435761) & 0xFFFFFFFF
    unit = h / 0xFFFFFFFF
    return 1.0 + IMBALANCE_AMPLITUDE * (2.0 * unit - 1.0)


@dataclass(frozen=True)
class TimelineEntry:
    """One workgroup's execution record (timeline mode only)."""

    workgroup: int
    cu: int
    start_s: float
    finish_s: float

    @property
    def duration_s(self) -> float:
        """Service time of this workgroup."""
        return self.finish_s - self.start_s


@dataclass(frozen=True)
class EventSimResult:
    """Outcome of one event-driven kernel simulation."""

    kernel_name: str
    config: HardwareConfig
    time_s: float
    global_size: int
    workgroups_executed: int
    timeline: Tuple[TimelineEntry, ...] = ()

    @property
    def items_per_second(self) -> float:
        """Throughput in work-items per second."""
        return self.global_size / self.time_s

    def cu_mean_residency(self) -> List[float]:
        """Per-CU mean resident-workgroup count (timeline mode only).

        Each CU hosts several workgroups concurrently, so this is
        workgroup-seconds over the makespan — e.g. 5.2 means the CU
        averaged 5.2 resident workgroups.
        """
        if not self.timeline:
            return []
        makespan = max(entry.finish_s for entry in self.timeline)
        cu_count = max(entry.cu for entry in self.timeline) + 1
        load = [0.0] * cu_count
        for entry in self.timeline:
            load[entry.cu] += entry.duration_s
        return [l / makespan for l in load]

    def load_imbalance(self) -> float:
        """Max-over-mean CU load (1.0 = perfectly balanced)."""
        residency = self.cu_mean_residency()
        if not residency:
            return 1.0
        mean = sum(residency) / len(residency)
        return max(residency) / mean


class EventSimulator:
    """Workgroup-granularity discrete-event execution engine.

    Registered as the ``"event"`` timing engine: point-capable only.
    There is no batch formulation of the event loop, so grid requests
    through the facade degrade to the generic point loop and study
    requests are refused (the sweep layer falls back to per-kernel
    grids).
    """

    supports_point = True
    supports_grid = False
    supports_study = False

    def descriptor(self) -> EngineDescriptor:
        """Stable engine identity (its own ``event`` family)."""
        return EVENT_DESCRIPTOR

    def simulate(
        self,
        kernel: Kernel,
        config: HardwareConfig,
        record_timeline: bool = False,
    ) -> EventSimResult:
        """Simulate *kernel* on *config* workgroup by workgroup.

        With *record_timeline*, the result carries one
        :class:`TimelineEntry` per workgroup (start/finish/CU) — the
        data a Gantt view or a load-balance analysis needs. Timeline
        recording is O(workgroups) memory; leave it off for sweeps.
        """
        uarch = config.uarch
        geometry = kernel.geometry
        occupancy = compute_occupancy(geometry, kernel.resources, uarch)
        dispatch = plan_dispatch(geometry, occupancy, config.cu_count)

        num_wgs = geometry.num_workgroups
        active_cus = dispatch.active_cus
        slots_per_cu = occupancy.workgroups_per_cu

        base_wg_time = self._steady_state_wg_time(
            kernel, config, active_cus, slots_per_cu
        )
        serial_s = self._serial_time(kernel, config, active_cus)

        # Event loop: a min-heap of workgroup completion times plus a
        # per-CU free-slot count. Dispatch is greedy round-robin.
        free_slots = [slots_per_cu] * active_cus
        warm = [False] * active_cus
        completions: List[tuple] = []  # (finish_time, cu_index)
        timeline: List[TimelineEntry] = []
        next_wg = 0
        now = 0.0
        last_finish = 0.0

        def dispatch_onto(cu: int, when: float) -> None:
            nonlocal next_wg
            duration = base_wg_time * _imbalance(next_wg)
            if not warm[cu]:
                duration *= WARMUP_FACTOR
                warm[cu] = True
            heapq.heappush(completions, (when + duration, cu))
            if record_timeline:
                timeline.append(
                    TimelineEntry(
                        workgroup=next_wg,
                        cu=cu,
                        start_s=when,
                        finish_s=when + duration,
                    )
                )
            free_slots[cu] -= 1
            next_wg += 1

        # Initial fill.
        for cu in range(active_cus):
            while free_slots[cu] > 0 and next_wg < num_wgs:
                dispatch_onto(cu, now)

        while completions:
            now, cu = heapq.heappop(completions)
            last_finish = now
            free_slots[cu] += 1
            if next_wg < num_wgs:
                dispatch_onto(cu, now)

        launch_s = us_to_seconds(kernel.characteristics.launch_overhead_us)
        total_s = launch_s + last_finish + serial_s
        return EventSimResult(
            kernel_name=kernel.full_name,
            config=config,
            time_s=total_s,
            global_size=geometry.global_size,
            workgroups_executed=num_wgs,
            timeline=tuple(timeline),
        )

    # ------------------------------------------------------------------
    # Per-workgroup steady-state service time
    # ------------------------------------------------------------------

    def _steady_state_wg_time(
        self, kernel: Kernel, config: HardwareConfig,
        active_cus: int, slots_per_cu: int,
    ) -> float:
        """Service time of one workgroup at full residency.

        Shared resources (DRAM, L2) are divided among all resident
        workgroups; per-CU resources (lanes, LDS) among the CU's own
        residents. The per-workgroup bottleneck rule mirrors the
        interval model so the engines share physics and differ only in
        schedule dynamics.
        """
        ch = kernel.characteristics
        geometry = kernel.geometry
        uarch = config.uarch
        items_per_wg = geometry.workgroup_size
        resident_total = active_cus * slots_per_cu

        caches = CacheModel(uarch).behaviour(kernel, active_cus, slots_per_cu)
        memory = MemoryModel(config)

        lane_ops = items_per_wg * ch.valu_ops_per_item / ch.simd_efficiency
        lane_share = uarch.lanes_per_cu * config.engine_hz / slots_per_cu
        compute_s = lane_ops / lane_share

        lds_bytes = items_per_wg * ch.lds_bytes_per_item
        lds_share = 128.0 * config.engine_hz / slots_per_cu
        lds_s = lds_bytes / lds_share if lds_bytes else 0.0

        issued = items_per_wg * ch.global_bytes_per_item
        l2_bytes = issued * (1.0 - caches.l1_hit_rate)
        dram_bytes = issued * caches.dram_fraction
        l2_share = config.peak_l2_bytes_per_sec / resident_total
        l2_s = l2_bytes / l2_share if l2_bytes else 0.0

        achieved_bw = memory.state(
            ch.coalescing_efficiency, ch.row_locality_sensitivity, active_cus
        ).achieved_bytes_per_sec
        waves_per_wg = geometry.waves_per_workgroup
        little_bw = (
            resident_total
            * waves_per_wg
            * ch.memory_parallelism
            * REQUEST_BYTES
            / memory.unloaded_miss_latency_s()
        )
        bw_share = min(achieved_bw, little_bw) / resident_total
        dram_s = dram_bytes / bw_share if dram_bytes else 0.0

        latency_s = 0.0
        if ch.dependent_access_fraction > 0.0 and l2_bytes > 0.0:
            requests = l2_bytes / REQUEST_BYTES
            dependent = requests * ch.dependent_access_fraction
            miss_fraction = dram_bytes / l2_bytes
            mean_latency = (
                miss_fraction * memory.loaded_miss_latency_s(0.5)
                + (1.0 - miss_fraction)
                * uarch.l2_latency_cycles
                / config.engine_hz
            )
            latency_s = dependent * mean_latency / waves_per_wg

        barrier_s = (
            ch.barriers_per_workgroup * 128.0 / config.engine_hz
        )
        return max(compute_s, lds_s, l2_s, dram_s, latency_s) + barrier_s

    @staticmethod
    def _serial_time(
        kernel: Kernel, config: HardwareConfig, active_cus: int
    ) -> float:
        """Globally serialised atomic time (identical to interval model)."""
        ch = kernel.characteristics
        if ch.atomic_ops_per_item == 0.0 or ch.atomic_contention == 0.0:
            return 0.0
        items = float(kernel.geometry.global_size)
        serialised = items * ch.atomic_ops_per_item * ch.atomic_contention
        growth = 1.0 + 0.6 * ch.atomic_contention * (active_cus - 1) / 43.0
        return serialised * 190.0 * growth / config.engine_hz
