"""Reference product descriptions.

The paper frames its sweep as spanning "small, embedded designs to
large, high-powered discrete cards" by fusing CUs and re-clocking one
physical Hawaii-class GPU. These presets name the interesting corners
of that space so examples and tests can speak in product terms.
"""

from __future__ import annotations

from typing import Dict

from repro.gpu.config import HardwareConfig
from repro.gpu.dvfs import ENGINE_DOMAIN, MEMORY_DOMAIN

#: Full-size discrete card (FirePro W9100-like): 44 CUs, max clocks.
W9100_LIKE = HardwareConfig(cu_count=44, engine_mhz=1000.0, memory_mhz=1250.0)

#: Mid-range discrete configuration: half the CUs, high clocks.
MIDRANGE = HardwareConfig(cu_count=24, engine_mhz=900.0, memory_mhz=1112.5)

#: APU-like configuration: few CUs, modest clocks, thin memory.
APU_LIKE = HardwareConfig(cu_count=8, engine_mhz=600.0, memory_mhz=425.0)

#: Embedded corner: the smallest point of the swept space.
EMBEDDED = HardwareConfig(
    cu_count=4,
    engine_mhz=ENGINE_DOMAIN.min_mhz,
    memory_mhz=MEMORY_DOMAIN.min_mhz,
)

#: The base (reference) configuration scaling curves are normalised to.
BASE_CONFIG = EMBEDDED

#: All presets by name, for CLI/examples lookup.
PRODUCTS: Dict[str, HardwareConfig] = {
    "w9100": W9100_LIKE,
    "midrange": MIDRANGE,
    "apu": APU_LIKE,
    "embedded": EMBEDDED,
}


def product(name: str) -> HardwareConfig:
    """Look up a preset by name (case-insensitive).

    Raises ``KeyError`` with the available names when unknown.
    """
    key = name.lower()
    if key not in PRODUCTS:
        raise KeyError(
            f"unknown product {name!r}; available: {sorted(PRODUCTS)}"
        )
    return PRODUCTS[key]
