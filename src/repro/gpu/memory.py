"""DRAM subsystem model: bandwidth efficiency and loaded latency.

Two properties of real GDDR5 systems drive the paper's "non-obvious"
scaling classes and are modelled explicitly:

* **Achieved bandwidth is pattern- and contention-dependent.** Peak
  bandwidth scales with the memory clock, but the fraction of peak a
  kernel achieves depends on coalescing and on how many CUs interleave
  independent streams at the controller (row-buffer locality loss).
  Kernels with high ``row_locality_sensitivity`` lose efficiency as CUs
  are added — the second inverse-CU mechanism after L2 thrash.

* **Latency has a clock-invariant component.** Total miss latency is
  L2 pipeline cycles (engine clock) + DRAM core cycles (memory clock)
  + a fixed controller/PHY time. Raising either clock cannot shrink the
  fixed part, so dependence-chain kernels plateau even as both knobs
  max out — exactly the plateau class the abstract describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.config import HardwareConfig
from repro.units import ns_to_seconds

#: Exponent controlling how fast row-buffer locality degrades with the
#: number of interleaved CU streams (efficiency ~ cus^-(sensitivity*K)).
ROW_LOCALITY_EXPONENT = 0.35

#: Efficiency floor: even pathological interleavings keep some locality.
MIN_BANDWIDTH_EFFICIENCY = 0.05

#: Queueing knee: achieved latency grows as utilisation approaches 1.
#: Capped so saturated kernels see a finite (bandwidth-bound) latency.
MAX_QUEUE_STRETCH = 2.0


@dataclass(frozen=True)
class MemorySystemState:
    """Resolved DRAM behaviour for one kernel at one configuration."""

    peak_bytes_per_sec: float
    efficiency: float
    unloaded_latency_s: float

    @property
    def achieved_bytes_per_sec(self) -> float:
        """Sustainable DRAM bandwidth for this access pattern."""
        return self.peak_bytes_per_sec * self.efficiency


class MemoryModel:
    """DRAM bandwidth/latency model for one hardware configuration."""

    def __init__(self, config: HardwareConfig):
        self._config = config

    @property
    def config(self) -> HardwareConfig:
        """The configuration this model describes."""
        return self._config

    def bandwidth_efficiency(
        self, coalescing_efficiency: float, row_locality_sensitivity: float,
        active_cus: int,
    ) -> float:
        """Fraction of peak DRAM bandwidth a kernel sustains.

        Starts from the kernel's single-stream coalescing efficiency and
        applies a power-law penalty for stream interleaving across CUs.
        Insensitive kernels (sensitivity 0) keep their efficiency at any
        CU count; fully sensitive kernels lose ~70% of it by 44 CUs.
        """
        if active_cus < 1:
            raise ValueError(f"active_cus must be >= 1, got {active_cus}")
        exponent = row_locality_sensitivity * ROW_LOCALITY_EXPONENT
        interleave_penalty = float(active_cus) ** (-exponent)
        efficiency = coalescing_efficiency * interleave_penalty
        return max(MIN_BANDWIDTH_EFFICIENCY, min(1.0, efficiency))

    def bandwidth_efficiency_batch(
        self,
        coalescing_efficiency: np.ndarray,
        row_locality_sensitivity: np.ndarray,
        active_cus: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`bandwidth_efficiency`.

        *coalescing_efficiency* and *row_locality_sensitivity* are
        ``(K,)`` per-kernel arrays; *active_cus* is the ``(K, C)``
        active-CU matrix. Same power-law and clamps as the scalar
        method, elementwise. NumPy's SIMD ``pow`` disagrees with
        libm's by 1 ulp on some inputs, so the power law is evaluated
        through Python's ``pow`` on the (few) unique (CU, exponent)
        pairs — bit-identical to the scalar path at negligible cost.
        """
        if np.any(active_cus < 1):
            raise ValueError(
                f"active_cus must be >= 1, got {int(active_cus.min())}"
            )
        exponent = (
            row_locality_sensitivity.reshape(-1, 1)
            * ROW_LOCALITY_EXPONENT
        )
        active_f = active_cus.astype(np.float64)
        pairs = np.stack(
            [
                active_f.ravel(),
                np.broadcast_to(exponent, active_f.shape).ravel(),
            ],
            axis=1,
        )
        unique, inverse = np.unique(pairs, axis=0, return_inverse=True)
        powered = np.asarray(
            [float(base) ** (-float(exp)) for base, exp in unique]
        )
        interleave_penalty = powered[inverse].reshape(active_f.shape)
        efficiency = (
            coalescing_efficiency.reshape(-1, 1) * interleave_penalty
        )
        return np.maximum(
            MIN_BANDWIDTH_EFFICIENCY, np.minimum(1.0, efficiency)
        )

    def unloaded_miss_latency_s(self) -> float:
        """L2-miss-to-DRAM latency at zero load, in seconds.

        Three additive terms: L2 pipeline (engine-clock cycles), DRAM
        core (memory-clock cycles), and the clock-invariant controller/
        PHY time. Only the first two respond to the DVFS knobs.
        """
        uarch = self._config.uarch
        l2_time = uarch.l2_latency_cycles / self._config.engine_hz
        dram_time = uarch.dram_latency_cycles / self._config.memory_hz
        fixed_time = ns_to_seconds(uarch.dram_fixed_latency_ns)
        return l2_time + dram_time + fixed_time

    def loaded_miss_latency_s(self, utilisation: float) -> float:
        """Miss latency under load, in seconds.

        Queueing happens at the DRAM controller, so the bounded
        M/D/1-style stretch (``1/(1 - utilisation)`` capped at
        :data:`MAX_QUEUE_STRETCH`) applies only to the memory-side
        terms (DRAM interface cycles + fixed controller time); the
        engine-domain L2 pipeline is unaffected. The cap reflects that
        saturated kernels become bandwidth-bound (modelled separately)
        rather than seeing unbounded queues.
        """
        if utilisation < 0.0:
            raise ValueError(f"utilisation must be >= 0, got {utilisation}")
        uarch = self._config.uarch
        l2_time = uarch.l2_latency_cycles / self._config.engine_hz
        memory_side = (
            uarch.dram_latency_cycles / self._config.memory_hz
            + ns_to_seconds(uarch.dram_fixed_latency_ns)
        )
        bounded = min(utilisation, 1.0 - 1.0 / MAX_QUEUE_STRETCH)
        return l2_time + memory_side / (1.0 - bounded)

    def state(
        self, coalescing_efficiency: float, row_locality_sensitivity: float,
        active_cus: int,
    ) -> MemorySystemState:
        """Bundle peak bandwidth, efficiency and unloaded latency."""
        return MemorySystemState(
            peak_bytes_per_sec=self._config.peak_dram_bytes_per_sec,
            efficiency=self.bandwidth_efficiency(
                coalescing_efficiency, row_locality_sensitivity, active_cus
            ),
            unloaded_latency_s=self.unloaded_miss_latency_s(),
        )
