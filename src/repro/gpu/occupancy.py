"""GCN wavefront-occupancy calculator.

Occupancy — how many wavefronts a compute unit can keep resident —
determines how much memory latency the machine can hide. It is limited
by whichever resource runs out first:

* architectural wave slots (10 per SIMD, 40 per CU),
* vector registers (256 VGPRs per SIMD, shared by its resident waves),
* scalar registers,
* LDS (64 KiB per CU, allocated per *workgroup*),
* the per-CU workgroup cap (16 on GCN).

The calculator mirrors the vendor occupancy rules closely enough that
register- or LDS-heavy kernels in the suite catalog land at realistic
occupancies, which in turn shapes their latency-hiding and therefore
their frequency/bandwidth plateaus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.gpu.config import Microarchitecture
from repro.kernels.kernel import Kernel, LaunchGeometry, ResourceUsage

if TYPE_CHECKING:  # pack imports nothing from here; avoid a cycle anyway
    from repro.kernels.pack import KernelPack

#: Resource names in the scalar limiter dict's insertion order; the
#: batch path's argmin tie-breaking must match ``min(limits, ...)``.
OCCUPANCY_LIMIT_ORDER = (
    "wave_slots", "workgroup_slots", "vgpr", "sgpr", "lds",
)


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy of one kernel on one CU, with the limiting resource."""

    waves_per_cu: int
    workgroups_per_cu: int
    limiter: str
    #: Architectural wave-slot cap of the uarch the result was computed
    #: on (40 on GCN, 64 on SM-style parts).
    wave_slot_cap: int = 40

    @property
    def occupancy_fraction(self) -> float:
        """Waves resident relative to the architectural wave-slot cap."""
        return self.waves_per_cu / self.wave_slot_cap


def waves_limited_by_vgprs(vgprs: int, uarch: Microarchitecture) -> int:
    """Waves per SIMD permitted by vector-register pressure.

    Registers allocate in granules of ``uarch.vgpr_granule`` (4 on
    GCN); a wave using ``v`` registers allows
    ``floor(vgprs_per_simd / ceil_granule(v))`` resident waves on its
    SIMD, capped at the architectural slot count.
    """
    granule = uarch.vgpr_granule
    allocated = math.ceil(vgprs / granule) * granule
    return min(uarch.max_waves_per_simd, uarch.vgprs_per_simd // allocated)


def waves_limited_by_sgprs(sgprs: int, uarch: Microarchitecture) -> int:
    """Waves per SIMD permitted by scalar-register pressure.

    SGPRs allocate in granules of ``uarch.sgpr_granule`` (8 on GCN)
    from a per-SIMD pool (``sgprs_per_cu`` names the per-SIMD pool for
    simplicity). SIMT-style families without a scalar file model this
    with a pool large enough that it never binds.
    """
    granule = uarch.sgpr_granule
    allocated = math.ceil(sgprs / granule) * granule
    return min(uarch.max_waves_per_simd, uarch.sgprs_per_cu // allocated)


def workgroups_limited_by_lds(
    lds_bytes_per_workgroup: int, uarch: Microarchitecture
) -> int:
    """Workgroups per CU permitted by LDS capacity.

    A workgroup using no LDS is only bounded by the architectural
    workgroup cap.
    """
    if lds_bytes_per_workgroup == 0:
        return uarch.max_workgroups_per_cu
    if lds_bytes_per_workgroup > uarch.lds_bytes_per_cu:
        raise WorkloadError(
            f"workgroup LDS usage {lds_bytes_per_workgroup} exceeds the "
            f"{uarch.lds_bytes_per_cu}-byte CU capacity "
            f"({uarch.label} uarch)"
        )
    return min(
        uarch.max_workgroups_per_cu,
        uarch.lds_bytes_per_cu // lds_bytes_per_workgroup,
    )


def compute_occupancy(
    geometry: LaunchGeometry,
    resources: ResourceUsage,
    uarch: Microarchitecture,
) -> OccupancyResult:
    """Resident waves/workgroups per CU and the binding resource.

    The result accounts for workgroup granularity: waves from one
    workgroup must be co-resident, so the final wave count is
    ``workgroups_per_cu * waves_per_workgroup``.
    """
    waves_per_wg = geometry.waves_per_workgroup

    # Ordered so that on ties the architectural caps are reported as
    # the limiter rather than a resource that is not actually in use
    # (``min`` keeps the first of equal values).
    limits = {
        "wave_slots": uarch.max_waves_per_cu,
        "workgroup_slots": uarch.max_workgroups_per_cu * waves_per_wg,
        "vgpr": waves_limited_by_vgprs(resources.vgprs, uarch)
        * uarch.simds_per_cu,
        "sgpr": waves_limited_by_sgprs(resources.sgprs, uarch)
        * uarch.simds_per_cu,
        "lds": workgroups_limited_by_lds(
            resources.lds_bytes_per_workgroup, uarch
        )
        * waves_per_wg,
    }

    limiter = min(limits, key=limits.__getitem__)
    wave_cap = limits[limiter]

    # Round down to whole workgroups; a CU must host at least one
    # workgroup (GCN guarantees forward progress for any legal launch).
    workgroups = max(1, wave_cap // waves_per_wg)
    workgroups = min(workgroups, uarch.max_workgroups_per_cu)
    waves = workgroups * waves_per_wg

    return OccupancyResult(
        waves_per_cu=waves,
        workgroups_per_cu=workgroups,
        limiter=limiter,
        wave_slot_cap=uarch.max_waves_per_cu,
    )


def kernel_occupancy(
    kernel: Kernel, uarch: Microarchitecture
) -> OccupancyResult:
    """Convenience wrapper taking a :class:`~repro.kernels.kernel.Kernel`."""
    return compute_occupancy(kernel.geometry, kernel.resources, uarch)


@dataclass(frozen=True)
class BatchOccupancy:
    """Occupancy of every packed kernel on one microarchitecture.

    Arrays are indexed in pack order; ``limiters`` holds the binding
    resource name per kernel with the same tie-breaking as the scalar
    calculator (first entry of :data:`OCCUPANCY_LIMIT_ORDER` wins).
    """

    waves_per_cu: np.ndarray
    workgroups_per_cu: np.ndarray
    limiters: Tuple[str, ...]
    #: Architectural wave-slot cap of the computed-on uarch.
    wave_slot_cap: int = 40

    @property
    def occupancy_fraction(self) -> np.ndarray:
        """Per-kernel waves resident relative to the wave-slot cap."""
        return self.waves_per_cu / self.wave_slot_cap

    def result(self, index: int) -> OccupancyResult:
        """The scalar :class:`OccupancyResult` for one packed kernel."""
        return OccupancyResult(
            waves_per_cu=int(self.waves_per_cu[index]),
            workgroups_per_cu=int(self.workgroups_per_cu[index]),
            limiter=self.limiters[index],
            wave_slot_cap=self.wave_slot_cap,
        )


def compute_occupancy_batch(
    pack: "KernelPack", uarch: Microarchitecture
) -> BatchOccupancy:
    """Vectorized :func:`compute_occupancy` over a whole kernel pack.

    All limits are integer arithmetic, so the batch result is *exactly*
    the scalar result for every kernel — the study engine relies on
    this to stay bit-compatible with the per-kernel path.
    """
    waves_per_wg = pack.waves_per_workgroup
    vgprs = pack.resources["vgprs"]
    sgprs = pack.resources["sgprs"]
    lds = pack.resources["lds_bytes_per_workgroup"]

    over = lds > uarch.lds_bytes_per_cu
    if np.any(over):
        index = int(np.argmax(over))
        raise WorkloadError(
            f"workgroup LDS usage {int(lds[index])} exceeds the "
            f"{uarch.lds_bytes_per_cu}-byte CU capacity "
            f"(kernel {pack.names[index]}, {uarch.label} uarch)"
        )

    # Same granule arithmetic as the scalar helpers; ``-(-a // b)`` is
    # integer ceil, identical to math.ceil on these magnitudes.
    vgpr_alloc = -(-vgprs // uarch.vgpr_granule) * uarch.vgpr_granule
    sgpr_alloc = -(-sgprs // uarch.sgpr_granule) * uarch.sgpr_granule
    vgpr_waves = np.minimum(
        uarch.max_waves_per_simd, uarch.vgprs_per_simd // vgpr_alloc
    )
    sgpr_waves = np.minimum(
        uarch.max_waves_per_simd, uarch.sgprs_per_cu // sgpr_alloc
    )
    lds_workgroups = np.where(
        lds == 0,
        uarch.max_workgroups_per_cu,
        np.minimum(
            uarch.max_workgroups_per_cu,
            uarch.lds_bytes_per_cu // np.maximum(lds, 1),
        ),
    )

    # Rows stacked in OCCUPANCY_LIMIT_ORDER; argmin keeps the first of
    # equal minima, matching the scalar dict's ``min`` tie-breaking.
    limits = np.stack(
        [
            np.broadcast_to(
                np.int64(uarch.max_waves_per_cu), waves_per_wg.shape
            ),
            uarch.max_workgroups_per_cu * waves_per_wg,
            vgpr_waves * uarch.simds_per_cu,
            sgpr_waves * uarch.simds_per_cu,
            lds_workgroups * waves_per_wg,
        ]
    )
    limiter_index = np.argmin(limits, axis=0)
    wave_cap = np.min(limits, axis=0)

    workgroups = np.maximum(1, wave_cap // waves_per_wg)
    workgroups = np.minimum(workgroups, uarch.max_workgroups_per_cu)
    waves = workgroups * waves_per_wg

    return BatchOccupancy(
        waves_per_cu=waves,
        workgroups_per_cu=workgroups,
        limiters=tuple(
            OCCUPANCY_LIMIT_ORDER[i] for i in limiter_index
        ),
        wave_slot_cap=uarch.max_waves_per_cu,
    )
