"""GCN-class GPU performance-model substrate.

This subpackage replaces the paper's physical AMD FirePro W9100 testbed
(see DESIGN.md for the substitution record). It models a configurable
GPU — compute-unit count, engine clock, memory clock — with the
bottleneck physics needed to reproduce every scaling class the paper
catalogues.
"""

from repro.gpu.caches import CacheBehaviour, CacheModel
from repro.gpu.config import HAWAII_UARCH, HardwareConfig, Microarchitecture
from repro.gpu.counters import (
    CounterReport,
    collect_counters,
    counters_from_result,
)
from repro.gpu.dispatch import (
    BatchDispatch,
    DispatchPlan,
    plan_dispatch,
    plan_dispatch_batch,
)
from repro.gpu.dvfs import (
    CU_SETTINGS,
    ENGINE_DOMAIN,
    MEMORY_DOMAIN,
    FrequencyDomain,
    legal_cu_counts,
    snap_cu_count,
)
from repro.gpu.engine import (
    EngineCapabilities,
    EngineDescriptor,
    EngineRegistration,
    GridSpace,
    TimingEngine,
    engine_calls,
    engine_fingerprint,
    engine_names,
    get_engine,
    list_engines,
    register_engine,
    reset_engine_calls,
    unregister_engine,
)
from repro.gpu.event_sim import EventSimResult, EventSimulator
from repro.gpu.caches import BatchCacheBehaviour
from repro.gpu.interval_batch import (
    BatchIntervalModel,
    GridBreakdown,
    KernelGridResult,
    StudyGridResult,
)
from repro.gpu.interval_model import (
    IntervalBreakdown,
    IntervalModel,
    KernelRunResult,
)
from repro.gpu.memory import MemoryModel, MemorySystemState
from repro.gpu.occupancy import (
    BatchOccupancy,
    OccupancyResult,
    compute_occupancy,
    compute_occupancy_batch,
    kernel_occupancy,
)
from repro.gpu.products import (
    APU_LIKE,
    BASE_CONFIG,
    EMBEDDED,
    MIDRANGE,
    PRODUCTS,
    W9100_LIKE,
    product,
)
from repro.gpu.simulator import (
    Engine,
    GpuSimulator,
    GridMode,
    engine_call_count,
    reset_engine_call_count,
    simulate,
)

__all__ = [
    "APU_LIKE",
    "BASE_CONFIG",
    "BatchCacheBehaviour",
    "BatchDispatch",
    "BatchIntervalModel",
    "BatchOccupancy",
    "CU_SETTINGS",
    "CacheBehaviour",
    "CacheModel",
    "CounterReport",
    "DispatchPlan",
    "EMBEDDED",
    "ENGINE_DOMAIN",
    "Engine",
    "EngineCapabilities",
    "EngineDescriptor",
    "EngineRegistration",
    "EventSimResult",
    "EventSimulator",
    "FrequencyDomain",
    "GpuSimulator",
    "GridBreakdown",
    "GridMode",
    "GridSpace",
    "TimingEngine",
    "HAWAII_UARCH",
    "HardwareConfig",
    "IntervalBreakdown",
    "IntervalModel",
    "KernelGridResult",
    "KernelRunResult",
    "MEMORY_DOMAIN",
    "MIDRANGE",
    "MemoryModel",
    "MemorySystemState",
    "Microarchitecture",
    "OccupancyResult",
    "PRODUCTS",
    "StudyGridResult",
    "W9100_LIKE",
    "collect_counters",
    "compute_occupancy",
    "compute_occupancy_batch",
    "counters_from_result",
    "engine_call_count",
    "engine_calls",
    "engine_fingerprint",
    "engine_names",
    "get_engine",
    "kernel_occupancy",
    "legal_cu_counts",
    "list_engines",
    "plan_dispatch",
    "plan_dispatch_batch",
    "product",
    "register_engine",
    "reset_engine_call_count",
    "reset_engine_calls",
    "simulate",
    "snap_cu_count",
    "unregister_engine",
]
