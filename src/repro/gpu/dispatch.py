"""Workgroup dispatch model.

The hardware workgroup dispatcher places workgroups onto compute units
round-robin. Two of its properties shape CU-count scaling:

* **Limited parallelism** — a launch with fewer workgroups than CUs
  cannot use the extra CUs at all. Several classic benchmark kernels
  (e.g. small diagonal waves in Needleman-Wunsch) launch single-digit
  workgroup counts, which is the mechanism behind the paper's finding
  that "a number of current benchmark suites do not scale to modern GPU
  sizes".
* **Tail quantisation** — execution proceeds in batches of
  ``active_cus * workgroups_per_cu`` resident workgroups; a final
  partial batch runs at low utilisation, producing stair-step CU
  scaling curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.gpu.occupancy import OccupancyResult
from repro.kernels.kernel import LaunchGeometry


@dataclass(frozen=True)
class DispatchPlan:
    """How one launch spreads over the available CUs."""

    num_workgroups: int
    active_cus: int
    resident_workgroups_per_cu: int
    batches: int

    @property
    def resident_workgroups_total(self) -> int:
        """Workgroups simultaneously resident on the device."""
        return self.active_cus * self.resident_workgroups_per_cu

    @property
    def quantisation_factor(self) -> float:
        """Execution-time inflation from the partial final batch.

        The ideal (infinitely divisible) schedule takes
        ``num_workgroups / resident`` batch-times, where ``resident``
        is capped at the launch size (a device with spare workgroup
        slots is not slower for having them); the real schedule takes
        ``ceil`` of that. The ratio (>= 1) multiplies the
        throughput-limited portion of the kernel's runtime.
        """
        resident = min(self.resident_workgroups_total, self.num_workgroups)
        ideal_batches = self.num_workgroups / resident
        return self.batches / ideal_batches

    @property
    def cu_utilisation(self) -> float:
        """Fraction of provisioned CUs that ever receive work."""
        return self.active_cus / max(self.active_cus, 1)


def plan_dispatch(
    geometry: LaunchGeometry,
    occupancy: OccupancyResult,
    cu_count: int,
) -> DispatchPlan:
    """Build the dispatch plan for one launch on *cu_count* CUs."""
    if cu_count < 1:
        raise ValueError(f"cu_count must be >= 1, got {cu_count}")
    num_workgroups = geometry.num_workgroups
    active_cus = min(cu_count, num_workgroups)
    per_cu = occupancy.workgroups_per_cu
    batches = math.ceil(num_workgroups / (active_cus * per_cu))
    return DispatchPlan(
        num_workgroups=num_workgroups,
        active_cus=active_cus,
        resident_workgroups_per_cu=per_cu,
        batches=batches,
    )


@dataclass(frozen=True)
class BatchDispatch:
    """Dispatch plans for K kernels across C CU settings at once.

    Integer arrays are ``(K, C)``-shaped (kernel-major, matching the
    study lattice); ``quantisation_factor`` repeats the scalar
    :attr:`DispatchPlan.quantisation_factor` float arithmetic
    elementwise, so the batch values are exactly the scalar values.
    """

    num_workgroups: np.ndarray  # (K,)
    active_cus: np.ndarray  # (K, C)
    resident_workgroups_total: np.ndarray  # (K, C)
    batches: np.ndarray  # (K, C)
    quantisation_factor: np.ndarray  # (K, C)

    def plan(self, kernel_index: int, cu_index: int) -> DispatchPlan:
        """The scalar :class:`DispatchPlan` at one lattice point."""
        resident = int(
            self.resident_workgroups_total[kernel_index, cu_index]
        )
        active = int(self.active_cus[kernel_index, cu_index])
        return DispatchPlan(
            num_workgroups=int(self.num_workgroups[kernel_index]),
            active_cus=active,
            resident_workgroups_per_cu=resident // active,
            batches=int(self.batches[kernel_index, cu_index]),
        )


def plan_dispatch_batch(
    num_workgroups: np.ndarray,
    workgroups_per_cu: np.ndarray,
    cu_counts: np.ndarray,
) -> BatchDispatch:
    """Vectorized :func:`plan_dispatch` over (kernel, CU-count) pairs.

    *num_workgroups* and *workgroups_per_cu* are ``(K,)`` int64 arrays
    (one per packed kernel); *cu_counts* is the ``(C,)`` CU axis of the
    sweep. ``-(-a // b)`` is integer ceil, identical to the scalar
    ``math.ceil`` at launch-size magnitudes.
    """
    if np.any(cu_counts < 1):
        raise ValueError(
            f"cu_count must be >= 1, got {int(cu_counts.min())}"
        )
    wg = num_workgroups.reshape(-1, 1)
    per_cu = workgroups_per_cu.reshape(-1, 1)
    active_cus = np.minimum(cu_counts.reshape(1, -1), wg)
    batches = -(-wg // (active_cus * per_cu))
    resident_total = active_cus * per_cu
    resident = np.minimum(resident_total, wg)
    ideal_batches = wg / resident
    quantisation = batches / ideal_batches
    return BatchDispatch(
        num_workgroups=num_workgroups,
        active_cus=active_cus,
        resident_workgroups_total=resident_total,
        batches=batches,
        quantisation_factor=quantisation,
    )
