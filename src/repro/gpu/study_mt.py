"""Multi-core whole-study engine: kernel-axis tiles over a pool.

``BatchIntervalModel.simulate_study`` collapses the full 4-D
``(kernel, cu, engine, memory)`` study lattice into one set of NumPy
broadcasts, but it still runs on one core. :class:`StudyMTModel`
shards the lattice along the *kernel* axis across a persistent process
pool: every per-kernel quantity in the batch model (occupancy,
dispatch state, cache and DRAM efficiency, the interval sums) is an
elementwise function of the kernel row, so a contiguous row-slice of
the pack evaluates bit-identically to the same rows of the full pack —
the kernel-axis tiling invariant (``KernelPack.subset`` copies rows
verbatim, and ``tests/gpu/test_study_mt.py`` pins the bit-exactness).

Each worker writes its tile's ``time_s`` rows straight into a
preallocated ``multiprocessing.shared_memory`` segment — the PR 3
transport, now shared via :mod:`repro.shm` — so parent-side assembly
is a row copy out of the mapped buffer, not a pickle of ~2 MB of
float64 per tile. ``items_per_second`` is re-derived in the parent as
``global_size / time_s``, the exact expression (same operands, same
dtypes) the batch engine ends with, so the division commutes with
tiling bitwise.

Workers are supervised, never trusted: each tile result is awaited
with a timeout, and a hung, crashed, or killed worker fails its tile
visibly. The pool is then discarded (recreated lazily on the next
study) and the failed tile — plus any tiles not yet collected — is
evaluated serially in-process, so a mid-study worker death degrades
throughput but never the result. Environments where no pool or no
shared memory can be created at all degrade the same way.

Per-process state is built once per pool lifetime, not per tile: the
worker's :class:`BatchIntervalModel` (whose ``_state`` memo already
holds ``CacheModel``/``MemoryModel`` per microarchitecture) and its
attachment to the study's shared segment are module-level caches, so
the second and later tiles a worker evaluates reuse the first tile's
scratch state. Workers report their construction counters back with
every tile; ``last_stats.worker_models`` exposes them for the
memoization tests.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import shm
from repro.gpu.engine import (
    STUDY_MT_DESCRIPTOR,
    EngineDescriptor,
    GridSpace,
)
from repro.gpu.interval_batch import BatchIntervalModel, StudyGridResult
from repro.gpu.occupancy import BatchOccupancy
from repro.kernels.pack import KernelPack

#: Kernel-axis tiles submitted per worker: >1 so a fast worker picks
#: up another tile instead of idling behind the slowest.
DEFAULT_TILES_PER_WORKER = 2

#: How long to wait for one tile before declaring its worker wedged.
DEFAULT_TILE_TIMEOUT_S = 300.0

# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: One batch model per worker process, built on the first tile and
#: reused for every later tile — its ``_state`` memo keeps one
#: ``CacheModel``/``MemoryModel`` pair per microarchitecture alive for
#: the pool's whole lifetime.
_WORKER_MODEL: Optional[BatchIntervalModel] = None

#: Worker-side construction counters, reported with every tile result
#: so the parent can assert single construction per pool lifetime.
_WORKER_STATS = {"model_constructions": 0}

#: The worker's attachment to the current study's shared segment,
#: keyed by segment name: attach once, reuse for every tile of the
#: study, close when the next study brings a new segment.
_WORKER_SEGMENT: Dict[str, object] = {"name": None, "segment": None,
                                      "view": None}


def _worker_model() -> BatchIntervalModel:
    global _WORKER_MODEL
    if _WORKER_MODEL is None:
        _WORKER_MODEL = BatchIntervalModel()
        _WORKER_STATS["model_constructions"] += 1
    return _WORKER_MODEL


def _worker_view(shm_info: dict) -> Optional[np.ndarray]:
    """The mapped full-study array, attached at most once per segment."""
    if _WORKER_SEGMENT["name"] == shm_info["name"]:
        return _WORKER_SEGMENT["view"]
    old = _WORKER_SEGMENT["segment"]
    if old is not None:
        try:
            old.close()
        except Exception:
            pass
        _WORKER_SEGMENT.update(name=None, segment=None, view=None)
    attached = shm.attach_view(shm_info)
    if attached is None:
        return None
    segment, view = attached
    _WORKER_SEGMENT.update(
        name=shm_info["name"], segment=segment, view=view
    )
    return view


def _simulate_tile(payload: dict) -> dict:
    """Worker: evaluate one kernel-axis tile of the study.

    Returns a structured result instead of raising. The tile's
    ``time_s`` rows go into the shared segment when one is named and
    attachable; otherwise they ride back in the pickle. Everything
    else (occupancy, cache, DRAM rows) is small and always pickled.
    """
    if payload.get("kill"):
        # Chaos hook for the supervision tests: die the way a real
        # crashed worker does, with no exception to catch.
        os._exit(1)
    try:
        pack: KernelPack = payload["pack"]
        result = _worker_model().simulate_study(pack, payload["space"])
        shm_info = payload.get("shm")
        wrote = False
        if shm_info is not None:
            view = _worker_view(shm_info)
            if view is not None:
                offset = int(shm_info["offset"])
                view[offset:offset + result.time_s.shape[0]] = (
                    result.time_s
                )
                wrote = True
        return {
            "ok": True,
            "pid": os.getpid(),
            "model_constructions": _WORKER_STATS["model_constructions"],
            "time_s": None if wrote else result.time_s,
            "waves_per_cu": result.occupancy.waves_per_cu,
            "workgroups_per_cu": result.occupancy.workgroups_per_cu,
            "limiters": result.occupancy.limiters,
            "l2_hit_rate": result.l2_hit_rate,
            "dram_bytes": result.dram_bytes,
        }
    except Exception as exc:
        return {
            "ok": False,
            "pid": os.getpid(),
            "error": f"{type(exc).__name__}: {exc}",
        }


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


@dataclass
class StudyMTStats:
    """Counters describing the most recent :meth:`simulate_study`."""

    tiles: int = 0
    pool_workers: int = 0
    used_pool: bool = False
    shm_used: bool = False
    fallbacks: int = 0
    pool_unavailable: bool = False
    worker_errors: List[str] = field(default_factory=list)
    #: pid -> model constructions that worker has performed, as
    #: reported with its most recently collected tile.
    worker_models: Dict[int, int] = field(default_factory=dict)


class StudyMTModel:
    """Whole-study engine tiling the kernel axis across a process pool.

    Registered as ``study-mt`` in the ``interval`` family: point and
    per-kernel grid queries resolve to its family siblings, and its
    study results are bit-exact against ``interval-batch`` (and
    ``rtol=1e-12`` against the scalar oracle), so the two study
    engines are interchangeable everywhere but in wall-clock.
    """

    supports_point = False
    supports_grid = False
    supports_study = True

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        tiles_per_worker: int = DEFAULT_TILES_PER_WORKER,
        tile_timeout_s: float = DEFAULT_TILE_TIMEOUT_S,
        _chaos_kill_tiles: Tuple[int, ...] = (),
    ):
        self._workers = workers or max(
            1, multiprocessing.cpu_count() - 1
        )
        self._tiles_per_worker = max(1, tiles_per_worker)
        self._tile_timeout_s = tile_timeout_s
        # Test-only fault injection: tile indices whose first pool
        # attempt dies mid-study (serial fallback must still be exact).
        self._chaos_kill_tiles = frozenset(_chaos_kill_tiles)
        self._pool = None
        self._local_model: Optional[BatchIntervalModel] = None
        self._stats = StudyMTStats()

    def descriptor(self) -> EngineDescriptor:
        """Identity registered for this engine."""
        return STUDY_MT_DESCRIPTOR

    @property
    def workers(self) -> int:
        """Worker-process count the pool is sized for."""
        return self._workers

    @property
    def last_stats(self) -> StudyMTStats:
        """Supervision counters from the most recent study."""
        return self._stats

    def close(self) -> None:
        """Tear down the persistent pool (recreated lazily on use)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    # ------------------------------------------------------------------
    # Study evaluation
    # ------------------------------------------------------------------

    def simulate_study(
        self, pack: KernelPack, space: GridSpace
    ) -> StudyGridResult:
        """Evaluate the whole study, tiled along the kernel axis.

        Identical output to ``BatchIntervalModel.simulate_study`` on
        the same pack and space, whatever the pool does.
        """
        n_kernels = len(pack)
        n_cu = space.shape[0]
        shape = (n_kernels,) + tuple(space.shape)
        tiles = self._tile_bounds(n_kernels)
        stats = StudyMTStats(tiles=len(tiles), pool_workers=self._workers)
        self._stats = stats

        time_s = np.empty(shape, dtype=np.float64)
        l2_hit_rate = np.empty((n_kernels, n_cu), dtype=np.float64)
        dram_bytes = np.empty((n_kernels, n_cu), dtype=np.float64)
        waves_per_cu = np.empty(n_kernels, dtype=np.int64)
        workgroups_per_cu = np.empty(n_kernels, dtype=np.int64)
        limiters: List[str] = [""] * n_kernels

        def place(lo: int, hi: int, tile: dict) -> None:
            """Copy one tile's small arrays into the study rows."""
            waves_per_cu[lo:hi] = tile["waves_per_cu"]
            workgroups_per_cu[lo:hi] = tile["workgroups_per_cu"]
            limiters[lo:hi] = tile["limiters"]
            l2_hit_rate[lo:hi] = tile["l2_hit_rate"]
            dram_bytes[lo:hi] = tile["dram_bytes"]
            if tile["time_s"] is not None:
                time_s[lo:hi] = tile["time_s"]

        done = [False] * len(tiles)
        if len(tiles) > 1 and self._workers > 1:
            self._run_pool(pack, space, tiles, shape, time_s,
                           place, done, stats)

        for index, (lo, hi) in enumerate(tiles):
            if done[index]:
                continue
            # Serial tile: evaluated in-process with the memoized
            # local model, written straight into the preallocated
            # study arrays — the no-pool path and the fallback for
            # any tile the pool failed to deliver.
            result = self._local().simulate_study(
                pack.subset(lo, hi), space
            )
            time_s[lo:hi] = result.time_s
            l2_hit_rate[lo:hi] = result.l2_hit_rate
            dram_bytes[lo:hi] = result.dram_bytes
            waves_per_cu[lo:hi] = result.occupancy.waves_per_cu
            workgroups_per_cu[lo:hi] = (
                result.occupancy.workgroups_per_cu
            )
            limiters[lo:hi] = result.occupancy.limiters
            if stats.used_pool:
                stats.fallbacks += 1

        # The exact expression the batch engine ends with — int64
        # column over the float64 tensor — re-derived over the
        # assembled rows, so tiling commutes with the division bitwise.
        global_size = pack.geometry["global_size"]
        items_per_second = (
            global_size.reshape(n_kernels, 1, 1, 1) / time_s
        )
        return StudyGridResult(
            kernel_names=pack.names,
            time_s=time_s,
            items_per_second=items_per_second,
            occupancy=BatchOccupancy(
                waves_per_cu=waves_per_cu,
                workgroups_per_cu=workgroups_per_cu,
                limiters=tuple(limiters),
                wave_slot_cap=space.uarch.max_waves_per_cu,
            ),
            l2_hit_rate=l2_hit_rate,
            dram_bytes=dram_bytes,
            global_size=global_size.copy(),
        )

    # ------------------------------------------------------------------
    # Pool supervision
    # ------------------------------------------------------------------

    def _tile_bounds(self, n_kernels: int) -> List[Tuple[int, int]]:
        """Contiguous near-equal kernel-row tiles ``[(lo, hi), ...]``."""
        n_tiles = min(
            n_kernels, self._workers * self._tiles_per_worker
        )
        base, extra = divmod(n_kernels, n_tiles)
        bounds = []
        lo = 0
        for index in range(n_tiles):
            hi = lo + base + (1 if index < extra else 0)
            bounds.append((lo, hi))
            lo = hi
        return bounds

    def _local(self) -> BatchIntervalModel:
        """The parent-side batch model for serial tiles, built once."""
        if self._local_model is None:
            self._local_model = BatchIntervalModel()
        return self._local_model

    def _ensure_pool(self):
        """The persistent pool, created lazily; ``None`` where process
        pools cannot be created (e.g. sandboxes)."""
        if self._pool is None:
            try:
                # Fork with the shm resource tracker already running,
                # so workers inherit it instead of spawning their own
                # (a private tracker mistakes the parent's segments
                # for leaks at worker exit).
                shm.ensure_tracker()
                self._pool = multiprocessing.Pool(self._workers)
            except (OSError, PermissionError, RuntimeError, ValueError):
                self._pool = None
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _run_pool(
        self,
        pack: KernelPack,
        space: GridSpace,
        tiles: List[Tuple[int, int]],
        shape: Tuple[int, ...],
        time_s: np.ndarray,
        place,
        done: List[bool],
        stats: StudyMTStats,
    ) -> None:
        """Deliver as many tiles as the pool manages; mark them done.

        Tiles not marked done — the failed one and everything not yet
        collected when the pool is torn down — are left for the serial
        fallback loop. Completed-but-uncollected shared-memory writes
        are simply recomputed: the data is deterministic, so rewriting
        rows is idempotent.
        """
        pool = self._ensure_pool()
        if pool is None:
            stats.pool_unavailable = True
            return
        stats.used_pool = True

        segment = shm.create_segment(shape)
        stats.shm_used = segment is not None
        try:
            payloads = []
            for index, (lo, hi) in enumerate(tiles):
                payload = {
                    "pack": pack.subset(lo, hi),
                    "space": space,
                }
                if segment is not None:
                    payload["shm"] = shm.segment_descriptor(
                        segment, shape, lo
                    )
                if index in self._chaos_kill_tiles:
                    payload["kill"] = True
                payloads.append(payload)
            # Arm each chaos tile once: the serial fallback re-runs it
            # in-process, where the kill flag must not follow.
            self._chaos_kill_tiles = frozenset()

            pending = {
                index: pool.apply_async(_simulate_tile, (payloads[index],))
                for index in range(len(tiles))
            }
            view = (
                np.ndarray(shape, dtype=np.float64, buffer=segment.buf)
                if segment is not None
                else None
            )
            for index in sorted(pending):
                lo, hi = tiles[index]
                try:
                    outcome = pending[index].get(self._tile_timeout_s)
                except multiprocessing.TimeoutError:
                    stats.worker_errors.append(
                        f"tile {index} [{lo}:{hi}): no result within "
                        f"{self._tile_timeout_s:g}s (worker hung or "
                        "died mid-study)"
                    )
                    self._discard_pool()
                    return
                except Exception as exc:
                    stats.worker_errors.append(
                        f"tile {index} [{lo}:{hi}): pool failure "
                        f"{type(exc).__name__}: {exc}"
                    )
                    self._discard_pool()
                    return
                if not outcome["ok"]:
                    stats.worker_errors.append(
                        f"tile {index} [{lo}:{hi}): {outcome['error']}"
                    )
                    self._discard_pool()
                    return
                stats.worker_models[outcome["pid"]] = (
                    outcome["model_constructions"]
                )
                place(lo, hi, outcome)
                if outcome["time_s"] is None:
                    # The worker wrote these rows into the segment
                    # before returning; copy them out immediately so
                    # an early pool teardown cannot orphan them.
                    time_s[lo:hi] = view[lo:hi]
                done[index] = True
        finally:
            if segment is not None:
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass
