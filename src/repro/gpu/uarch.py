"""The microarchitecture-family seam: descriptors and registry.

Mirrors the timing-engine registry (:mod:`repro.gpu.engine`): a
*family* is a named, fingerprinted microarchitecture — physics values,
a flagship operating point, and the canonical sweep grid the taxonomy
runs on. Everything above the physics layer (service, CLI, transfer
analysis) resolves families by name through this registry instead of
importing per-family constants, so adding a part is one registration.

Identity is split deliberately:

* the **name slug** (``"hawaii"``, ``"kaveri"``, ...) is display and
  routing identity — metrics labels, ``/healthz``, error messages,
  request payloads;
* the **fingerprint material** is the family's physics value payload
  (:meth:`~repro.gpu.config.Microarchitecture.to_dict`), which is what
  sweep-cache keys and campaign journals embed (via
  ``space.to_dict()``). Renaming a family never invalidates caches;
  changing a physics value always does.

Four families register at import: the paper's Hawaii reference, the
Kaveri shared-memory APU (host bandwidth contention), an SM-style part
with 32-wide warps and SIMT occupancy rules (per-warp register
granules, no scalar-file limit), and an HBM-class big-memory part
(Fiji-like 4096-bit stack).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import ConfigurationError
from repro.gpu.config import HAWAII_UARCH, HardwareConfig, Microarchitecture
from repro.gpu.families import APU_SPACE, KAVERI_FLAGSHIP, KAVERI_UARCH
from repro.gpu.products import W9100_LIKE
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace
from repro.units import KIB, MIB


@dataclass(frozen=True)
class FamilyDescriptor:
    """Stable identity of one microarchitecture family.

    *name* is the registry key; *version* tracks the family's physics
    (a value change should bump it in the changelog sense, but the
    fingerprint already moves with the values themselves).
    """

    name: str
    version: int = 1

    def fingerprint_material(self, uarch: Microarchitecture) -> dict:
        """The payload cache keys embed: physics values, never the name.

        This is exactly ``uarch.to_dict()`` — byte-identical to the
        pre-registry payloads ``ConfigurationSpace.to_dict()`` already
        feeds into sweep fingerprints, so existing cache entries stay
        valid and renames never invalidate them.
        """
        return uarch.to_dict()


@dataclass(frozen=True)
class UarchFamily:
    """One registered family: physics, flagship point, canonical grid.

    ``space`` is the family's canonical sweep grid — the grid its
    taxonomy runs on and the grid cross-family transfer measures
    surfaces over. Its axes span knob ranges in the spirit of the
    paper's (a wide CU range, ~3-5x clocks), scaled to the part.
    """

    name: str
    uarch: Microarchitecture
    flagship: HardwareConfig
    space: ConfigurationSpace
    summary: str = ""

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ConfigurationError(f"invalid family name {self.name!r}")
        if self.space.uarch != self.uarch:
            raise ConfigurationError(
                f"family {self.name!r}: canonical space carries a "
                "different microarchitecture"
            )
        if self.flagship.uarch != self.uarch:
            raise ConfigurationError(
                f"family {self.name!r}: flagship carries a different "
                "microarchitecture"
            )

    def descriptor(self) -> FamilyDescriptor:
        """This family's stable identity."""
        return FamilyDescriptor(name=self.name)

    def fingerprint_material(self) -> dict:
        """Value-derived fingerprint payload (see the module docstring)."""
        return self.descriptor().fingerprint_material(self.uarch)

    def to_dict(self) -> dict:
        """Summary payload for ``/healthz`` and ``gpuscale families``."""
        return {
            "name": self.name,
            "summary": self.summary,
            "space_shape": list(self.space.shape),
            "space_size": self.space.size,
            "flagship": self.flagship.to_dict(),
            "peak_gflops": self.flagship.peak_gflops,
            "peak_dram_gb_per_sec": self.flagship.peak_dram_gb_per_sec,
            "machine_balance_flops_per_byte": (
                self.flagship.machine_balance_flops_per_byte
            ),
        }


_FAMILIES: Dict[str, UarchFamily] = {}
_FAMILIES_LOCK = threading.Lock()


def register_family(
    family: UarchFamily, *, replace: bool = False
) -> UarchFamily:
    """Register *family* under its name slug.

    Registering an existing name raises unless ``replace=True``.
    Returns the registered family.
    """
    with _FAMILIES_LOCK:
        if family.name in _FAMILIES and not replace:
            raise ConfigurationError(
                f"family {family.name!r} is already registered "
                "(pass replace=True to override)"
            )
        _FAMILIES[family.name] = family
    return family


def unregister_family(name: str) -> bool:
    """Drop one registration; ``True`` if something was removed."""
    with _FAMILIES_LOCK:
        return _FAMILIES.pop(name, None) is not None


def get_family(name: str) -> UarchFamily:
    """The family registered under *name*, or a structured error."""
    with _FAMILIES_LOCK:
        family = _FAMILIES.get(name)
    if family is None:
        known = ", ".join(sorted(_FAMILIES)) or "<none>"
        raise ConfigurationError(
            f"unknown microarchitecture family {name!r}; "
            f"registered families: {known}"
        )
    return family


def list_families() -> Tuple[UarchFamily, ...]:
    """Every registration, sorted by name."""
    with _FAMILIES_LOCK:
        families = sorted(_FAMILIES.values(), key=lambda f: f.name)
    return tuple(families)


def family_names() -> Tuple[str, ...]:
    """Registered family names, sorted."""
    return tuple(family.name for family in list_families())


def family_for_uarch(uarch: Microarchitecture) -> Optional[UarchFamily]:
    """The registered family whose physics equal *uarch* (else None).

    Equality is value-based (the ``name`` slug is excluded from
    comparison), so an anonymous ``Microarchitecture`` with Hawaii
    values resolves to the ``hawaii`` family.
    """
    with _FAMILIES_LOCK:
        named = _FAMILIES.get(uarch.name) if uarch.name else None
        if named is not None and named.uarch == uarch:
            return named
        for family in _FAMILIES.values():
            if family.uarch == uarch:
                return family
    return None


def family_label(uarch: Microarchitecture) -> str:
    """Display slug for *uarch*: its name, a registry match, or
    ``"custom"`` — the label metrics and error messages carry."""
    if uarch.name:
        return uarch.name
    family = family_for_uarch(uarch)
    return family.name if family is not None else "custom"


@contextmanager
def family_registration(
    family: UarchFamily, *, replace: bool = False
) -> Iterator[UarchFamily]:
    """Temporarily register *family* (tests); restores the previous
    entry — or removes the name — on exit."""
    with _FAMILIES_LOCK:
        previous = _FAMILIES.get(family.name)
    register_family(family, replace=replace or previous is not None)
    try:
        yield family
    finally:
        with _FAMILIES_LOCK:
            if previous is None:
                _FAMILIES.pop(family.name, None)
            else:
                _FAMILIES[family.name] = previous


# ----------------------------------------------------------------------
# Built-in families
# ----------------------------------------------------------------------

#: SM-style part (GM200/Titan-X-like): 32-wide warps, 64 warp slots
#: per SM, per-warp register allocation in granules of 8 from a 512-
#: register per-scheduler pool, no scalar register file (the SGPR pool
#: is sized so it never binds), 96 KiB shared memory, 3 MiB L2 on a
#: 384-bit GDDR5 interface.
MAXWELL_UARCH = Microarchitecture(
    simds_per_cu=4,
    lanes_per_simd=32,
    max_waves_per_simd=16,
    max_workgroups_per_cu=32,
    vgprs_per_simd=512,
    sgprs_per_cu=4096,
    lds_bytes_per_cu=96 * KIB,
    l1_bytes_per_cu=24 * KIB,
    l2_bytes_total=3 * MIB,
    l2_banks=24,
    memory_bus_bits=384,
    memory_data_rate=4,
    l1_latency_cycles=80,
    l2_latency_cycles=220,
    dram_latency_cycles=30,
    dram_fixed_latency_ns=170.0,
    vgpr_granule=8,
    sgpr_granule=8,
    name="maxwell",
)

#: Titan-X-like flagship: 24 SMs, 336 GB/s.
MAXWELL_FLAGSHIP = HardwareConfig(
    cu_count=24, engine_mhz=1000.0, memory_mhz=1750.0,
    uarch=MAXWELL_UARCH,
)

#: Canonical SM-style sweep grid: 6 x 7 x 7 = 294 configurations
#: (6x SMs, 3x engine clock, 4.4x memory clock).
MAXWELL_SPACE = ConfigurationSpace(
    cu_counts=(4, 8, 12, 16, 20, 24),
    engine_mhz=(400.0, 500.0, 600.0, 700.0, 800.0, 900.0, 1000.0),
    memory_mhz=(400.0, 625.0, 850.0, 1075.0, 1300.0, 1525.0, 1750.0),
    uarch=MAXWELL_UARCH,
)

#: HBM-class big-memory part (Fiji/Fury-X-like): GCN occupancy rules,
#: but a 4096-bit on-interposer stack at double data rate (512 GB/s at
#: the 500 MHz top state), 2 MiB L2 over 32 banks, and a shorter fixed
#: DRAM latency (the stack sits on the interposer).
FIJI_UARCH = Microarchitecture(
    l2_bytes_total=2 * MIB,
    l2_banks=32,
    memory_bus_bits=4096,
    memory_data_rate=2,
    dram_fixed_latency_ns=110.0,
    name="fiji",
)

#: Fury-X-like flagship: 64 CUs, 8.6 TFLOP/s, 512 GB/s.
FIJI_FLAGSHIP = HardwareConfig(
    cu_count=64, engine_mhz=1050.0, memory_mhz=500.0, uarch=FIJI_UARCH
)

#: Canonical HBM-class sweep grid: 8 x 6 x 6 = 288 configurations
#: (8x CUs, 3.5x engine clock, 4x memory clock).
FIJI_SPACE = ConfigurationSpace(
    cu_counts=(8, 16, 24, 32, 40, 48, 56, 64),
    engine_mhz=(300.0, 450.0, 600.0, 750.0, 900.0, 1050.0),
    memory_mhz=(125.0, 200.0, 275.0, 350.0, 425.0, 500.0),
    uarch=FIJI_UARCH,
)


def _register_builtins() -> None:
    register_family(
        UarchFamily(
            name="hawaii",
            uarch=HAWAII_UARCH,
            flagship=W9100_LIKE,
            space=PAPER_SPACE,
            summary="GCN3 Hawaii-class discrete reference (the paper's "
            "fused-down W9100): 891-point study grid",
        ),
        replace=True,
    )
    register_family(
        UarchFamily(
            name="kaveri",
            uarch=KAVERI_UARCH,
            flagship=KAVERI_FLAGSHIP,
            space=APU_SPACE,
            summary="Kaveri-class shared-memory APU: DDR3 behind host "
            "contention, machine balance tilted toward bandwidth",
        ),
        replace=True,
    )
    register_family(
        UarchFamily(
            name="maxwell",
            uarch=MAXWELL_UARCH,
            flagship=MAXWELL_FLAGSHIP,
            space=MAXWELL_SPACE,
            summary="SM-style part: 32-wide warps, 64 warp slots/SM, "
            "per-warp register granules, no scalar-file limit",
        ),
        replace=True,
    )
    register_family(
        UarchFamily(
            name="fiji",
            uarch=FIJI_UARCH,
            flagship=FIJI_FLAGSHIP,
            space=FIJI_SPACE,
            summary="HBM-class big-memory part: 4096-bit stack, "
            "512 GB/s, machine balance tilted toward compute",
        ),
        replace=True,
    )


_register_builtins()
