"""Reproduction of "A Taxonomy of GPGPU Performance Scaling" (IISWC 2015).

The package has four layers (see DESIGN.md for the full inventory):

* :mod:`repro.gpu` / :mod:`repro.kernels` — the substrate: a GCN-class
  GPU performance model and the workload representation it consumes.
* :mod:`repro.suites` — the 97-program / 267-kernel synthetic catalog.
* :mod:`repro.sweep` — the 891-configuration data-collection harness.
* :mod:`repro.taxonomy` / :mod:`repro.analysis` / :mod:`repro.report` —
  the paper's contribution: scaling-behaviour classification and the
  evaluation analytics built on it.

Quickstart::

    from repro import collect_paper_dataset, classify

    dataset = collect_paper_dataset()      # 267 kernels x 891 configs
    taxonomy = classify(dataset)           # per-kernel scaling labels
    print(taxonomy.category_counts())
"""

from repro.errors import (
    AnalysisError,
    ClassificationError,
    ConfigurationError,
    DatasetError,
    ReproError,
    SuiteError,
    WorkloadError,
)
from repro.gpu import (
    Engine,
    GpuSimulator,
    HardwareConfig,
    Microarchitecture,
    TimingEngine,
    get_engine,
    list_engines,
    register_engine,
    simulate,
)
from repro.kernels import Kernel, KernelCharacteristics, LaunchGeometry
from repro.sweep import (
    PAPER_SPACE,
    ConfigurationSpace,
    ScalingDataset,
    SweepRunner,
    collect_paper_dataset,
    reduced_space,
)
from repro.taxonomy import (
    AxisBehaviour,
    TaxonomyCategory,
    TaxonomyClassifier,
    classify,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "AxisBehaviour",
    "ClassificationError",
    "ConfigurationError",
    "ConfigurationSpace",
    "DatasetError",
    "Engine",
    "GpuSimulator",
    "HardwareConfig",
    "Kernel",
    "KernelCharacteristics",
    "LaunchGeometry",
    "Microarchitecture",
    "PAPER_SPACE",
    "ReproError",
    "ScalingDataset",
    "SuiteError",
    "SweepRunner",
    "TaxonomyCategory",
    "TaxonomyClassifier",
    "TimingEngine",
    "WorkloadError",
    "classify",
    "collect_paper_dataset",
    "get_engine",
    "list_engines",
    "reduced_space",
    "register_engine",
    "simulate",
]
