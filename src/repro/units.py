"""Unit conversion helpers used throughout the performance model.

The hardware model works internally in a small set of canonical units:

* time in **seconds**,
* clock rates in **MHz** at the API surface, converted to Hz here,
* data sizes in **bytes**, with binary prefixes for cache/LDS capacities,
* bandwidth in **bytes/second** internally, **GB/s** (decimal) at the
  API surface, matching vendor datasheets.

Keeping the conversions in one module avoids the classic off-by-1e3
errors between binary capacities and decimal rates.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

US_PER_S = 1e6
NS_PER_S = 1e9


def mhz_to_hz(mhz: float) -> float:
    """Convert a clock rate in MHz to Hz."""
    return mhz * 1e6


def hz_to_mhz(hz: float) -> float:
    """Convert a clock rate in Hz to MHz."""
    return hz / 1e6


def seconds_to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * US_PER_S


def us_to_seconds(us: float) -> float:
    """Convert microseconds to seconds."""
    return us / US_PER_S


def seconds_to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds * NS_PER_S


def ns_to_seconds(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / NS_PER_S


def bytes_to_gb(num_bytes: float) -> float:
    """Convert bytes to decimal gigabytes (vendor-datasheet GB)."""
    return num_bytes / GB


def gb_to_bytes(gigabytes: float) -> float:
    """Convert decimal gigabytes to bytes."""
    return gigabytes * GB


def bytes_per_sec_to_gb_per_sec(rate: float) -> float:
    """Convert a bandwidth in bytes/second to GB/s (decimal)."""
    return rate / GB


def gb_per_sec_to_bytes_per_sec(rate: float) -> float:
    """Convert a bandwidth in GB/s (decimal) to bytes/second."""
    return rate * GB
