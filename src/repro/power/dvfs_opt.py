"""Energy-aware DVFS optimisation over the configuration space.

Answers the question the knobs exist for: given a kernel (or the
taxonomy category it belongs to), which point of the 891-configuration
space minimises energy, minimises energy-delay product, or maximises
performance under a power cap? The taxonomy predicts the answers'
*structure*: compute-bound kernels race-to-idle near the top states;
plateau kernels should run at the bottom of every knob; bandwidth-bound
kernels want memory clock but not engine clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional


from repro.errors import AnalysisError
from repro.gpu.config import HardwareConfig
from repro.kernels.kernel import Kernel
from repro.power.energy import EnergyModel
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace


class Objective(Enum):
    """Supported DVFS objectives."""

    MIN_ENERGY = "min_energy"
    MIN_EDP = "min_edp"
    MAX_PERF = "max_perf"


@dataclass(frozen=True)
class OperatingPoint:
    """An optimisation result: the chosen configuration and its cost."""

    kernel_name: str
    objective: Objective
    config: HardwareConfig
    time_s: float
    energy_j: float

    @property
    def edp(self) -> float:
        """Energy-delay product at the chosen point."""
        return self.energy_j * self.time_s


class DvfsOptimizer:
    """Exhaustive DVFS-space optimisation (891 points is tiny)."""

    def __init__(
        self,
        energy_model: Optional[EnergyModel] = None,
        space: ConfigurationSpace = PAPER_SPACE,
    ):
        self._energy = energy_model or EnergyModel()
        self._space = space

    def optimise(
        self,
        kernel: Kernel,
        objective: Objective = Objective.MIN_EDP,
        power_cap_w: Optional[float] = None,
    ) -> OperatingPoint:
        """The best operating point for *kernel* under *objective*.

        *power_cap_w*, when given, restricts the search to
        configurations whose board power stays at or below the cap;
        an unsatisfiable cap raises :class:`AnalysisError`.
        """
        best = None
        best_cost = None
        for config in self._space:
            result = self._energy.evaluate(kernel, config)
            if power_cap_w is not None and result.power_w > power_cap_w:
                continue
            if objective is Objective.MIN_ENERGY:
                cost = result.energy_j
            elif objective is Objective.MIN_EDP:
                cost = result.edp
            elif objective is Objective.MAX_PERF:
                cost = result.time_s
            else:  # pragma: no cover - exhaustive enum
                raise AnalysisError(f"unknown objective {objective!r}")
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best = result
        if best is None:
            raise AnalysisError(
                f"no configuration satisfies power cap {power_cap_w} W"
            )
        return OperatingPoint(
            kernel_name=kernel.full_name,
            objective=objective,
            config=best.config,
            time_s=best.time_s,
            energy_j=best.energy_j,
        )

    def race_to_idle_wins(self, kernel: Kernel) -> bool:
        """True when the flagship configuration is also (near-)energy
        optimal — the race-to-idle regime typical of compute-bound
        kernels with significant static power."""
        optimum = self.optimise(kernel, Objective.MIN_ENERGY)
        flagship = self._energy.evaluate(kernel, self._space.max_config)
        return flagship.energy_j <= 1.1 * optimum.energy_j

    def energy_saving_vs_flagship(self, kernel: Kernel) -> float:
        """Fraction of energy the MIN_ENERGY point saves over running
        the kernel at the flagship configuration."""
        optimum = self.optimise(kernel, Objective.MIN_ENERGY)
        flagship = self._energy.evaluate(kernel, self._space.max_config)
        return 1.0 - optimum.energy_j / flagship.energy_j
