"""Energy-aware DVFS optimisation over the configuration space.

Answers the question the knobs exist for: given a kernel (or the
taxonomy category it belongs to), which point of the 891-configuration
space minimises energy, minimises energy-delay product, or maximises
performance under a power cap? The taxonomy predicts the answers'
*structure*: compute-bound kernels race-to-idle near the top states;
plateau kernels should run at the bottom of every knob; bandwidth-bound
kernels want memory clock but not engine clock.

The search itself is one argmin over the kernel's
:class:`~repro.power.energy.EnergySurface` (one engine grid call), with
the same first-minimum tie-break and power-cap semantics the original
point loop had: row-major grid order, configurations above the cap
excluded before costing. :func:`select_optimum` and
:func:`frontier_points` operate on bare arrays so the serving layer can
run the identical selection on fleet-returned surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import AnalysisError, ConfigurationError
from repro.gpu.config import HardwareConfig
from repro.kernels.kernel import Kernel
from repro.power.energy import EnergyModel
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace


class Objective(Enum):
    """Supported DVFS objectives."""

    MIN_ENERGY = "min_energy"
    MIN_EDP = "min_edp"
    MAX_PERF = "max_perf"


@dataclass(frozen=True)
class OperatingPoint:
    """An optimisation result: the chosen configuration and its cost."""

    kernel_name: str
    objective: Objective
    config: HardwareConfig
    time_s: float
    energy_j: float
    power_w: Optional[float] = None

    @property
    def edp(self) -> float:
        """Energy-delay product at the chosen point."""
        return self.energy_j * self.time_s


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated (time, energy) configuration."""

    config: HardwareConfig
    time_s: float
    energy_j: float
    power_w: float

    @property
    def edp(self) -> float:
        """Energy-delay product at this frontier point."""
        return self.energy_j * self.time_s


def _cost_surface(
    time_s: np.ndarray, energy_j: np.ndarray, objective: Objective
) -> np.ndarray:
    if objective is Objective.MIN_ENERGY:
        return energy_j
    if objective is Objective.MIN_EDP:
        return energy_j * time_s
    if objective is Objective.MAX_PERF:
        return time_s
    raise AnalysisError(f"unknown objective {objective!r}")


def select_optimum(
    time_s: np.ndarray,
    energy_j: np.ndarray,
    power_w: np.ndarray,
    objective: Objective,
    power_cap_w: Optional[float] = None,
) -> Tuple[int, int, int]:
    """Grid coordinate of the best configuration under *objective*.

    Mirrors the original exhaustive loop exactly: configurations whose
    modelled power exceeds the cap are excluded, cost ties keep the
    first configuration in row-major grid order, and an unsatisfiable
    cap raises :class:`AnalysisError`.
    """
    cost = np.asarray(
        _cost_surface(time_s, energy_j, objective), dtype=np.float64
    )
    if power_cap_w is not None:
        eligible = power_w <= power_cap_w
        if not np.any(eligible):
            raise AnalysisError(
                f"no configuration satisfies power cap {power_cap_w} W"
            )
        cost = np.where(eligible, cost, np.inf)
    flat = int(np.argmin(cost))
    c, e, m = np.unravel_index(flat, cost.shape)
    return int(c), int(e), int(m)


def frontier_indices(
    time_s: np.ndarray,
    energy_j: np.ndarray,
    power_w: np.ndarray,
    power_cap_w: Optional[float] = None,
) -> List[Tuple[int, int, int]]:
    """Grid coordinates of the (time, energy) Pareto frontier.

    A configuration survives when nothing eligible is at least as fast
    *and* at least as frugal with one strict improvement. The sweep is
    deterministic: candidates sort by (energy, time, flat index), and
    only strictly faster points extend the frontier, so exact ties keep
    the first row-major configuration. Results come back sorted by
    energy ascending (equivalently time descending).
    """
    flat_time = np.asarray(time_s, dtype=np.float64).ravel()
    flat_energy = np.asarray(energy_j, dtype=np.float64).ravel()
    flat_power = np.asarray(power_w, dtype=np.float64).ravel()
    indices = np.arange(flat_time.size)
    if power_cap_w is not None:
        eligible = flat_power <= power_cap_w
        if not np.any(eligible):
            raise AnalysisError(
                f"no configuration satisfies power cap {power_cap_w} W"
            )
        indices = indices[eligible]
    order = sorted(
        indices,
        key=lambda i: (flat_energy[i], flat_time[i], i),
    )
    shape = np.asarray(time_s).shape
    front: List[Tuple[int, int, int]] = []
    best_time = np.inf
    for i in order:
        if flat_time[i] < best_time:
            best_time = flat_time[i]
            c, e, m = np.unravel_index(int(i), shape)
            front.append((int(c), int(e), int(m)))
    return front


def frontier_points(
    space: ConfigurationSpace,
    time_s: np.ndarray,
    energy_j: np.ndarray,
    power_w: np.ndarray,
    power_cap_w: Optional[float] = None,
) -> List[FrontierPoint]:
    """The (time, energy) Pareto frontier as configuration points."""
    return [
        FrontierPoint(
            config=space.config(c, e, m),
            time_s=float(time_s[c, e, m]),
            energy_j=float(energy_j[c, e, m]),
            power_w=float(power_w[c, e, m]),
        )
        for c, e, m in frontier_indices(
            time_s, energy_j, power_w, power_cap_w
        )
    ]


class DvfsOptimizer:
    """Exhaustive DVFS-space optimisation (891 points is tiny).

    *engine* names any registered timing engine; it is shorthand for
    ``DvfsOptimizer(energy_model=EnergyModel(engine=...))`` and makes
    the optimiser honour the engine registry's fidelity tiers.
    """

    def __init__(
        self,
        energy_model: Optional[EnergyModel] = None,
        space: ConfigurationSpace = PAPER_SPACE,
        engine: Optional[str] = None,
    ):
        if energy_model is not None and engine is not None:
            raise ConfigurationError(
                "pass either energy_model or engine, not both"
            )
        self._energy = energy_model or EnergyModel(engine=engine)
        self._space = space

    @property
    def energy_model(self) -> EnergyModel:
        """The energy model the search prices configurations with."""
        return self._energy

    @property
    def space(self) -> ConfigurationSpace:
        """The configuration space the search covers."""
        return self._space

    def optimise(
        self,
        kernel: Kernel,
        objective: Objective = Objective.MIN_EDP,
        power_cap_w: Optional[float] = None,
    ) -> OperatingPoint:
        """The best operating point for *kernel* under *objective*.

        *power_cap_w*, when given, restricts the search to
        configurations whose board power stays at or below the cap;
        an unsatisfiable cap raises :class:`AnalysisError`.
        """
        surface = self._energy.surfaces(kernel, self._space)
        c, e, m = select_optimum(
            surface.time_s,
            surface.energy_j,
            surface.power_w,
            objective,
            power_cap_w,
        )
        return OperatingPoint(
            kernel_name=kernel.full_name,
            objective=objective,
            config=self._space.config(c, e, m),
            time_s=float(surface.time_s[c, e, m]),
            energy_j=float(surface.energy_j[c, e, m]),
            power_w=float(surface.power_w[c, e, m]),
        )

    def frontier(
        self,
        kernel: Kernel,
        power_cap_w: Optional[float] = None,
    ) -> List[FrontierPoint]:
        """The kernel's full (time, energy) Pareto frontier."""
        surface = self._energy.surfaces(kernel, self._space)
        return frontier_points(
            self._space,
            surface.time_s,
            surface.energy_j,
            surface.power_w,
            power_cap_w,
        )

    def race_to_idle_wins(self, kernel: Kernel) -> bool:
        """True when the flagship configuration is also (near-)energy
        optimal — the race-to-idle regime typical of compute-bound
        kernels with significant static power."""
        optimum = self.optimise(kernel, Objective.MIN_ENERGY)
        flagship = self._energy.evaluate(kernel, self._space.max_config)
        return flagship.energy_j <= 1.1 * optimum.energy_j

    def energy_saving_vs_flagship(self, kernel: Kernel) -> float:
        """Fraction of energy the MIN_ENERGY point saves over running
        the kernel at the flagship configuration."""
        optimum = self.optimise(kernel, Objective.MIN_ENERGY)
        flagship = self._energy.evaluate(kernel, self._space.max_config)
        return 1.0 - optimum.energy_j / flagship.energy_j
