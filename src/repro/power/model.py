"""GPU power model over the swept configuration space.

The IISWC'15 scaling study came out of AMD Research's power-management
group, and the same dataset fed their energy/DVFS follow-on work. This
extension subsystem models the power side of every configuration so the
scaling taxonomy can answer the question the knobs exist for: *where is
the energy-optimal operating point for this kernel?*

The model follows the standard CMOS decomposition per clock domain:

* **dynamic power** ~ C * V^2 * f, with V given by the domain's
  voltage-frequency curve (higher clocks need disproportionately more
  voltage, so power grows superlinearly in frequency);
* **static (leakage) power** ~ V * (active area), growing with the
  number of powered CUs;
* an **idle/base platform** term for the rest of the card.

Activity factors couple power to the performance model: a
bandwidth-bound kernel does not pay full compute power (its VALUs are
mostly idle) and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.config import HardwareConfig


@dataclass(frozen=True)
class VoltageCurve:
    """Piecewise-linear voltage-frequency curve for one clock domain.

    Voltage interpolates linearly between (min_mhz, min_volts) and
    (max_mhz, max_volts); clocks outside the range are clamped. The
    defaults are Hawaii-class: ~0.9 V at the low state rising to
    ~1.2 V at the top engine state.
    """

    min_mhz: float
    max_mhz: float
    min_volts: float = 0.9
    max_volts: float = 1.2

    def __post_init__(self) -> None:
        if self.min_mhz <= 0 or self.max_mhz <= self.min_mhz:
            raise ConfigurationError(
                f"invalid frequency range [{self.min_mhz}, {self.max_mhz}]"
            )
        if self.min_volts <= 0 or self.max_volts < self.min_volts:
            raise ConfigurationError(
                f"invalid voltage range [{self.min_volts}, "
                f"{self.max_volts}]"
            )

    def volts(self, mhz: float) -> float:
        """Supply voltage at *mhz* (clamped to the curve's range)."""
        clamped = min(max(mhz, self.min_mhz), self.max_mhz)
        span = self.max_mhz - self.min_mhz
        fraction = (clamped - self.min_mhz) / span
        return self.min_volts + fraction * (
            self.max_volts - self.min_volts
        )


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component power of one configuration under one activity."""

    compute_dynamic_w: float
    memory_dynamic_w: float
    compute_static_w: float
    memory_static_w: float
    base_w: float

    @property
    def total_w(self) -> float:
        """Board power in watts."""
        return (
            self.compute_dynamic_w
            + self.memory_dynamic_w
            + self.compute_static_w
            + self.memory_static_w
            + self.base_w
        )

    @property
    def dynamic_w(self) -> float:
        """Activity-dependent portion."""
        return self.compute_dynamic_w + self.memory_dynamic_w

    @property
    def static_w(self) -> float:
        """Activity-independent portion (leakage + base)."""
        return self.compute_static_w + self.memory_static_w + self.base_w


class PowerModel:
    """Board-power model over (CU count, engine clock, memory clock).

    Calibrated so the flagship point (44 CUs, 1000 MHz, 1250 MHz) at
    full activity lands near the W9100's ~275 W board power, and the
    smallest sweep corner idles in the tens of watts — the "embedded
    to discrete" span the paper frames.
    """

    def __init__(
        self,
        engine_curve: VoltageCurve = VoltageCurve(200.0, 1000.0),
        memory_curve: VoltageCurve = VoltageCurve(
            150.0, 1250.0, 1.35, 1.5
        ),
        cu_dynamic_coeff_w: float = 4.2,
        memory_dynamic_coeff_w: float = 40.0,
        cu_leakage_w_per_volt: float = 0.55,
        memory_leakage_w_per_volt: float = 6.0,
        base_w: float = 18.0,
    ):
        self._engine_curve = engine_curve
        self._memory_curve = memory_curve
        self._cu_dynamic_coeff_w = cu_dynamic_coeff_w
        self._memory_dynamic_coeff_w = memory_dynamic_coeff_w
        self._cu_leakage_w_per_volt = cu_leakage_w_per_volt
        self._memory_leakage_w_per_volt = memory_leakage_w_per_volt
        self._base_w = base_w

    def breakdown(
        self,
        config: HardwareConfig,
        compute_activity: float = 1.0,
        memory_activity: float = 1.0,
    ) -> PowerBreakdown:
        """Board power at *config* under the given activity factors.

        Activities are utilisations in [0, 1]: the fraction of peak
        switching in the compute domain (VALU issue) and the memory
        interface (bus occupancy).
        """
        for name, value in (
            ("compute_activity", compute_activity),
            ("memory_activity", memory_activity),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must lie in [0, 1], got {value}"
                )

        v_eng = self._engine_curve.volts(config.engine_mhz)
        v_mem = self._memory_curve.volts(config.memory_mhz)
        f_eng = config.engine_mhz / 1000.0  # normalise to GHz
        f_mem = config.memory_mhz / 1250.0  # normalise to the top state

        compute_dynamic = (
            self._cu_dynamic_coeff_w
            * config.cu_count
            * (v_eng / 1.2) ** 2
            * f_eng
            * compute_activity
        )
        memory_dynamic = (
            self._memory_dynamic_coeff_w
            * (v_mem / 1.5) ** 2
            * f_mem
            * memory_activity
        )
        compute_static = (
            self._cu_leakage_w_per_volt * config.cu_count * v_eng
        )
        memory_static = self._memory_leakage_w_per_volt * v_mem
        return PowerBreakdown(
            compute_dynamic_w=compute_dynamic,
            memory_dynamic_w=memory_dynamic,
            compute_static_w=compute_static,
            memory_static_w=memory_static,
            base_w=self._base_w,
        )

    def board_power_w(
        self,
        config: HardwareConfig,
        compute_activity: float = 1.0,
        memory_activity: float = 1.0,
    ) -> float:
        """Total board power in watts (convenience)."""
        return self.breakdown(
            config, compute_activity, memory_activity
        ).total_w

    def board_power_surface(
        self,
        space,
        compute_activity,
        memory_activity,
    ) -> np.ndarray:
        """Board power at every point of *space* as one broadcast.

        *compute_activity* / *memory_activity* are arrays broadcastable
        to ``space.shape`` (typically the batch interval terms' activity
        surfaces). The voltage curve and per-axis frequency terms are
        evaluated with scalar Python arithmetic per axis value and the
        component sums keep :meth:`breakdown`'s association order, so
        every element is bit-identical to the scalar path.
        """
        n_cu, n_eng, n_mem = space.shape
        ca = np.asarray(compute_activity, dtype=np.float64)
        ma = np.asarray(memory_activity, dtype=np.float64)
        for name, values in (
            ("compute_activity", ca),
            ("memory_activity", ma),
        ):
            if np.any(values < 0.0) or np.any(values > 1.0):
                raise ConfigurationError(
                    f"{name} must lie in [0, 1], got "
                    f"[{float(values.min())}, {float(values.max())}]"
                )

        cu_counts = np.asarray(
            space.cu_counts, dtype=np.int64
        ).reshape(n_cu, 1, 1)
        v_eng_values = [
            self._engine_curve.volts(float(mhz))
            for mhz in space.engine_mhz
        ]
        v_eng = np.asarray(v_eng_values).reshape(1, n_eng, 1)
        eng_sq = np.asarray(
            [(v / 1.2) ** 2 for v in v_eng_values]
        ).reshape(1, n_eng, 1)
        f_eng = np.asarray(
            [float(mhz) / 1000.0 for mhz in space.engine_mhz]
        ).reshape(1, n_eng, 1)
        v_mem_values = [
            self._memory_curve.volts(float(mhz))
            for mhz in space.memory_mhz
        ]
        v_mem = np.asarray(v_mem_values).reshape(1, 1, n_mem)
        mem_sq = np.asarray(
            [(v / 1.5) ** 2 for v in v_mem_values]
        ).reshape(1, 1, n_mem)
        f_mem = np.asarray(
            [float(mhz) / 1250.0 for mhz in space.memory_mhz]
        ).reshape(1, 1, n_mem)

        compute_dynamic = (
            self._cu_dynamic_coeff_w * cu_counts * eng_sq * f_eng * ca
        )
        memory_dynamic = (
            self._memory_dynamic_coeff_w * mem_sq * f_mem * ma
        )
        compute_static = (
            self._cu_leakage_w_per_volt * cu_counts * v_eng
        )
        memory_static = self._memory_leakage_w_per_volt * v_mem
        total = (
            compute_dynamic
            + memory_dynamic
            + compute_static
            + memory_static
            + self._base_w
        )
        return np.ascontiguousarray(
            np.broadcast_to(total, space.shape)
        )


#: Default model instance used across the energy analyses.
DEFAULT_POWER_MODEL = PowerModel()
