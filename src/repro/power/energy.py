"""Energy accounting: coupling the timing and power models.

For one kernel at one configuration, the interval model's breakdown
supplies the *activity factors* (how busy the compute domain and the
memory interface actually were), the power model converts those into
board power, and power x time gives energy. Sweeping that over the
891-point grid yields the energy surface the DVFS analyses consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gpu.config import HardwareConfig
from repro.gpu.interval_model import IntervalModel, KernelRunResult
from repro.kernels.kernel import Kernel
from repro.power.model import DEFAULT_POWER_MODEL, PowerModel
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace


@dataclass(frozen=True)
class EnergyResult:
    """Energy accounting of one kernel execution."""

    kernel_name: str
    config: HardwareConfig
    time_s: float
    power_w: float
    compute_activity: float
    memory_activity: float
    global_size: int

    @property
    def energy_j(self) -> float:
        """Energy consumed by the execution, in joules."""
        return self.time_s * self.power_w

    @property
    def edp(self) -> float:
        """Energy-delay product (J*s) — the classic DVFS objective."""
        return self.energy_j * self.time_s

    @property
    def items_per_joule(self) -> float:
        """Work-items completed per joule (energy efficiency)."""
        return self.global_size / self.energy_j


def _activities(result: KernelRunResult) -> tuple:
    """Derive (compute, memory) activity factors from a timing result.

    Each domain's activity is the fraction of the kernel's runtime its
    bottleneck interval would occupy alone — a busy-time approximation
    that is exact when the interval dominates and conservative when it
    overlaps.
    """
    breakdown = result.breakdown
    compute_busy = breakdown.compute_s + breakdown.salu_s + breakdown.lds_s
    compute_activity = min(1.0, compute_busy / result.time_s)
    memory_activity = min(1.0, breakdown.dram_s / result.time_s)
    return compute_activity, memory_activity


class EnergyModel:
    """Energy evaluation of kernels across configurations."""

    def __init__(
        self,
        power_model: Optional[PowerModel] = None,
        timing_model: Optional[IntervalModel] = None,
    ):
        self._power = power_model or DEFAULT_POWER_MODEL
        self._timing = timing_model or IntervalModel()

    def evaluate(
        self, kernel: Kernel, config: HardwareConfig
    ) -> EnergyResult:
        """Time, power and energy of *kernel* at *config*."""
        result = self._timing.simulate(kernel, config)
        compute_activity, memory_activity = _activities(result)
        power = self._power.board_power_w(
            config, compute_activity, memory_activity
        )
        return EnergyResult(
            kernel_name=kernel.full_name,
            config=config,
            time_s=result.time_s,
            power_w=power,
            compute_activity=compute_activity,
            memory_activity=memory_activity,
            global_size=result.global_size,
        )

    def energy_cube(
        self,
        kernel: Kernel,
        space: ConfigurationSpace = PAPER_SPACE,
    ) -> np.ndarray:
        """Energy (J) of *kernel* at every configuration of *space*."""
        n_cu, n_eng, n_mem = space.shape
        cube = np.empty(space.shape, dtype=np.float64)
        for c in range(n_cu):
            for e in range(n_eng):
                for m in range(n_mem):
                    cube[c, e, m] = self.evaluate(
                        kernel, space.config(c, e, m)
                    ).energy_j
        return cube

    def time_and_energy_cubes(
        self,
        kernel: Kernel,
        space: ConfigurationSpace = PAPER_SPACE,
    ) -> tuple:
        """(time, energy) cubes in one pass over the space."""
        n_cu, n_eng, n_mem = space.shape
        time_cube = np.empty(space.shape, dtype=np.float64)
        energy_cube = np.empty(space.shape, dtype=np.float64)
        for c in range(n_cu):
            for e in range(n_eng):
                for m in range(n_mem):
                    result = self.evaluate(kernel, space.config(c, e, m))
                    time_cube[c, e, m] = result.time_s
                    energy_cube[c, e, m] = result.energy_j
        return time_cube, energy_cube
