"""Energy accounting: coupling the timing and power models.

For one kernel at one configuration, the interval model's breakdown
supplies the *activity factors* (how busy the compute domain and the
memory interface actually were), the power model converts those into
board power, and power x time gives energy. The surface path evaluates
the whole 891-point grid as one batch: activity factors come straight
from the batch interval terms and the power model broadcasts over the
lattice, so an energy surface costs one engine grid call instead of
891 point calls. The scalar :meth:`EnergyModel.evaluate` remains the
reference the surfaces are pinned against (rtol=1e-12 in
``tests/power/test_energy.py``).

Timing comes from the engine registry: ``EnergyModel(engine="...")``
accepts any registered engine name (or a prebuilt
:class:`~repro.gpu.simulator.GpuSimulator`), so energy analyses honour
the same fidelity tiers as everything else. Surrogate tiers (the k-NN
predictor) report zeroed interval breakdowns; their activity factors
are therefore zero and they price the static/idle power floor — the
exact interval family is the calibrated path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.config import HardwareConfig
from repro.gpu.interval_model import IntervalModel
from repro.gpu.simulator import GpuSimulator
from repro.kernels.kernel import Kernel
from repro.power.model import DEFAULT_POWER_MODEL, PowerModel
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace


@dataclass(frozen=True)
class EnergyResult:
    """Energy accounting of one kernel execution."""

    kernel_name: str
    config: HardwareConfig
    time_s: float
    power_w: float
    compute_activity: float
    memory_activity: float
    global_size: int

    @property
    def energy_j(self) -> float:
        """Energy consumed by the execution, in joules."""
        return self.time_s * self.power_w

    @property
    def edp(self) -> float:
        """Energy-delay product (J*s) — the classic DVFS objective."""
        return self.energy_j * self.time_s

    @property
    def items_per_joule(self) -> float:
        """Work-items completed per joule (energy efficiency)."""
        return self.global_size / self.energy_j


@dataclass(frozen=True)
class EnergySurface:
    """Time/power/energy of one kernel over a whole configuration grid.

    Arrays have ``space.shape`` (``(n_cu, n_eng, n_mem)``), indexed
    exactly like :meth:`ConfigurationSpace.config`.
    """

    kernel_name: str
    space: ConfigurationSpace
    time_s: np.ndarray
    power_w: np.ndarray
    energy_j: np.ndarray
    compute_activity: np.ndarray
    memory_activity: np.ndarray
    global_size: int

    @property
    def edp(self) -> np.ndarray:
        """Energy-delay product (J*s) at every grid point."""
        return self.energy_j * self.time_s

    @property
    def items_per_second(self) -> np.ndarray:
        """Throughput at every grid point."""
        return self.global_size / self.time_s

    @property
    def items_per_joule(self) -> np.ndarray:
        """Energy efficiency at every grid point."""
        return self.global_size / self.energy_j

    def result_at(self, c: int, e: int, m: int) -> EnergyResult:
        """The scalar :class:`EnergyResult` view of one lattice point."""
        return EnergyResult(
            kernel_name=self.kernel_name,
            config=self.space.config(c, e, m),
            time_s=float(self.time_s[c, e, m]),
            power_w=float(self.power_w[c, e, m]),
            compute_activity=float(self.compute_activity[c, e, m]),
            memory_activity=float(self.memory_activity[c, e, m]),
            global_size=self.global_size,
        )


def _activities(result) -> Tuple[float, float]:
    """Derive (compute, memory) activity factors from a timing result.

    Each domain's activity is the fraction of the kernel's runtime its
    bottleneck interval would occupy alone — a busy-time approximation
    that is exact when the interval dominates and conservative when it
    overlaps. Results without an interval breakdown (surrogate tiers)
    contribute zero switching activity.
    """
    breakdown = getattr(result, "breakdown", None)
    if breakdown is None:
        return 0.0, 0.0
    compute_busy = breakdown.compute_s + breakdown.salu_s + breakdown.lds_s
    compute_activity = min(1.0, compute_busy / result.time_s)
    memory_activity = min(1.0, breakdown.dram_s / result.time_s)
    return compute_activity, memory_activity


class EnergyModel:
    """Energy evaluation of kernels across configurations.

    Timing is supplied either by a legacy point model
    (*timing_model*, the scalar interval oracle) or by the engine
    registry (*engine* name / prebuilt *simulator*); the default is the
    ``"interval"`` registry engine, whose grid calls resolve to the
    vectorized batch sibling.
    """

    def __init__(
        self,
        power_model: Optional[PowerModel] = None,
        timing_model: Optional[IntervalModel] = None,
        engine: Optional[str] = None,
        simulator: Optional[GpuSimulator] = None,
    ):
        if timing_model is not None and (
            engine is not None or simulator is not None
        ):
            raise ConfigurationError(
                "pass either timing_model or engine/simulator, not both"
            )
        if engine is not None and simulator is not None:
            raise ConfigurationError(
                "pass either engine or simulator, not both"
            )
        self._power = power_model or DEFAULT_POWER_MODEL
        self._timing = timing_model
        if timing_model is None:
            self._simulator = simulator or GpuSimulator(
                engine or "interval"
            )
        else:
            self._simulator = None

    @property
    def power_model(self) -> PowerModel:
        """The board-power model energy is priced with."""
        return self._power

    @property
    def simulator(self) -> Optional[GpuSimulator]:
        """The registry-backed simulator (None in legacy point mode)."""
        return self._simulator

    def evaluate(
        self, kernel: Kernel, config: HardwareConfig
    ) -> EnergyResult:
        """Time, power and energy of *kernel* at *config*."""
        if self._simulator is not None:
            result = self._simulator.simulate(kernel, config)
        else:
            result = self._timing.simulate(kernel, config)
        compute_activity, memory_activity = _activities(result)
        power = self._power.board_power_w(
            config, compute_activity, memory_activity
        )
        return EnergyResult(
            kernel_name=kernel.full_name,
            config=config,
            time_s=result.time_s,
            power_w=power,
            compute_activity=compute_activity,
            memory_activity=memory_activity,
            global_size=kernel.geometry.global_size,
        )

    def surfaces(
        self,
        kernel: Kernel,
        space: ConfigurationSpace = PAPER_SPACE,
    ) -> EnergySurface:
        """Time/power/energy of *kernel* over all of *space* at once.

        One engine grid call supplies the batch interval terms; the
        activity-factor and power arithmetic mirrors the scalar path
        operation by operation, so on the interval family every element
        matches :meth:`evaluate` to the batch engine's rtol=1e-12
        equivalence bound.
        """
        if self._simulator is None:
            return self._surfaces_scalar(kernel, space)
        grid = self._simulator.simulate_grid(kernel, space)
        breakdown = grid.breakdown
        compute_busy = (
            breakdown.compute_s + breakdown.salu_s + breakdown.lds_s
        )
        compute_activity = np.minimum(
            1.0, compute_busy / grid.time_s
        )
        memory_activity = np.minimum(
            1.0, breakdown.dram_s / grid.time_s
        )
        compute_activity = np.ascontiguousarray(
            np.broadcast_to(compute_activity, space.shape)
        )
        memory_activity = np.ascontiguousarray(
            np.broadcast_to(memory_activity, space.shape)
        )
        power_w = self._power.board_power_surface(
            space, compute_activity, memory_activity
        )
        time_s = np.ascontiguousarray(grid.time_s, dtype=np.float64)
        energy_j = time_s * power_w
        return EnergySurface(
            kernel_name=kernel.full_name,
            space=space,
            time_s=time_s,
            power_w=power_w,
            energy_j=energy_j,
            compute_activity=compute_activity,
            memory_activity=memory_activity,
            global_size=grid.global_size,
        )

    def _surfaces_scalar(
        self, kernel: Kernel, space: ConfigurationSpace
    ) -> EnergySurface:
        """Point-loop surface fallback for legacy point-only timing."""
        n_cu, n_eng, n_mem = space.shape
        time_s = np.empty(space.shape, dtype=np.float64)
        power_w = np.empty(space.shape, dtype=np.float64)
        compute_activity = np.empty(space.shape, dtype=np.float64)
        memory_activity = np.empty(space.shape, dtype=np.float64)
        for c in range(n_cu):
            for e in range(n_eng):
                for m in range(n_mem):
                    result = self.evaluate(kernel, space.config(c, e, m))
                    time_s[c, e, m] = result.time_s
                    power_w[c, e, m] = result.power_w
                    compute_activity[c, e, m] = result.compute_activity
                    memory_activity[c, e, m] = result.memory_activity
        return EnergySurface(
            kernel_name=kernel.full_name,
            space=space,
            time_s=time_s,
            power_w=power_w,
            energy_j=time_s * power_w,
            compute_activity=compute_activity,
            memory_activity=memory_activity,
            global_size=kernel.geometry.global_size,
        )

    def energy_cube(
        self,
        kernel: Kernel,
        space: ConfigurationSpace = PAPER_SPACE,
    ) -> np.ndarray:
        """Energy (J) of *kernel* at every configuration of *space*."""
        return self.surfaces(kernel, space).energy_j

    def time_and_energy_cubes(
        self,
        kernel: Kernel,
        space: ConfigurationSpace = PAPER_SPACE,
    ) -> tuple:
        """(time, energy) cubes in one pass over the space."""
        surface = self.surfaces(kernel, space)
        return surface.time_s, surface.energy_j
