"""Extension: power/energy modelling and energy-aware DVFS analysis.

Couples the timing model's activity factors with a CMOS-style board
power model, then optimises over the 891-configuration space for
min-energy / min-EDP / capped-power objectives. See DESIGN.md's
extension notes; this mirrors the paper group's published follow-on
direction (the dataset drove AMD Research's power-management work).
"""

from repro.power.dvfs_opt import DvfsOptimizer, Objective, OperatingPoint
from repro.power.energy import EnergyModel, EnergyResult
from repro.power.model import (
    DEFAULT_POWER_MODEL,
    PowerBreakdown,
    PowerModel,
    VoltageCurve,
)

__all__ = [
    "DEFAULT_POWER_MODEL",
    "DvfsOptimizer",
    "EnergyModel",
    "EnergyResult",
    "Objective",
    "OperatingPoint",
    "PowerBreakdown",
    "PowerModel",
    "VoltageCurve",
]
