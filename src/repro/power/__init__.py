"""Extension: power/energy modelling and energy-aware DVFS analysis.

Couples the timing model's activity factors with a CMOS-style board
power model, then optimises over the 891-configuration space for
min-energy / min-EDP / capped-power objectives — vectorized over the
batch lattice, so an energy surface or Pareto frontier costs one
engine grid call. See DESIGN.md's extension notes; this mirrors the
paper group's published follow-on direction (the dataset drove AMD
Research's power-management work).
"""

from repro.power.dvfs_opt import (
    DvfsOptimizer,
    FrontierPoint,
    Objective,
    OperatingPoint,
    frontier_indices,
    frontier_points,
    select_optimum,
)
from repro.power.energy import EnergyModel, EnergyResult, EnergySurface
from repro.power.model import (
    DEFAULT_POWER_MODEL,
    PowerBreakdown,
    PowerModel,
    VoltageCurve,
)

__all__ = [
    "DEFAULT_POWER_MODEL",
    "DvfsOptimizer",
    "EnergyModel",
    "EnergyResult",
    "EnergySurface",
    "FrontierPoint",
    "Objective",
    "OperatingPoint",
    "PowerBreakdown",
    "PowerModel",
    "VoltageCurve",
    "frontier_indices",
    "frontier_points",
    "select_optimum",
]
