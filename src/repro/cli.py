"""Command-line interface.

Usage (installed as ``gpuscale`` or via ``python -m repro.cli``)::

    gpuscale catalog                    # suite/program/kernel inventory
    gpuscale sweep --out data.npz       # collect the full dataset
    gpuscale sweep --resume             # resume an interrupted campaign
    gpuscale classify [--data data.npz] # taxonomy labels + histogram
    gpuscale report [T3 F7 ...]         # regenerate tables/figures
    gpuscale kernel rodinia/bfs.kernel1 # one kernel's scaling detail
    gpuscale engines                    # registered timing engines
    gpuscale families                   # microarchitecture families
    gpuscale transfer rodinia/bfs.kernel1 --from hawaii --to kaveri
    gpuscale transfer --evaluate --from hawaii --to kaveri
    gpuscale optimize rodinia/bfs.kernel1 --objective min_energy
    gpuscale optimize rodinia/bfs.kernel1 --frontier --power-cap 150
    gpuscale coschedule rodinia/bfs.kernel1 rodinia/nw.kernel1
    gpuscale coschedule --matrix        # class-composition matrix
    gpuscale cache info                 # sweep result cache contents
    gpuscale cache clear                # drop every cached sweep

``sweep`` runs as a fault-tolerant campaign: progress is journaled to
``<out>.journal`` chunk by chunk, a failing kernel is quarantined
(reported, NaN row) instead of aborting — ``--strict`` restores
fail-fast — and ``--resume`` continues an interrupted run from the last
completed chunk instead of restarting all 237,897 points.

``classify``, ``report``, and ``kernel`` consult a content-addressed
sweep result cache when no ``--data`` file is given: the first run
simulates and stores the dataset keyed by a SHA-256 of the kernels,
space, and engine; repeat runs load it without invoking the engine.
``--no-cache`` bypasses the cache, ``--cache-dir`` relocates it, and
``gpuscale cache clear`` invalidates it explicitly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.report.experiments import (
    EXPERIMENTS,
    ExperimentContext,
    run_experiment,
)
from repro.report.tables import render_table
from repro.suites import all_kernels, all_suites
from repro.sweep.dataset import ScalingDataset
from repro.sweep.runner import collect_paper_dataset
from repro.sweep.space import PAPER_SPACE
from repro.sweep.views import Axis, axis_slice
from repro.taxonomy.classifier import classify


def _cmd_catalog(args: argparse.Namespace) -> int:
    if args.programs:
        for suite in all_suites():
            if args.programs not in ("all", suite.name):
                continue
            print(f"{suite.name}: {suite.description}")
            for program in suite.programs:
                print(f"  {program.name} ({program.kernel_count} "
                      f"kernels): {program.description.strip()}")
            print()
        return 0
    rows = []
    for suite in all_suites():
        rows.append([suite.name, suite.program_count, suite.kernel_count])
    rows.append(
        ["total", sum(r[1] for r in rows), sum(r[2] for r in rows)]
    )
    print(render_table(["suite", "programs", "kernels"], rows))
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    from repro.predict.what_if import what_if
    from repro.suites import kernel_by_name

    kernel = kernel_by_name(args.kernel)
    results = what_if(kernel)
    rows = [
        [r.scenario.name, r.scenario.description, r.speedup]
        for r in results
    ]
    print(render_table(
        ["optimisation", "description", "throughput gain"],
        rows,
        title=f"What-if playbook for {args.kernel} (flagship config)",
    ))
    return 0


def _progress(done: int, total: int) -> None:
    sys.stderr.write(f"\rsweeping kernels: {done}/{total}")
    sys.stderr.flush()
    if done == total:
        sys.stderr.write("\n")


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep.campaign import CampaignRunner
    from repro.sweep.parallel import ParallelSweepRunner
    from repro.sweep.runner import SweepRunner

    if args.workers and args.workers > 1:
        inner = ParallelSweepRunner(
            engine=args.engine, workers=args.workers,
            grid_mode=args.engine_mode,
        )
    else:
        inner = SweepRunner(
            engine=args.engine, grid_mode=args.engine_mode
        )
    journal = args.journal or f"{args.out}.journal"
    runner = CampaignRunner(
        journal,
        runner=inner,
        chunk_size=args.chunk_size,
        strict=args.strict,
    )
    dataset, report = runner.run(
        all_kernels(), PAPER_SPACE, progress=_progress,
        resume=args.resume,
    )
    for line in report.summary_lines():
        print(line)
    path = dataset.save(args.out)
    print(f"dataset written to {path}")
    if args.csv:
        csv_path = dataset.export_csv(args.csv)
        print(f"CSV export written to {csv_path}")
    return 0


def _make_cache(args: argparse.Namespace):
    """The result cache selected by ``--no-cache``/``--cache-dir``."""
    if getattr(args, "no_cache", False):
        return None
    from repro.sweep.cache import SweepCache

    return SweepCache(getattr(args, "cache_dir", None))


def _load_or_collect(
    data: Optional[str], cache=None
) -> ScalingDataset:
    if data:
        dataset = ScalingDataset.load(data).validate()
        if dataset.quarantined:
            names = ", ".join(sorted(dataset.quarantined))
            sys.stderr.write(
                f"warning: dropping {len(dataset.quarantined)} "
                f"quarantined kernel rows: {names}\n"
            )
            dataset = dataset.healthy()
        return dataset
    if cache is not None:
        from repro.sweep.cache import cached_paper_dataset

        return cached_paper_dataset(
            progress=_progress, cache=cache
        ).validate()
    return collect_paper_dataset(progress=_progress).validate()


def _cmd_classify(args: argparse.Namespace) -> int:
    dataset = _load_or_collect(args.data, cache=_make_cache(args))
    result = classify(dataset)
    rows = [
        [cat.value, n] for cat, n in result.category_counts().items()
    ]
    print(render_table(["category", "kernels"], rows,
                       title="Taxonomy classification"))
    if args.verbose:
        for label in result.labels:
            behaviours = "/".join(b.value for b in label.behaviours)
            print(f"{label.kernel_name:48s} {label.category.value:20s} "
                  f"{behaviours}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    ids = [e.upper() for e in args.experiments] or sorted(EXPERIMENTS)
    ctx = ExperimentContext(cache=_make_cache(args))
    if args.out:
        from repro.report.artifacts import write_artifacts

        written = write_artifacts(args.out, ids, ctx)
        for experiment_id, path in written.items():
            print(f"{experiment_id} -> {path}")
        return 0
    for experiment_id in ids:
        result = run_experiment(experiment_id, ctx)
        print(result.text)
        print()
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    from repro.power import DvfsOptimizer, EnergyModel, Objective
    from repro.suites import kernel_by_name

    kernel = kernel_by_name(args.kernel)
    energy_model = EnergyModel()
    optimizer = DvfsOptimizer(energy_model)
    objective = Objective(args.objective)
    point = optimizer.optimise(kernel, objective,
                               power_cap_w=args.power_cap)

    from repro.sweep import PAPER_SPACE

    flagship = energy_model.evaluate(kernel, PAPER_SPACE.max_config)
    chosen = energy_model.evaluate(kernel, point.config)
    print(f"kernel:            {kernel.full_name}")
    print(f"objective:         {objective.value}"
          + (f" (cap {args.power_cap} W)" if args.power_cap else ""))
    print(f"operating point:   {point.config.label()}")
    print(f"power:             {chosen.power_w:.1f} W "
          f"(flagship {flagship.power_w:.1f} W)")
    print(f"energy vs flagship: "
          f"{100 * (1 - chosen.energy_j / flagship.energy_j):+.1f}% saved")
    print(f"time vs flagship:   "
          f"{100 * (chosen.time_s / flagship.time_s - 1):+.1f}%")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.errors import AnalysisError
    from repro.power import EnergyModel, Objective
    from repro.power.dvfs_opt import frontier_points, select_optimum
    from repro.suites import kernel_by_name

    kernel = kernel_by_name(args.kernel)
    objective = Objective(args.objective)
    if args.pair is not None:
        if args.engine is not None:
            print("gpuscale optimize: --engine applies to solo "
                  "kernels only (the co-schedule model prices pairs)",
                  file=sys.stderr)
            return 2
        from repro.coschedule import CoScheduleModel

        partner = kernel_by_name(args.pair)
        surface = CoScheduleModel().pair_surface(
            kernel, partner, PAPER_SPACE
        )
        time_s = surface.makespan_s
        energy_j = surface.energy_j
        power_w = surface.power_w
        subject = f"{kernel.full_name} + {partner.full_name}"
    else:
        surfaces = EnergyModel(engine=args.engine).surfaces(
            kernel, PAPER_SPACE
        )
        time_s = surfaces.time_s
        energy_j = surfaces.energy_j
        power_w = surfaces.power_w
        subject = kernel.full_name

    if args.frontier:
        points = frontier_points(
            PAPER_SPACE, time_s, energy_j, power_w, args.power_cap
        )
        if args.json:
            print(json_mod.dumps([
                {
                    "config": p.config.label(),
                    "time_s": p.time_s,
                    "energy_j": p.energy_j,
                    "power_w": p.power_w,
                }
                for p in points
            ], indent=2))
            return 0
        rows = [
            [p.config.label(), f"{p.time_s:.3e}",
             f"{p.energy_j:.3e}", f"{p.power_w:.1f}"]
            for p in points
        ]
        print(render_table(
            ["configuration", "time (s)", "energy (J)", "power (W)"],
            rows,
            title=f"Energy/perf Pareto frontier for {subject}"
            + (f" (cap {args.power_cap:g} W)" if args.power_cap else ""),
        ))
        return 0

    try:
        c, e, m = select_optimum(
            time_s, energy_j, power_w, objective, args.power_cap
        )
    except AnalysisError as exc:
        print(f"gpuscale optimize: {exc}", file=sys.stderr)
        return 1
    config = PAPER_SPACE.config(c, e, m)
    chosen_t = float(time_s[c, e, m])
    chosen_e = float(energy_j[c, e, m])
    chosen_p = float(power_w[c, e, m])
    if args.json:
        print(json_mod.dumps({
            "kernel": kernel.full_name,
            "kernel_b": args.pair and kernel_by_name(args.pair).full_name,
            "objective": objective.value,
            "power_cap_w": args.power_cap,
            "config": config.label(),
            "time_s": chosen_t,
            "energy_j": chosen_e,
            "power_w": chosen_p,
            "edp": chosen_t * chosen_e,
        }, indent=2))
        return 0
    print(f"subject:          {subject}")
    print(f"objective:        {objective.value}"
          + (f" (cap {args.power_cap:g} W)" if args.power_cap else ""))
    print(f"operating point:  {config.label()}")
    print(f"time:             {chosen_t:.3e} s")
    print(f"energy:           {chosen_e:.3e} J")
    print(f"power:            {chosen_p:.1f} W")
    print(f"edp:              {chosen_t * chosen_e:.3e} J*s")
    return 0


def _cmd_coschedule(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.coschedule import CoScheduleModel

    if args.matrix:
        from repro.analysis import class_composition_matrix

        matrix = class_composition_matrix()
        if args.json:
            print(json_mod.dumps(matrix.to_dict(), indent=2))
            return 0
        print(matrix.render())
        pairs = matrix.destructive_pairs
        if pairs:
            print("\nscaling-destroying pairings (victim x partner):")
            for a, b in pairs:
                print(f"  {a.value} x {b.value}")
        else:
            print("\nno pairing destroys a scaling class")
        return 0

    if args.kernel_a is None or args.kernel_b is None:
        print("gpuscale coschedule: two kernel identifiers are "
              "required unless --matrix is given", file=sys.stderr)
        return 2
    from repro.suites import kernel_by_name

    kernel_a = kernel_by_name(args.kernel_a)
    kernel_b = kernel_by_name(args.kernel_b)
    model = CoScheduleModel()

    point_flags = (args.cu, args.eng, args.mem)
    if any(f is not None for f in point_flags):
        if any(f is None for f in point_flags):
            print("gpuscale coschedule: --cu, --eng and --mem must be "
                  "given together", file=sys.stderr)
            return 2
        try:
            c = PAPER_SPACE.cu_counts.index(args.cu)
            e = PAPER_SPACE.engine_mhz.index(args.eng)
            m = PAPER_SPACE.memory_mhz.index(args.mem)
        except ValueError:
            print("gpuscale coschedule: configuration off the paper "
                  f"grid; cu in {PAPER_SPACE.cu_counts}, engine in "
                  f"{PAPER_SPACE.engine_mhz}, memory in "
                  f"{PAPER_SPACE.memory_mhz}", file=sys.stderr)
            return 2
        result = model.evaluate(kernel_a, kernel_b, PAPER_SPACE.config(c, e, m))
        if args.json:
            print(json_mod.dumps({
                "config": result.config.label(),
                "a": {
                    "kernel": result.a.kernel_name,
                    "cu_allotment": result.a.cu_allotment,
                    "time_s": result.a.time_s,
                    "solo_time_s": result.a.solo_time_s,
                    "slowdown": result.a.time_s / result.a.solo_time_s,
                    "bandwidth_share": result.a.dram_demand_share,
                },
                "b": {
                    "kernel": result.b.kernel_name,
                    "cu_allotment": result.b.cu_allotment,
                    "time_s": result.b.time_s,
                    "solo_time_s": result.b.solo_time_s,
                    "slowdown": result.b.time_s / result.b.solo_time_s,
                    "bandwidth_share": result.b.dram_demand_share,
                },
                "makespan_s": result.makespan_s,
                "power_w": result.power_w,
                "energy_j": result.energy_j,
                "stp": result.stp,
                "antt": result.antt,
            }, indent=2))
            return 0
        print(f"configuration:  {result.config.label()}")
        for label, share in (("A", result.a), ("B", result.b)):
            print(f"kernel {label}:       {share.kernel_name}")
            print(f"  CUs           {share.cu_allotment}")
            print(f"  time          {share.time_s:.3e} s "
                  f"(solo {share.solo_time_s:.3e} s, "
                  f"slowdown {share.time_s / share.solo_time_s:.2f}x)")
            print(f"  bw share      {share.dram_demand_share:.3f}")
        print(f"makespan:       {result.makespan_s:.3e} s")
        print(f"power:          {result.power_w:.1f} W")
        print(f"energy:         {result.energy_j:.3e} J")
        print(f"STP:            {result.stp:.3f}")
        print(f"ANTT:           {result.antt:.3f}")
        return 0

    surface = model.pair_surface(kernel_a, kernel_b, PAPER_SPACE)
    import numpy as np

    stp = surface.stp
    antt = surface.antt
    best = np.unravel_index(int(np.argmax(stp)), stp.shape)
    best_config = PAPER_SPACE.config(*best)
    if args.json:
        print(json_mod.dumps({
            "kernel_a": surface.kernel_a,
            "kernel_b": surface.kernel_b,
            "stp": {"min": float(stp.min()), "mean": float(stp.mean()),
                    "max": float(stp.max())},
            "antt": {"min": float(antt.min()),
                     "mean": float(antt.mean()),
                     "max": float(antt.max())},
            "slowdown_a": {"min": float(surface.slowdown_a.min()),
                           "max": float(surface.slowdown_a.max())},
            "slowdown_b": {"min": float(surface.slowdown_b.min()),
                           "max": float(surface.slowdown_b.max())},
            "best_stp_config": best_config.label(),
            "best_stp": float(stp[best]),
        }, indent=2))
        return 0
    print(f"pair:           {surface.kernel_a} + {surface.kernel_b}")
    print(f"grid:           {'x'.join(str(n) for n in stp.shape)} "
          "(paper space)")
    print(f"STP:            min {stp.min():.3f}  mean {stp.mean():.3f}"
          f"  max {stp.max():.3f}")
    print(f"ANTT:           min {antt.min():.3f}  "
          f"mean {antt.mean():.3f}  max {antt.max():.3f}")
    print(f"slowdown A:     {surface.slowdown_a.min():.2f}x - "
          f"{surface.slowdown_a.max():.2f}x")
    print(f"slowdown B:     {surface.slowdown_b.min():.2f}x - "
          f"{surface.slowdown_b.max():.2f}x")
    print(f"best STP:       {stp[best]:.3f} at {best_config.label()}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service.server import ServiceConfig, run_service

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}")
        return 2
    chaos = None
    if args.chaos:
        from repro.service.chaos import ChaosSpecError, parse_chaos

        try:
            chaos = parse_chaos(args.chaos)
        except ChaosSpecError as exc:
            print(f"--chaos rejected: {exc}")
            return 2
    if args.restart_budget < 1 or args.restart_window <= 0:
        print(
            "--restart-budget must be >= 1 and --restart-window > 0, "
            f"got {args.restart_budget}/{args.restart_window:g}"
        )
        return 2
    if args.hedge_fraction is not None and not (
        0.0 < args.hedge_fraction <= 1.0
    ):
        print(
            "--hedge-fraction must be in (0, 1], got "
            f"{args.hedge_fraction:g} (use --no-hedge to disable)"
        )
        return 2
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        engine=args.engine,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_limit=args.queue_limit,
        request_timeout_s=args.request_timeout,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        workers=args.workers,
        brownout=args.brownout,
        restart_budget=args.restart_budget,
        restart_window_s=args.restart_window,
        hedge_fraction=(
            None if args.no_hedge else args.hedge_fraction
        ),
        chaos=chaos,
    )

    async def main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # non-Unix event loops
                pass

        def ready(service) -> None:
            print(
                "gpuscale serve listening on "
                f"http://{config.host}:{service.port} "
                f"(engine={config.engine} max_batch={config.max_batch} "
                f"max_wait_ms={config.max_wait_ms:g} "
                f"workers={config.workers})",
                flush=True,
            )

        await run_service(config, stop_event=stop, ready_callback=ready)

    asyncio.run(main())
    print("gpuscale serve drained cleanly")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.sweep.cache import SweepCache

    cache = SweepCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entr"
              f"{'y' if removed == 1 else 'ies'} "
              f"from {cache.cache_dir}")
        return 0
    entries = cache.entries()
    print(f"cache directory: {cache.cache_dir}")
    print(f"entries:         {len(entries)}")
    for path in entries:
        size_kib = path.stat().st_size / 1024
        print(f"  {path.name}  ({size_kib:.0f} KiB)")
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    dataset = _load_or_collect(args.data, cache=_make_cache(args))
    result = classify(dataset)
    label = result.label_for(args.kernel)
    print(f"kernel:   {args.kernel}")
    print(f"category: {label.category.value}")
    for axis in Axis:
        slice_ = axis_slice(dataset, args.kernel, axis)
        behaviour = {
            Axis.CU: label.cu_behaviour,
            Axis.ENGINE: label.engine_behaviour,
            Axis.MEMORY: label.memory_behaviour,
        }[axis]
        curve = " ".join(f"{v:.2f}" for v in slice_.speedup)
        print(f"{axis.value:7s} [{behaviour.value:10s}] {curve}")

    from repro.taxonomy.explain import explain_label

    print()
    print(explain_label(label))

    from repro.gpu.counters import collect_counters
    from repro.suites import kernel_by_name
    from repro.sweep import PAPER_SPACE

    counters = collect_counters(
        kernel_by_name(args.kernel), PAPER_SPACE.max_config
    )
    print("\nflagship counters:")
    print(f"  duration     {counters.duration_us:.1f} us")
    print(f"  VALU busy    {100 * counters.valu_busy_fraction:.0f}%")
    print(f"  GFLOP/s      {counters.achieved_gflops:.0f}")
    print(f"  DRAM         {counters.achieved_dram_gbps:.1f} GB/s "
          f"({100 * counters.dram_utilisation:.0f}% of peak)")
    print(f"  L2 hit       {100 * counters.l2_hit_rate:.0f}%")
    print(f"  occupancy    {counters.occupancy_waves} waves/CU "
          f"(limited by {counters.occupancy_limiter})")
    print(f"  bottleneck   {counters.bottleneck}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="gpuscale",
        description=(
            "Reproduction of 'A Taxonomy of GPGPU Performance Scaling' "
            "(IISWC 2015)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    catalog = sub.add_parser("catalog", help="print the suite inventory")
    catalog.add_argument(
        "--programs", nargs="?", const="all", default=None,
        metavar="SUITE",
        help="list programs with descriptions (optionally one suite)",
    )

    whatif = sub.add_parser(
        "whatif",
        help="rank standard optimisations for one kernel by payoff",
    )
    whatif.add_argument("kernel", help="suite/program.kernel identifier")

    from repro.gpu.engine import engine_names

    sweep = sub.add_parser("sweep", help="collect the full dataset")
    sweep.add_argument("--out", default="scaling_dataset.npz",
                       help="output .npz path")
    sweep.add_argument("--csv", default=None,
                       help="also export long-format CSV here")
    sweep.add_argument("--engine", default="interval",
                       choices=list(engine_names()),
                       help="registered timing engine to simulate with "
                       "(default: interval; see 'gpuscale engines')")
    sweep.add_argument("--engine-mode", default="batch",
                       choices=["batch", "scalar", "study"],
                       help="grid evaluation path: the per-kernel "
                       "vectorized batch engine (default), the "
                       "per-point scalar oracle for debugging batch "
                       "regressions, or whole-study kernel-axis "
                       "batching (fastest; one broadcast over the "
                       "entire kernel x configuration lattice)")
    sweep.add_argument("--resume", action="store_true",
                       help="resume from the campaign journal instead "
                       "of restarting from scratch")
    sweep.add_argument("--journal", default=None, metavar="DIR",
                       help="campaign journal directory "
                       "(default: <out>.journal)")
    sweep.add_argument("--strict", action="store_true",
                       help="abort on the first failing kernel instead "
                       "of quarantining it")
    sweep.add_argument("--chunk-size", type=int, default=16,
                       metavar="N",
                       help="kernels per checkpointed chunk "
                       "(default: 16)")
    sweep.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes for the sweep "
                       "(default: 1, serial)")

    def add_cache_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--no-cache", action="store_true",
                       help="always re-simulate; do not read or write "
                       "the sweep result cache")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="sweep result cache directory (default: "
                       "$GPUSCALE_CACHE_DIR or ~/.cache/gpuscale)")

    classify_p = sub.add_parser("classify", help="run the taxonomy")
    classify_p.add_argument("--data", default=None,
                            help="saved dataset (.npz); sweeps if omitted")
    classify_p.add_argument("-v", "--verbose", action="store_true",
                            help="print every kernel's label")
    add_cache_flags(classify_p)

    report = sub.add_parser("report", help="regenerate tables/figures")
    report.add_argument("experiments", nargs="*",
                        help="experiment IDs (default: all)")
    report.add_argument("--out", default=None,
                        help="write Markdown+JSON artifacts to this "
                        "directory instead of stdout")
    add_cache_flags(report)

    sub.add_parser(
        "summary",
        help="the study's abstract-style summary with measured numbers",
    )

    energy = sub.add_parser(
        "energy", help="energy-optimal operating point for one kernel"
    )
    energy.add_argument("kernel", help="suite/program.kernel identifier")
    energy.add_argument("--objective", default="min_edp",
                        choices=["min_energy", "min_edp", "max_perf"],
                        help="DVFS objective (default: min_edp)")
    energy.add_argument("--power-cap", type=float, default=None,
                        help="board power cap in watts")

    optimize = sub.add_parser(
        "optimize",
        help="energy-optimal configuration or Pareto frontier for a "
        "kernel (or a co-scheduled pair)",
    )
    optimize.add_argument("kernel", help="suite/program.kernel identifier")
    optimize.add_argument("--pair", default=None, metavar="KERNEL_B",
                          help="co-resident partner kernel: optimise "
                          "the pair's makespan/energy surface instead")
    optimize.add_argument("--objective", default="min_edp",
                          choices=["min_energy", "min_edp", "max_perf"],
                          help="selection objective (default: min_edp)")
    optimize.add_argument("--power-cap", type=float, default=None,
                          metavar="W", help="board power cap in watts")
    optimize.add_argument("--frontier", action="store_true",
                          help="print the full (time, energy) Pareto "
                          "frontier instead of one operating point")
    optimize.add_argument("--engine", default=None,
                          choices=list(engine_names()),
                          help="registered timing engine pricing the "
                          "solo surface (default: interval)")
    optimize.add_argument("--json", action="store_true",
                          help="emit JSON instead of text")

    coschedule = sub.add_parser(
        "coschedule",
        help="contended outcome of two co-resident kernels, or the "
        "taxonomy class-composition matrix",
    )
    coschedule.add_argument("kernel_a", nargs="?", default=None,
                            help="first kernel (omit with --matrix)")
    coschedule.add_argument("kernel_b", nargs="?", default=None,
                            help="co-resident partner kernel")
    coschedule.add_argument("--cu", type=int, default=None,
                            help="CU count for a single-point query")
    coschedule.add_argument("--eng", type=float, default=None,
                            metavar="MHZ", help="engine clock for a "
                            "single-point query")
    coschedule.add_argument("--mem", type=float, default=None,
                            metavar="MHZ", help="memory clock for a "
                            "single-point query")
    coschedule.add_argument("--matrix", action="store_true",
                            help="print the class-composition matrix "
                            "over the whole catalog instead")
    coschedule.add_argument("--json", action="store_true",
                            help="emit JSON instead of text")

    kernel = sub.add_parser("kernel", help="inspect one kernel")
    kernel.add_argument("kernel", help="suite/program.kernel identifier")
    kernel.add_argument("--data", default=None,
                        help="saved dataset (.npz); sweeps if omitted")
    add_cache_flags(kernel)

    sub.add_parser(
        "engines",
        help="list registered timing engines with their capabilities",
    )

    sub.add_parser(
        "families",
        help="list registered microarchitecture families",
    )

    transfer = sub.add_parser(
        "transfer",
        help="predict a kernel's scaling surface and taxonomy class "
        "on one microarchitecture family from its measured surface "
        "on another",
    )
    transfer.add_argument("kernel", nargs="?", default=None,
                          help="suite/program.kernel identifier "
                          "(omit with --evaluate)")
    transfer.add_argument("--from", dest="source", required=True,
                          metavar="FAMILY",
                          help="family the kernel is measured on")
    transfer.add_argument("--to", dest="target", required=True,
                          metavar="FAMILY",
                          help="family to predict for")
    transfer.add_argument("--evaluate", action="store_true",
                          help="score the whole catalog instead: "
                          "leave-one-out taxonomy-class confusion "
                          "matrix for the family pair")
    transfer.add_argument("--neighbours", type=int, default=None,
                          metavar="K",
                          help="corpus neighbours blended per "
                          "prediction (default: 3)")
    transfer.add_argument("--json", action="store_true",
                          help="emit JSON instead of tables")

    serve = sub.add_parser(
        "serve",
        help="run the async micro-batching HTTP query service",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8000,
                       help="bind port; 0 picks a free one "
                       "(default: 8000)")
    serve.add_argument("--engine", default="interval",
                       choices=list(engine_names()),
                       help="registered timing engine answering "
                       "queries (default: interval)")
    serve.add_argument("--max-batch", type=int, default=64,
                       metavar="N",
                       help="most queries coalesced into one engine "
                       "dispatch (default: 64)")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       metavar="MS",
                       help="longest a query waits for batch peers "
                       "(default: 2.0)")
    serve.add_argument("--queue-limit", type=int, default=1024,
                       metavar="N",
                       help="admission queue bound; beyond it "
                       "requests get 429 (default: 1024)")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       metavar="S",
                       help="per-request service timeout in seconds; "
                       "beyond it requests get 503 (default: 30)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="engine worker processes; 1 serves "
                       "in-process, N>1 runs a sharded fleet behind "
                       "a router (default: 1)")
    serve.add_argument("--brownout", default="off",
                       choices=["off", "auto", "force"],
                       help="degraded-fidelity policy for grid "
                       "queries: 'auto' answers from the predictor "
                       "tier (marked fidelity=degraded) when the "
                       "exact tier is saturated or breaker-blocked, "
                       "'force' always does (default: off)")
    serve.add_argument("--restart-budget", type=int, default=8,
                       metavar="N",
                       help="worker restarts allowed per sliding "
                       "window; while exhausted a crashed worker's "
                       "shard fails over to ring neighbours "
                       "(default: 8)")
    serve.add_argument("--restart-window", type=float, default=60.0,
                       metavar="S",
                       help="the restart budget's sliding window in "
                       "seconds (default: 60)")
    serve.add_argument("--hedge-fraction", type=float, default=0.5,
                       metavar="F",
                       help="hedge a grid query to a second worker "
                       "after it has burned this fraction of its "
                       "deadline budget; first response wins "
                       "(default: 0.5)")
    serve.add_argument("--no-hedge", action="store_true",
                       help="disable hedged dispatch")
    serve.add_argument("--chaos", default=None, metavar="SPEC",
                       help="seeded fault injection for the worker "
                       "fleet, e.g. "
                       "'seed=7,corrupt=0.05,kill=0.01,arm_after=20' "
                       "(testing only; default: off)")
    add_cache_flags(serve)

    cache = sub.add_parser(
        "cache", help="inspect or clear the sweep result cache"
    )
    cache.add_argument("action", choices=["info", "clear"],
                       help="'info' lists entries, 'clear' deletes them")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="sweep result cache directory (default: "
                       "$GPUSCALE_CACHE_DIR or ~/.cache/gpuscale)")

    return parser


def _cmd_engines(_args: argparse.Namespace) -> int:
    from repro.gpu.engine import list_engines

    def mark(flag: bool) -> str:
        return "yes" if flag else "-"

    rows = []
    for reg in list_engines():
        caps = reg.capabilities
        descriptor = reg.descriptor
        rows.append([
            reg.name,
            mark(caps.point),
            mark(caps.grid),
            mark(caps.study),
            descriptor.family,
            f"v{descriptor.version}",
            descriptor.fidelity,
            reg.summary,
        ])
    print(render_table(
        ["engine", "point", "grid", "study", "family", "version",
         "fidelity", "summary"],
        rows,
        title="Registered timing engines",
    ))
    return 0


def _cmd_families(_args: argparse.Namespace) -> int:
    from repro.gpu.uarch import list_families

    rows = []
    for family in list_families():
        flagship = family.flagship
        rows.append([
            family.name,
            flagship.cu_count,
            f"{flagship.peak_gflops:.0f}",
            f"{flagship.peak_dram_gb_per_sec:.0f}",
            f"{flagship.machine_balance_flops_per_byte:.1f}",
            "x".join(str(n) for n in family.space.shape),
            family.summary,
        ])
    print(render_table(
        ["family", "CUs", "GFLOP/s", "GB/s", "flop/byte", "grid",
         "summary"],
        rows,
        title="Registered microarchitecture families",
    ))
    return 0


def _cmd_transfer(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.analysis.transfer import evaluate_transfer
    from repro.predict.transfer import (
        DEFAULT_NEIGHBOURS,
        transfer_predictor,
    )

    k = args.neighbours or DEFAULT_NEIGHBOURS
    if args.evaluate:
        evaluation = evaluate_transfer(args.source, args.target, k=k)
        if args.json:
            print(json_mod.dumps(evaluation.to_dict(), indent=2))
            return 0
        print(
            f"Taxonomy-class transfer {evaluation.source_family} -> "
            f"{evaluation.target_family} (leave-one-out over "
            f"{evaluation.matrix.total} kernels)\n"
        )
        print(evaluation.matrix.render())
        print(
            f"median leave-one-out surface error: "
            f"{evaluation.transfer_error:.1%}"
        )
        return 0

    if args.kernel is None:
        print(
            "gpuscale transfer: a kernel identifier is required "
            "unless --evaluate is given",
            file=sys.stderr,
        )
        return 2
    from repro.gpu.interval_batch import BatchIntervalModel
    from repro.kernels.pack import KernelPack
    from repro.suites import kernel_by_name
    from repro.sweep.dataset import KernelRecord

    kernel = kernel_by_name(args.kernel)
    predictor = transfer_predictor(args.source, args.target, k=k)
    source_perf = BatchIntervalModel().simulate_study(
        KernelPack.from_kernels([kernel]), predictor.source.space
    ).items_per_second[0]
    prediction = predictor.predict_cube(
        source_perf, kernel_name=kernel.full_name
    )
    target_space = predictor.target.space
    dataset = ScalingDataset(
        target_space,
        [KernelRecord.from_full_name(kernel.full_name)],
        prediction.cube[None, ...],
    )
    label = classify(dataset).labels[0]
    if args.json:
        print(json_mod.dumps({
            "kernel": kernel.full_name,
            "source_family": prediction.source_family,
            "target_family": prediction.target_family,
            "category": label.category.value,
            "behaviours": {
                "cu": label.cu_behaviour.value,
                "engine": label.engine_behaviour.value,
                "memory": label.memory_behaviour.value,
            },
            "neighbours": list(prediction.neighbours),
            "neighbour_distances": list(
                prediction.neighbour_distances
            ),
            "transfer_error": predictor.measured_error(),
            "items_per_second": prediction.cube.tolist(),
        }, indent=2))
        return 0
    peak = float(prediction.cube.max())
    base = float(prediction.cube[0, 0, 0])
    print(
        f"{kernel.full_name}: measured on "
        f"{prediction.source_family}, predicted for "
        f"{prediction.target_family}"
    )
    print(f"  predicted class     {label.category.value}")
    print(
        f"  behaviours          cu={label.cu_behaviour.value} "
        f"engine={label.engine_behaviour.value} "
        f"memory={label.memory_behaviour.value}"
    )
    print(
        f"  predicted range     {base:.3g} -> {peak:.3g} items/s "
        f"({peak / base:.1f}x over the grid)"
    )
    neighbours = ", ".join(
        f"{name} (d={dist:.2f})"
        for name, dist in zip(
            prediction.neighbours, prediction.neighbour_distances
        )
    )
    print(f"  corpus neighbours   {neighbours}")
    print(
        f"  corpus LOO error    {predictor.measured_error():.1%} "
        "(median relative surface error)"
    )
    return 0


def _cmd_summary(_args: argparse.Namespace) -> int:
    from repro.report.summary import study_summary

    print(study_summary())
    return 0


_COMMANDS = {
    "catalog": _cmd_catalog,
    "sweep": _cmd_sweep,
    "classify": _cmd_classify,
    "report": _cmd_report,
    "kernel": _cmd_kernel,
    "energy": _cmd_energy,
    "optimize": _cmd_optimize,
    "coschedule": _cmd_coschedule,
    "cache": _cmd_cache,
    "engines": _cmd_engines,
    "families": _cmd_families,
    "transfer": _cmd_transfer,
    "serve": _cmd_serve,
    "summary": _cmd_summary,
    "whatif": _cmd_whatif,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
