"""Shared-memory result transport shared by the parallel evaluators.

Both multiprocess evaluation paths in the repo — the kernel-chunked
:class:`~repro.sweep.parallel.ParallelSweepRunner` (PR 3) and the
kernel-axis-tiled :class:`~repro.gpu.study_mt.StudyMTModel` — move
their bulk float64 result tensors between processes the same way: the
parent allocates one ``multiprocessing.shared_memory`` segment shaped
like the full result, each worker payload carries a small descriptor
(``{"name", "shape", "offset"}``), and workers write their contiguous
leading-axis rows straight into the mapped buffer so the pickled
result shrinks to metadata. This module is the one home for that
layout, deliberately neutral in the package hierarchy: ``repro.gpu``
modules must not import ``repro.sweep`` (the PR 4 layering rule), and
the sweep layer should not reach into engine internals either.

Everything here is best-effort by design. Failure to create or attach
a segment returns ``None``/``False`` instead of raising, and callers
fall back to pickling rows — shared memory is an accelerator, never a
correctness dependency (sandboxes without ``/dev/shm`` still work).
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional

import numpy as np


def untrack_segment(segment: shared_memory.SharedMemory) -> None:
    """Detach *segment* from this process's resource tracker.

    Attaching registers the segment with the tracker (bpo-39959); a
    process with its *own* tracker must unregister or its exit will
    unlink a segment the creator still owns. ``multiprocessing``
    children inherit the creator's tracker, where attach-register is
    a set no-op — there, unregistering would instead remove the
    creator's sole entry and make the eventual ``unlink()`` complain,
    so the worker paths below deliberately skip this.
    """
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


def ensure_tracker() -> None:
    """Start the parent's resource tracker before forking workers.

    Children forked while no tracker exists each spawn their own on
    first shm use; those private trackers never see the parent's
    ``unlink()`` and warn about "leaked" segments at worker exit.
    Starting the tracker up front makes every child inherit it, so
    attach-time registers collapse into the parent's single entry.
    """
    try:
        resource_tracker.ensure_running()
    except Exception:
        pass


def create_segment(
    shape, dtype=np.float64
) -> Optional[shared_memory.SharedMemory]:
    """A parent-owned segment sized for *shape*, or ``None``.

    ``None`` means shared memory is unavailable here (platform or
    sandbox); the caller should fall back to pickled rows. The parent
    is responsible for ``close()`` + ``unlink()`` when done.
    """
    n_bytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
    try:
        return shared_memory.SharedMemory(create=True, size=n_bytes)
    except Exception:
        return None


def segment_descriptor(
    segment: shared_memory.SharedMemory, shape, offset: int
) -> Dict[str, object]:
    """The picklable payload a worker needs to write its rows."""
    return {
        "name": segment.name,
        "shape": list(shape),
        "offset": int(offset),
    }


def attach_view(shm_info: dict) -> Optional[tuple]:
    """Attach to a descriptor's segment; ``(segment, ndarray)`` view.

    Returns ``None`` when the segment cannot be attached (already
    unlinked, platform without shared memory). The caller owns the
    returned segment handle and must ``close()`` it (and usually
    :func:`untrack_segment`) when finished; the view is only valid
    while the handle stays open.
    """
    try:
        segment = shared_memory.SharedMemory(name=shm_info["name"])
    except Exception:
        return None
    view = np.ndarray(
        tuple(shm_info["shape"]), dtype=np.float64, buffer=segment.buf
    )
    return segment, view


def write_rows(shm_info: dict, rows: np.ndarray) -> bool:
    """Write one worker's leading-axis rows into the shared result.

    Returns ``False`` (caller falls back to pickling the rows) if the
    segment cannot be attached or written — a missing segment, a
    platform without shared memory, a size mismatch.
    """
    attached = attach_view(shm_info)
    if attached is None:
        return False
    segment, view = attached
    try:
        offset = int(shm_info["offset"])
        view[offset:offset + rows.shape[0]] = rows
        return True
    except Exception:
        return False
    finally:
        # Pool workers share the parent's resource tracker: close the
        # mapping but leave the (single, parent-owned) registration
        # for the parent's unlink — see untrack_segment.
        segment.close()
