"""Log-space trilinear interpolation over one kernel's scaling cube.

The sweep measures a kernel on the discrete 11 x 9 x 9 grid; users ask
about arbitrary configurations ("what would 30 CUs at 725 MHz do?").
Performance responds multiplicatively to the three knobs, so
interpolation runs in log space on every axis and on the value:
a kernel scaling as ``cu^a * f_e^b * f_m^c`` is reproduced *exactly*
between grid points, and the inverse/plateau shapes are followed
piecewise.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.gpu.config import HardwareConfig
from repro.sweep.dataset import ScalingDataset


def _bracket(axis: Sequence[float], value: float) -> Tuple[int, int, float]:
    """Indices (lo, hi) bracketing *value* and the log-space weight.

    Values outside the measured axis are clamped to its ends — the
    model makes no claims beyond the studied hardware range.
    """
    if value <= axis[0]:
        return 0, 0, 0.0
    if value >= axis[-1]:
        last = len(axis) - 1
        return last, last, 0.0
    hi = next(i for i, a in enumerate(axis) if a >= value)
    lo = hi - 1
    if axis[hi] == value:
        return hi, hi, 0.0
    weight = (math.log(value) - math.log(axis[lo])) / (
        math.log(axis[hi]) - math.log(axis[lo])
    )
    return lo, hi, weight


class CubeInterpolator:
    """Continuous performance model of one measured kernel."""

    def __init__(self, dataset: ScalingDataset, kernel_name: str):
        self._space = dataset.space
        self._log_cube = np.log(dataset.kernel_cube(kernel_name))
        self._kernel_name = kernel_name

    @property
    def kernel_name(self) -> str:
        """The kernel this interpolator models."""
        return self._kernel_name

    def predict(self, config: HardwareConfig) -> float:
        """Items/second at *config* (clamped to the measured ranges)."""
        space = self._space
        c_lo, c_hi, wc = _bracket(
            [float(c) for c in space.cu_counts], float(config.cu_count)
        )
        e_lo, e_hi, we = _bracket(space.engine_mhz, config.engine_mhz)
        m_lo, m_hi, wm = _bracket(space.memory_mhz, config.memory_mhz)

        total = 0.0
        for ci, cw in ((c_lo, 1.0 - wc), (c_hi, wc)):
            for ei, ew in ((e_lo, 1.0 - we), (e_hi, we)):
                for mi, mw in ((m_lo, 1.0 - wm), (m_hi, wm)):
                    weight = cw * ew * mw
                    if weight > 0.0:
                        total += weight * self._log_cube[ci, ei, mi]
        return float(math.exp(total))

    def speedup(
        self, config: HardwareConfig, base: HardwareConfig
    ) -> float:
        """Predicted speedup of *config* over *base*."""
        return self.predict(config) / self.predict(base)


def interpolator(
    dataset: ScalingDataset, kernel_name: str
) -> CubeInterpolator:
    """Build a :class:`CubeInterpolator` (convenience wrapper)."""
    if kernel_name not in dataset.kernel_names:
        raise AnalysisError(
            f"dataset has no kernel {kernel_name!r} to interpolate"
        )
    return CubeInterpolator(dataset, kernel_name)
