"""Extension: scaling prediction (the paper's follow-on direction).

Two predictors over collected scaling data:

* :class:`CubeInterpolator` — continuous queries on a *measured*
  kernel (off-grid configurations);
* :class:`ScalingPredictor` — full-surface prediction for an
  *unmeasured* kernel from seven probe runs, by nearest neighbours in
  scaling-shape space;
* :class:`CrossFamilyPredictor` — cross-architecture transfer of a
  kernel's scaling surface from one microarchitecture family's grid
  to another's, via a corpus measured on both.
"""

from repro.predict.engine import PredictorEngine
from repro.predict.interpolate import CubeInterpolator, interpolator
from repro.predict.predictor import PredictedCube, ScalingPredictor
from repro.predict.what_if import (
    STANDARD_SCENARIOS,
    Scenario,
    WhatIfResult,
    best_advice,
    what_if,
)
from repro.predict.sampling import (
    ReconstructionReport,
    SamplingPlan,
    budget_sweep,
    collect_plan_dataset,
    evaluate_plan,
    plan_for_budget,
)
from repro.predict.transfer import (
    CrossFamilyPredictor,
    TransferPrediction,
    clear_transfer_cache,
    transfer_predictor,
)

__all__ = [
    "CrossFamilyPredictor",
    "CubeInterpolator",
    "PredictedCube",
    "PredictorEngine",
    "ReconstructionReport",
    "SamplingPlan",
    "STANDARD_SCENARIOS",
    "ScalingPredictor",
    "Scenario",
    "TransferPrediction",
    "WhatIfResult",
    "best_advice",
    "budget_sweep",
    "clear_transfer_cache",
    "collect_plan_dataset",
    "evaluate_plan",
    "interpolator",
    "plan_for_budget",
    "transfer_predictor",
    "what_if",
]
