"""What-if analysis: model-based optimisation counterfactuals.

The taxonomy tells you *why* a kernel stops scaling; this module tells
you *what fixing it would buy*. Each scenario applies a standard GPU
optimisation to the kernel's characteristics (coalesce the accesses,
tile into LDS, privatise the atomics, break the pointer chains, shrink
register pressure, grow the launch) and re-simulates, ranking the
candidate optimisations by their flagship-configuration payoff.

This is the advisory loop the paper's characterisation enables: the
data says the kernel is latency-bound, the counterfactual says breaking
half its dependence chains is worth 2.1x — go restructure that loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.analysis.input_scaling import scale_input
from repro.gpu.config import HardwareConfig
from repro.gpu.products import W9100_LIKE
from repro.gpu.simulator import GpuSimulator
from repro.kernels.kernel import Kernel


@dataclass(frozen=True)
class Scenario:
    """One candidate optimisation: a name, a transform, a rationale."""

    name: str
    description: str
    transform: Callable[[Kernel], Kernel]

    def apply(self, kernel: Kernel) -> Kernel:
        """The transformed kernel."""
        return self.transform(kernel)


def _coalesce(kernel: Kernel) -> Kernel:
    ch = kernel.characteristics
    return kernel.replace(
        characteristics=ch.replace(
            coalescing_efficiency=max(ch.coalescing_efficiency, 0.9)
        )
    )


def _tile_into_lds(kernel: Kernel) -> Kernel:
    ch = kernel.characteristics
    return kernel.replace(
        characteristics=ch.replace(
            l1_reuse=min(1.0, ch.l1_reuse + 0.3),
            lds_bytes_per_item=ch.lds_bytes_per_item + 32.0,
        )
    )


def _privatise_atomics(kernel: Kernel) -> Kernel:
    ch = kernel.characteristics
    return kernel.replace(
        characteristics=ch.replace(
            atomic_contention=ch.atomic_contention / 4.0
        )
    )


def _break_chains(kernel: Kernel) -> Kernel:
    ch = kernel.characteristics
    return kernel.replace(
        characteristics=ch.replace(
            dependent_access_fraction=ch.dependent_access_fraction / 2.0,
            memory_parallelism=ch.memory_parallelism * 2.0,
        )
    )


def _shrink_registers(kernel: Kernel) -> Kernel:
    resources = kernel.resources
    return kernel.replace(
        resources=resources.__class__(
            vgprs=max(24, resources.vgprs // 2),
            sgprs=resources.sgprs,
            lds_bytes_per_workgroup=resources.lds_bytes_per_workgroup,
        )
    )


def _grow_launch(kernel: Kernel) -> Kernel:
    return scale_input(kernel, 16.0)


#: The standard optimisation playbook, in playbook order.
STANDARD_SCENARIOS = (
    Scenario(
        "coalesce",
        "restructure accesses for >=90% coalescing efficiency",
        _coalesce,
    ),
    Scenario(
        "lds_tiling",
        "tile reused data through LDS (raises L1-level reuse)",
        _tile_into_lds,
    ),
    Scenario(
        "privatise_atomics",
        "privatise/replicate atomic targets (4x less contention)",
        _privatise_atomics,
    ),
    Scenario(
        "break_chains",
        "restructure dependent loads (half the chain, double the MLP)",
        _break_chains,
    ),
    Scenario(
        "shrink_registers",
        "halve VGPR usage to raise occupancy",
        _shrink_registers,
    ),
    Scenario(
        "grow_launch",
        "expose 16x more work per launch",
        _grow_launch,
    ),
)


@dataclass(frozen=True)
class WhatIfResult:
    """Payoff of one scenario on one kernel."""

    scenario: Scenario
    baseline_throughput: float
    optimised_throughput: float

    @property
    def speedup(self) -> float:
        """Throughput gain (>1 = the optimisation pays).

        Throughput (work-items/second) rather than raw time, because
        some scenarios (growing the launch) change how much work one
        invocation performs.
        """
        return self.optimised_throughput / self.baseline_throughput


def what_if(
    kernel: Kernel,
    config: HardwareConfig = W9100_LIKE,
    scenarios: Sequence[Scenario] = STANDARD_SCENARIOS,
    simulator: Optional[GpuSimulator] = None,
) -> List[WhatIfResult]:
    """Evaluate every scenario on *kernel* at *config*.

    Results are sorted by payoff, best first. Scenarios that do not
    apply (e.g. privatising atomics a kernel does not have) naturally
    report ~1.0x and sort to the bottom.
    """
    simulator = simulator or GpuSimulator()
    baseline = simulator.performance(kernel, config)
    results = [
        WhatIfResult(
            scenario=scenario,
            baseline_throughput=baseline,
            optimised_throughput=simulator.performance(
                scenario.apply(kernel), config
            ),
        )
        for scenario in scenarios
    ]
    results.sort(key=lambda r: -r.speedup)
    return results


def best_advice(
    kernel: Kernel,
    config: HardwareConfig = W9100_LIKE,
    minimum_speedup: float = 1.1,
) -> Optional[WhatIfResult]:
    """The most profitable standard optimisation, or ``None`` when no
    scenario clears *minimum_speedup* (the kernel is already near its
    machine limits)."""
    results = what_if(kernel, config)
    best = results[0]
    return best if best.speedup >= minimum_speedup else None
