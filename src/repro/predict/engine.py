"""The k-NN surrogate as a registered timing engine.

:class:`PredictorEngine` adapts :class:`~repro.predict.predictor.
ScalingPredictor` to the :class:`~repro.gpu.engine.TimingEngine`
protocol, making cross-kernel prediction selectable anywhere an engine
name is accepted (``gpuscale sweep --engine predictor``). Per kernel it
runs only the seven probe configurations through the exact scalar
interval model, then transplants the full 891-point surface from a
corpus of archetype kernels swept once (per configuration space) with
the vectorized interval engine.

This is the cheap-approximate end of the engine spectrum: grid-capable
only (its output is a whole surface; a single predicted point would
cost the same seven probes), in its own ``predictor`` family so its
approximate surfaces never share cache entries or campaign
fingerprints with exact interval results, and with all diagnostic
tensors (interval breakdowns, cache behaviour) zeroed — the surrogate
predicts throughput, not mechanism.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence

import numpy as np

from repro.gpu.engine import (
    PREDICTOR_DESCRIPTOR,
    EngineDescriptor,
    GridSpace,
)
from repro.gpu.interval_batch import (
    BatchIntervalModel,
    GridBreakdown,
    KernelGridResult,
)
from repro.gpu.interval_model import IntervalModel
from repro.kernels.archetypes import ARCHETYPE_BUILDERS, build_archetype
from repro.kernels.kernel import Kernel
from repro.kernels.pack import KernelPack
from repro.predict.predictor import ScalingPredictor
from repro.sweep.dataset import KernelRecord, ScalingDataset

#: How many corpus neighbours a prediction blends.
DEFAULT_NEIGHBOURS = 3

#: How many per-space fitted predictors one engine instance retains.
#: Each entry holds a full corpus study (archetypes x the space), so a
#: long-lived server process sweeping many ad-hoc spaces would grow
#: without bound if this were not capped; eviction is LRU.
DEFAULT_MAX_CACHED_SPACES = 8


def _corpus_kernels(kinds: Sequence[str]) -> List[Kernel]:
    """One corpus kernel per archetype kind, deterministically named."""
    return [
        build_archetype(kind, program=f"corpus-{kind}") for kind in kinds
    ]


class PredictorEngine:
    """Grid-only surrogate engine: probe exactly, transplant the rest.

    Registered as ``"predictor"``. The corpus — every archetype kernel
    swept over the requested space with the batch interval engine — is
    built lazily per configuration space and cached on the instance,
    so sweeping N kernels costs one corpus study plus 7N exact probe
    points instead of 891N.
    """

    supports_point = False
    supports_grid = True
    supports_study = False

    def __init__(
        self,
        corpus_kinds: Optional[Sequence[str]] = None,
        neighbours: int = DEFAULT_NEIGHBOURS,
        max_cached_spaces: int = DEFAULT_MAX_CACHED_SPACES,
    ):
        if max_cached_spaces < 1:
            raise ValueError(
                "max_cached_spaces must be >= 1, got "
                f"{max_cached_spaces}"
            )
        self._kinds = tuple(corpus_kinds or sorted(ARCHETYPE_BUILDERS))
        self._neighbours = neighbours
        self._max_cached_spaces = max_cached_spaces
        self._oracle = IntervalModel()
        self._batch = BatchIntervalModel()
        self._predictors: (
            "OrderedDict[GridSpace, ScalingPredictor]"
        ) = OrderedDict()

    def descriptor(self) -> EngineDescriptor:
        """Stable engine identity (its own ``predictor`` family)."""
        return PREDICTOR_DESCRIPTOR

    @property
    def corpus_kinds(self) -> "tuple[str, ...]":
        """Archetype kinds forming the transplant corpus."""
        return self._kinds

    @property
    def max_cached_spaces(self) -> int:
        """The LRU cap on per-space fitted predictors."""
        return self._max_cached_spaces

    @property
    def cached_space_count(self) -> int:
        """Fitted predictors currently retained."""
        return len(self._predictors)

    def _predictor(self, space: GridSpace) -> ScalingPredictor:
        """The fitted corpus predictor for *space* (LRU-cached)."""
        cached = self._predictors.get(space)
        if cached is not None:
            self._predictors.move_to_end(space)
            return cached
        kernels = _corpus_kernels(self._kinds)
        study = self._batch.simulate_study(
            KernelPack.from_kernels(kernels), space
        )
        records = [
            KernelRecord(
                full_name=k.full_name,
                suite=k.suite,
                program=k.program,
                kernel=k.name,
            )
            for k in kernels
        ]
        dataset = ScalingDataset(space, records, study.items_per_second)
        predictor = ScalingPredictor(dataset, k=self._neighbours)
        self._predictors[space] = predictor
        while len(self._predictors) > self._max_cached_spaces:
            self._predictors.popitem(last=False)
        return predictor

    def measured_error(self, space: GridSpace) -> float:
        """The engine's own accuracy story on *space*.

        Median of leave-one-out errors over the transplant corpus:
        each archetype is predicted from its seven probes using a
        corpus that excludes it, and the per-kernel median absolute
        relative errors are aggregated. The service's fidelity
        brownout attaches this number to every degraded response so
        callers know how approximate the surrogate tier is; cached
        per fitted predictor (the corpus is fixed per space).
        """
        predictor = self._predictor(space)
        cached = getattr(predictor, "_measured_error", None)
        if cached is not None:
            return cached
        errors = [
            predictor.leave_one_out_error(name)
            for name in predictor.dataset.kernel_names
        ]
        estimate = float(np.median(errors))
        predictor._measured_error = estimate
        return estimate

    def simulate_grid(
        self, kernel: Kernel, space: GridSpace
    ) -> KernelGridResult:
        """Predict *kernel*'s full grid from seven exact probe runs.

        The probes (grid corners plus centre, per
        :meth:`ScalingPredictor.probe_configs`) run through the scalar
        interval oracle; the surface shape comes from the corpus.
        Mechanism tensors (breakdown, cache behaviour) are zeroed:
        the surrogate has no per-interval story to tell.
        """
        predictor = self._predictor(space)
        probes = [
            self._oracle.simulate(kernel, config).items_per_second
            for config in predictor.probe_configs()
        ]
        cube = predictor.predict_cube(probes).cube
        shape = space.shape
        zeros = {
            f"{name}_s": np.zeros(shape, dtype=np.float64)
            for name in (
                "compute", "salu", "lds", "l2", "dram", "latency",
                "atomic", "barrier", "launch",
            )
        }
        global_size = kernel.geometry.global_size
        return KernelGridResult(
            kernel_name=kernel.full_name,
            time_s=global_size / cube,
            items_per_second=cube,
            breakdown=GridBreakdown(**zeros),
            occupancy=None,
            l2_hit_rate=np.zeros(shape[0], dtype=np.float64),
            dram_bytes=np.zeros(shape[0], dtype=np.float64),
            global_size=global_size,
        )
