"""Cross-architecture scaling-surface transfer.

The paper's open question: does a kernel's scaling class *transfer*
across machine balances? Related work answers it empirically — Stevens
& Klöckner (arXiv 1904.09538) predict a kernel's performance on one
machine from measurements on another, black-box, via a corpus measured
on both. This module implements that scheme over the probe+transplant
machinery of :mod:`repro.predict.predictor`:

1. build a **cross-family corpus**: the full kernel catalog plus one
   kernel per synthetic archetype, swept over *both* families'
   canonical grids (one batch study per family, ~0.1 s per pair);
2. signature-match the new kernel's measured source-family surface
   against the corpus's source surfaces (the same log2 probe-ratio
   signature the single-family predictor uses);
3. transplant the matched corpus kernels' *target-family* normalised
   surfaces (inverse-distance-weighted log-space blend), and anchor
   absolute performance with the blended corpus base-performance ratio
   ``base_target / base_source`` — fully black-box: no target-family
   measurement of the new kernel is needed.

Evaluation passes ``exclude=<kernel name>`` so a catalog kernel never
matches its own corpus row; serving deliberately does not — a corpus
hit at distance zero *is* the right answer for a known kernel.

:func:`transfer_predictor` memoises fitted predictors per (family
pair, corpus, k), so a serving process pays the two corpus studies
once per pair.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.gpu.interval_batch import BatchIntervalModel
from repro.gpu.uarch import UarchFamily, get_family
from repro.kernels.archetypes import ARCHETYPE_BUILDERS, build_archetype
from repro.kernels.kernel import Kernel
from repro.kernels.pack import KernelPack
from repro.predict.predictor import _PROBE_COORDS

#: How many corpus neighbours a transfer blends.
DEFAULT_NEIGHBOURS = 3


def default_corpus_kernels() -> List[Kernel]:
    """The cross-family corpus: the full catalog plus the archetypes.

    The catalog carries the real class structure (the corpus a serving
    process matches against); the archetypes add synthetic coverage at
    the extremes so a kernel unlike anything in the catalog still
    finds a sane neighbourhood.
    """
    from repro.suites import all_kernels

    kernels = list(all_kernels())
    kernels.extend(
        build_archetype(kind, program=f"corpus-{kind}")
        for kind in sorted(ARCHETYPE_BUILDERS)
    )
    return kernels


def surface_signature(cube: np.ndarray) -> np.ndarray:
    """Log2 probe-ratio signature of one scaling surface.

    The same shape descriptor :class:`~repro.predict.predictor.
    ScalingPredictor` matches on: the surface's response at the grid
    corners and centre, normalised to the base corner — absolute
    performance cancels, so signatures compare across kernels (and,
    here, across the source family's grid resolutions).
    """
    base = float(cube[0, 0, 0])
    if not base > 0:
        raise AnalysisError("surface base point must be positive")
    values = [float(cube[c, e, m]) / base for c, e, m in _PROBE_COORDS]
    if any(v <= 0 for v in values):
        raise AnalysisError("surface values must be positive")
    return np.log2(np.asarray(values[1:]))  # base point is always 1


@dataclass(frozen=True)
class TransferPrediction:
    """Outcome of one cross-family transfer."""

    kernel_name: str
    source_family: str
    target_family: str
    #: Predicted items/second over the target family's canonical grid.
    cube: np.ndarray
    neighbours: Tuple[str, ...]
    neighbour_distances: Tuple[float, ...]

    @property
    def nearest(self) -> str:
        """The closest corpus kernel."""
        return self.neighbours[0]


class CrossFamilyPredictor:
    """k-NN transfer from family A surfaces to family B surfaces."""

    def __init__(
        self,
        source: UarchFamily,
        target: UarchFamily,
        kernels: Optional[Sequence[Kernel]] = None,
        k: int = DEFAULT_NEIGHBOURS,
    ):
        self._source = source
        self._target = target
        kernels = (
            list(kernels) if kernels is not None
            else default_corpus_kernels()
        )
        if k < 1 or k > len(kernels):
            raise AnalysisError(
                f"k={k} invalid for a {len(kernels)}-kernel corpus"
            )
        self._k = k

        self._corpus_names = tuple(k.full_name for k in kernels)
        self._corpus_index = {
            name: i for i, name in enumerate(self._corpus_names)
        }
        pack = KernelPack.from_kernels(kernels)
        batch = BatchIntervalModel()
        source_perf = batch.simulate_study(
            pack, source.space
        ).items_per_second
        target_perf = batch.simulate_study(
            pack, target.space
        ).items_per_second

        source_base = source_perf[:, 0:1, 0:1, 0:1]
        target_base = target_perf[:, 0:1, 0:1, 0:1]
        self._signatures = np.stack(
            [
                surface_signature(source_perf[i] / source_base[i])
                for i in range(len(kernels))
            ]
        )
        self._target_normalised = target_perf / target_base
        #: Per-corpus-kernel absolute anchor: how much faster (log
        #: space) the kernel's base corner runs on the target family.
        self._log_base_ratio = np.log(
            target_base[:, 0, 0, 0] / source_base[:, 0, 0, 0]
        )
        #: Lazily cached leave-one-out error (the corpus is immutable).
        self._measured_error: Optional[float] = None

    @property
    def source(self) -> UarchFamily:
        """The measured-on family."""
        return self._source

    @property
    def target(self) -> UarchFamily:
        """The predicted-for family."""
        return self._target

    @property
    def corpus_names(self) -> Tuple[str, ...]:
        """Corpus kernel names, in corpus order."""
        return self._corpus_names

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def _blend(
        self, signature: np.ndarray, exclude: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(order, weights, distances) of the k nearest corpus rows."""
        distances = np.linalg.norm(self._signatures - signature, axis=1)
        if exclude is not None:
            distances = distances.copy()
            distances[exclude] = np.inf
        order = np.argsort(distances)[: self._k]
        weights = 1.0 / (distances[order] + 1e-9)
        weights = weights / weights.sum()
        return order, weights, distances

    def _transplant(
        self, order: np.ndarray, weights: np.ndarray
    ) -> Tuple[np.ndarray, float]:
        """(blended normalised target cube, blended log base ratio)."""
        log_blend = np.zeros_like(self._target_normalised[0])
        log_ratio = 0.0
        for weight, row in zip(weights, order):
            log_blend += weight * np.log(self._target_normalised[row])
            log_ratio += weight * float(self._log_base_ratio[row])
        return np.exp(log_blend), log_ratio

    def predict_cube(
        self,
        source_cube: np.ndarray,
        kernel_name: str = "",
        *,
        exclude: Optional[str] = None,
    ) -> TransferPrediction:
        """Predict the target-family surface from a source surface.

        *source_cube* is the kernel's measured items/second over the
        source family's canonical grid (shape must match
        ``source.space.shape``). The result's ``cube`` spans the
        target family's canonical grid, anchored by the blended corpus
        base-performance ratio — no target measurement required.

        *exclude* masks one corpus kernel by name — evaluation uses it
        so a catalog kernel is never predicted from its own corpus row.
        """
        expected = self._source.space.shape
        if tuple(source_cube.shape) != tuple(expected):
            raise AnalysisError(
                f"source cube shape {tuple(source_cube.shape)} does not "
                f"match the {self._source.name} canonical grid "
                f"{tuple(expected)}"
            )
        excluded_index = (
            self._corpus_index.get(exclude) if exclude else None
        )
        signature = surface_signature(source_cube)
        order, weights, distances = self._blend(
            signature, exclude=excluded_index
        )
        normalised, log_ratio = self._transplant(order, weights)
        base = float(source_cube[0, 0, 0]) * float(np.exp(log_ratio))
        return TransferPrediction(
            kernel_name=kernel_name,
            source_family=self._source.name,
            target_family=self._target.name,
            cube=normalised * base,
            neighbours=tuple(
                self._corpus_names[i] for i in order
            ),
            neighbour_distances=tuple(
                float(distances[i]) for i in order
            ),
        )

    def measured_error(self) -> float:
        """Median leave-one-out relative surface error over the corpus.

        Each corpus kernel's target surface is predicted from its
        source surface with its own corpus row masked; per-kernel
        median absolute relative errors aggregate by median. This is
        the error estimate ``/v1/transfer`` responses report.
        """
        if self._measured_error is not None:
            return self._measured_error
        errors = []
        for i in range(len(self._corpus_names)):
            order, weights, _ = self._blend(
                self._signatures[i], exclude=i
            )
            normalised, log_ratio = self._transplant(order, weights)
            # Both sides divided by the kernel's source base: the
            # relative error is identical to the absolute comparison.
            predicted = normalised * float(np.exp(log_ratio))
            actual = self._target_normalised[i] * float(
                np.exp(self._log_base_ratio[i])
            )
            relative = np.abs(predicted - actual) / actual
            errors.append(float(np.median(relative)))
        self._measured_error = float(np.median(errors))
        return self._measured_error


# ----------------------------------------------------------------------
# Process-wide fitted-predictor cache
# ----------------------------------------------------------------------

_CacheKey = Tuple[object, ...]
_PREDICTORS: Dict[_CacheKey, CrossFamilyPredictor] = {}
_PREDICTORS_LOCK = threading.Lock()

#: Fitted family pairs one process retains (each holds two corpus
#: studies; eviction is coarse — clear-all — because the pair count is
#: bounded by the registry size squared in practice).
MAX_CACHED_PAIRS = 16


def transfer_predictor(
    source: str, target: str, *, k: int = DEFAULT_NEIGHBOURS
) -> CrossFamilyPredictor:
    """A fitted :class:`CrossFamilyPredictor` for a family pair.

    Families resolve through the registry by name; the fitted corpus
    is memoised on (physics values, canonical grids, k) so renames or
    repeated requests never refit, while re-registering a family with
    new physics does. Custom corpora bypass this helper — construct
    :class:`CrossFamilyPredictor` directly.
    """
    source_family = get_family(source)
    target_family = get_family(target)
    if source_family.name == target_family.name:
        raise AnalysisError(
            f"transfer requires two distinct families, got "
            f"{source_family.name!r} twice"
        )
    key = (
        source_family.uarch, source_family.space,
        target_family.uarch, target_family.space,
        k,
    )
    with _PREDICTORS_LOCK:
        cached = _PREDICTORS.get(key)
    if cached is not None:
        return cached
    predictor = CrossFamilyPredictor(source_family, target_family, k=k)
    with _PREDICTORS_LOCK:
        if len(_PREDICTORS) >= MAX_CACHED_PAIRS:
            _PREDICTORS.clear()
        _PREDICTORS[key] = predictor
    return predictor


def clear_transfer_cache() -> None:
    """Drop every fitted predictor (tests)."""
    with _PREDICTORS_LOCK:
        _PREDICTORS.clear()
