"""Adaptive sweep sampling: how few of the 891 runs do you need?

The paper's measurement campaign is 891 reboots/re-clocks per kernel.
Because performance responds smoothly (piecewise power-law) to each
knob, a small axis-aligned subgrid plus log-space interpolation
reconstructs the full surface with small error. This module quantifies
that trade-off — the practical recipe a lab with limited testbed time
would actually use — and backs the
``benchmarks/test_extension_sampling.py`` experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.predict.interpolate import CubeInterpolator
from repro.sweep.dataset import ScalingDataset
from repro.sweep.space import ConfigurationSpace


def _strided_axis(length: int, keep: int) -> Tuple[int, ...]:
    """*keep* roughly evenly spaced indices including both endpoints."""
    if keep < 2:
        raise AnalysisError("each axis needs at least its two endpoints")
    if keep >= length:
        return tuple(range(length))
    positions = np.linspace(0, length - 1, keep)
    return tuple(sorted({int(round(p)) for p in positions}))


@dataclass(frozen=True)
class SamplingPlan:
    """An axis-aligned subgrid of the full configuration space."""

    cu_indices: Tuple[int, ...]
    engine_indices: Tuple[int, ...]
    memory_indices: Tuple[int, ...]

    @property
    def size(self) -> int:
        """Configurations actually measured under this plan."""
        return (
            len(self.cu_indices)
            * len(self.engine_indices)
            * len(self.memory_indices)
        )

    def subspace(self, space: ConfigurationSpace) -> ConfigurationSpace:
        """The reduced :class:`ConfigurationSpace` this plan measures."""
        return ConfigurationSpace(
            cu_counts=tuple(
                space.cu_counts[i] for i in self.cu_indices
            ),
            engine_mhz=tuple(
                space.engine_mhz[i] for i in self.engine_indices
            ),
            memory_mhz=tuple(
                space.memory_mhz[i] for i in self.memory_indices
            ),
            uarch=space.uarch,
        )


def plan_for_budget(
    space: ConfigurationSpace, per_axis: Tuple[int, int, int]
) -> SamplingPlan:
    """A plan keeping ``per_axis`` points on (CU, engine, memory)."""
    n_cu, n_eng, n_mem = space.shape
    return SamplingPlan(
        cu_indices=_strided_axis(n_cu, per_axis[0]),
        engine_indices=_strided_axis(n_eng, per_axis[1]),
        memory_indices=_strided_axis(n_mem, per_axis[2]),
    )


@dataclass(frozen=True)
class ReconstructionReport:
    """Accuracy of reconstructing a full dataset from one plan."""

    measured_configs: int
    total_configs: int
    median_abs_rel_error: float
    p95_abs_rel_error: float

    @property
    def savings_fraction(self) -> float:
        """Fraction of the measurement campaign avoided."""
        return 1.0 - self.measured_configs / self.total_configs


def evaluate_plan(
    dataset: ScalingDataset, plan: SamplingPlan
) -> ReconstructionReport:
    """Reconstruct *dataset* from *plan*'s subgrid; report the error.

    The subgrid values are taken from the dataset itself (they would
    be the measured runs); every other point is predicted with
    log-space trilinear interpolation and compared against its true
    value.
    """
    space = dataset.space
    subspace = plan.subspace(space)
    sub_perf = dataset.perf[
        np.ix_(
            range(dataset.num_kernels),
            plan.cu_indices,
            plan.engine_indices,
            plan.memory_indices,
        )
    ]
    sub_dataset = ScalingDataset(
        subspace, dataset.kernel_records, sub_perf
    )

    errors: List[float] = []
    n_cu, n_eng, n_mem = space.shape
    measured = {
        (c, e, m)
        for c in plan.cu_indices
        for e in plan.engine_indices
        for m in plan.memory_indices
    }
    for name in sub_dataset.kernel_names:
        model = CubeInterpolator(sub_dataset, name)
        cube = dataset.kernel_cube(name)
        for c in range(n_cu):
            for e in range(n_eng):
                for m in range(n_mem):
                    if (c, e, m) in measured:
                        continue
                    predicted = model.predict(space.config(c, e, m))
                    truth = float(cube[c, e, m])
                    errors.append(abs(predicted - truth) / truth)

    errors_arr = np.asarray(errors)
    return ReconstructionReport(
        measured_configs=plan.size,
        total_configs=space.size,
        median_abs_rel_error=float(np.median(errors_arr)),
        p95_abs_rel_error=float(np.quantile(errors_arr, 0.95)),
    )


def collect_plan_dataset(
    kernels: Sequence,
    plan: SamplingPlan,
    space: ConfigurationSpace = None,
    runner=None,
) -> ScalingDataset:
    """Sweep only *plan*'s subgrid — the campaign a lab would run.

    :func:`evaluate_plan` quantifies reconstruction error when the
    subgrid values are sliced out of an existing full dataset; this
    helper performs the corresponding *measurement* step for fresh
    kernels, sweeping just the planned configurations (batch engine by
    default). Repeated sampling campaigns re-run sweeps thousands of
    times, so they ride the vectorized grid path.
    """
    from repro.sweep.runner import SweepRunner
    from repro.sweep.space import PAPER_SPACE

    if space is None:
        space = PAPER_SPACE
    if runner is None:
        runner = SweepRunner()
    return runner.run(kernels, plan.subspace(space))


def budget_sweep(
    dataset: ScalingDataset,
    budgets: Sequence[Tuple[int, int, int]] = (
        (2, 2, 2),
        (3, 3, 3),
        (4, 3, 3),
        (6, 5, 5),
    ),
) -> List[Tuple[SamplingPlan, ReconstructionReport]]:
    """Evaluate several sampling budgets against a full dataset."""
    results = []
    for per_axis in budgets:
        plan = plan_for_budget(dataset.space, per_axis)
        results.append((plan, evaluate_plan(dataset, plan)))
    return results
