"""Cross-kernel scaling prediction from a handful of probe runs.

The follow-on direction the authors took with this dataset (their HPCA
2015 machine-learning work): once a corpus of scaling surfaces exists,
a *new* kernel's full surface can be predicted from a few measurements
— run the kernel at a small probe set of configurations, find the
corpus kernels whose response at those probes matches, and transplant
their (normalised) surfaces.

:class:`ScalingPredictor` implements that k-nearest-neighbour scheme:

1. fit on a :class:`~repro.sweep.dataset.ScalingDataset` (the corpus);
2. measure the new kernel at ``probe_configs()`` — the grid's corners
   plus the centre, seven runs;
3. ``predict_cube`` returns the full 891-point surface, anchored to
   the new kernel's measured base performance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.gpu.config import HardwareConfig
from repro.sweep.dataset import ScalingDataset

#: Grid coordinates (cu, eng, mem indices, -1 = max) of the probe set.
_PROBE_COORDS = (
    (0, 0, 0),
    (-1, 0, 0),
    (0, -1, 0),
    (0, 0, -1),
    (-1, -1, 0),
    (-1, 0, -1),
    (-1, -1, -1),
)


@dataclass(frozen=True)
class PredictedCube:
    """Outcome of one cross-kernel prediction."""

    cube: np.ndarray
    neighbours: Tuple[str, ...]
    neighbour_distances: Tuple[float, ...]

    @property
    def nearest(self) -> str:
        """The closest corpus kernel."""
        return self.neighbours[0]


class ScalingPredictor:
    """k-NN predictor over normalised scaling surfaces."""

    def __init__(self, dataset: ScalingDataset, k: int = 3):
        if k < 1 or k > dataset.num_kernels:
            raise AnalysisError(
                f"k={k} invalid for a {dataset.num_kernels}-kernel corpus"
            )
        self._dataset = dataset
        self._k = k
        #: Lazily cached corpus-wide leave-one-out error (set by
        #: consumers that measure it; the corpus is immutable).
        self._measured_error: "float | None" = None
        base = dataset.perf[:, 0:1, 0:1, 0:1]
        self._normalised = dataset.perf / base
        self._signatures = np.stack(
            [
                self._signature_from_cube(self._normalised[i])
                for i in range(dataset.num_kernels)
            ]
        )

    @property
    def dataset(self) -> ScalingDataset:
        """The fitted corpus."""
        return self._dataset

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def probe_configs(self) -> List[HardwareConfig]:
        """The seven configurations a new kernel must be measured at."""
        space = self._dataset.space
        n_cu, n_eng, n_mem = space.shape
        configs = []
        for c, e, m in _PROBE_COORDS:
            configs.append(
                space.config(
                    c % n_cu if c >= 0 else n_cu - 1,
                    e % n_eng if e >= 0 else n_eng - 1,
                    m % n_mem if m >= 0 else n_mem - 1,
                )
            )
        return configs

    @staticmethod
    def _signature_from_cube(normalised_cube: np.ndarray) -> np.ndarray:
        values = [
            normalised_cube[c, e, m] for c, e, m in _PROBE_COORDS
        ]
        return np.log2(np.asarray(values[1:]))  # base point is always 1

    def _signature_from_probes(
        self, probes: Sequence[float]
    ) -> np.ndarray:
        if len(probes) != len(_PROBE_COORDS):
            raise AnalysisError(
                f"expected {len(_PROBE_COORDS)} probe measurements "
                f"(see probe_configs()), got {len(probes)}"
            )
        if any(p <= 0 for p in probes):
            raise AnalysisError("probe measurements must be positive")
        base = probes[0]
        return np.log2(np.asarray(probes[1:]) / base)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict_cube(self, probes: Sequence[float]) -> PredictedCube:
        """Predict the full surface of a kernel measured at the probes.

        *probes* are items/second at :meth:`probe_configs`, in order.
        The result's ``cube`` is denormalised to the kernel's measured
        base performance, so absolute values are directly comparable
        with the probe measurements.
        """
        signature = self._signature_from_probes(probes)
        distances = np.linalg.norm(
            self._signatures - signature, axis=1
        )
        order = np.argsort(distances)[: self._k]

        # Inverse-distance weighting in log space.
        weights = 1.0 / (distances[order] + 1e-9)
        weights = weights / weights.sum()
        log_blend = np.zeros_like(self._normalised[0])
        for weight, row in zip(weights, order):
            log_blend += weight * np.log(self._normalised[row])
        blended = np.exp(log_blend) * probes[0]

        names = [self._dataset.kernel_names[i] for i in order]
        return PredictedCube(
            cube=blended,
            neighbours=tuple(names),
            neighbour_distances=tuple(
                float(distances[i]) for i in order
            ),
        )

    def leave_one_out_error(self, kernel_name: str) -> float:
        """Median absolute relative error predicting *kernel_name* from
        its probes using a corpus that excludes it."""
        others = [
            n for n in self._dataset.kernel_names if n != kernel_name
        ]
        corpus = ScalingPredictor(
            self._dataset.subset(others), k=self._k
        )
        cube = self._dataset.kernel_cube(kernel_name)
        probes = [
            float(cube[c, e, m]) for c, e, m in _PROBE_COORDS
        ]
        predicted = corpus.predict_cube(probes).cube
        relative = np.abs(predicted - cube) / cube
        return float(np.median(relative))
