"""Plain-text table rendering.

No plotting stack is available offline, so every table and figure the
benchmark harness regenerates is rendered as monospace text. The
formatter right-aligns numbers, left-aligns labels, and keeps column
widths content-driven.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 2) -> str:
    """Render one cell: floats to *precision*, everything else via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render an ASCII table with a header rule.

    Numeric columns (all data cells int/float) are right-aligned.
    """
    text_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )

    numeric = [
        all(
            isinstance(row[col], (int, float)) and not isinstance(
                row[col], bool
            )
            for row in rows
        )
        if rows
        else False
        for col in range(len(headers))
    ]
    widths = [
        max(
            len(str(headers[col])),
            max((len(r[col]) for r in text_rows), default=0),
        )
        for col in range(len(headers))
    ]

    def fmt_line(cells: Sequence[str]) -> str:
        parts = []
        for col, cell in enumerate(cells):
            if numeric[col]:
                parts.append(cell.rjust(widths[col]))
            else:
                parts.append(cell.ljust(widths[col]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in text_rows)
    return "\n".join(lines)


def render_kv(
    pairs: Sequence[Sequence[Cell]],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render key/value pairs as a two-column listing."""
    return render_table(
        ["metric", "value"], pairs, title=title, precision=precision
    )
