"""Experiment registry: every table and figure, regenerable by ID.

DESIGN.md defines the reconstructed evaluation artifacts T1-T4 and
F1-F10 (see the per-experiment index there). Each producer returns an
:class:`ExperimentResult` holding both structured data (for assertions
in the benchmark harness) and rendered text (for humans). The
:class:`ExperimentContext` memoises the expensive inputs — the full
237,897-point sweep and the taxonomy over it — so regenerating all
fourteen artifacts costs one sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.analysis.crossover import crossover_map
from repro.analysis.speedup import (
    cdf_by_category,
    configuration_ceiling,
    overall_cdf,
)
from repro.analysis.suite_scaling import (
    analyse_all_suites,
    useful_cu_histogram,
)
from repro.report.figures import (
    Figure,
    FigureSeries,
    render_figure,
    render_heatmap,
)
from repro.report.tables import render_kv, render_table
from repro.suites import all_suites
from repro.sweep.dataset import ScalingDataset
from repro.sweep.runner import collect_paper_dataset
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace
from repro.sweep.views import Axis, axis_slice, clock_surface
from repro.taxonomy.categories import TaxonomyCategory
from repro.taxonomy.classifier import TaxonomyResult, classify
from repro.taxonomy.clustering import evaluate_agreement


@dataclass(frozen=True)
class ExperimentResult:
    """Output of regenerating one table or figure."""

    experiment_id: str
    title: str
    text: str
    data: Dict


class ExperimentContext:
    """Shared, memoised inputs for all experiment producers.

    *cache*, when given, is a :class:`~repro.sweep.cache.SweepCache`
    consulted before simulating: a warm cache regenerates every
    artifact without a single engine call (``gpuscale report`` wires
    this up unless ``--no-cache`` is passed).
    """

    def __init__(
        self,
        space: ConfigurationSpace = PAPER_SPACE,
        cache=None,
    ):
        self._space = space
        self._cache = cache
        self._dataset: Optional[ScalingDataset] = None
        self._taxonomy: Optional[TaxonomyResult] = None

    @property
    def dataset(self) -> ScalingDataset:
        """The full sweep (collected and validated on first access)."""
        if self._dataset is None:
            if self._cache is not None:
                from repro.sweep.cache import cached_paper_dataset

                self._dataset = cached_paper_dataset(
                    space=self._space, cache=self._cache
                ).validate()
            else:
                self._dataset = collect_paper_dataset(
                    space=self._space
                ).validate()
        return self._dataset

    @property
    def taxonomy(self) -> TaxonomyResult:
        """Taxonomy labels over :attr:`dataset`."""
        if self._taxonomy is None:
            self._taxonomy = classify(self.dataset)
        return self._taxonomy

    def representatives(
        self, category: TaxonomyCategory, count: int = 4
    ) -> List[str]:
        """Up to *count* kernels of *category*, largest end-to-end
        gain first (ties broken by name for determinism)."""
        members = self.taxonomy.kernels_in(category)
        gains = {
            label.kernel_name: label.features.end_to_end_gain
            for label in self.taxonomy.labels
        }
        ranked = sorted(members, key=lambda n: (-gains[n], n))
        return ranked[:count]


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------


def t1_suite_inventory(ctx: ExperimentContext) -> ExperimentResult:
    """T1: the 97-program / 267-kernel suite inventory."""
    rows = [
        [s.name, s.program_count, s.kernel_count] for s in all_suites()
    ]
    total_programs = sum(r[1] for r in rows)
    total_kernels = sum(r[2] for r in rows)
    rows.append(["total", total_programs, total_kernels])
    text = render_table(
        ["suite", "programs", "kernels"],
        rows,
        title="T1: Benchmark suites characterised",
    )
    return ExperimentResult(
        "T1",
        "Benchmark suites characterised",
        text,
        {
            "per_suite": {r[0]: (r[1], r[2]) for r in rows[:-1]},
            "total_programs": total_programs,
            "total_kernels": total_kernels,
        },
    )


def t2_config_space(ctx: ExperimentContext) -> ExperimentResult:
    """T2: the 891-configuration hardware grid and its knob ranges."""
    space = ctx.dataset.space
    cu_ratio, eng_ratio, mem_ratio = space.axis_ranges
    pairs = [
        ["cu settings", len(space.cu_counts)],
        ["cu range", f"{space.cu_counts[0]}..{space.cu_counts[-1]}"],
        ["cu ratio", cu_ratio],
        ["engine states", len(space.engine_mhz)],
        ["engine range (MHz)",
         f"{space.engine_mhz[0]:g}..{space.engine_mhz[-1]:g}"],
        ["engine ratio", eng_ratio],
        ["memory states", len(space.memory_mhz)],
        ["memory range (MHz)",
         f"{space.memory_mhz[0]:g}..{space.memory_mhz[-1]:g}"],
        ["bandwidth ratio", mem_ratio],
        ["total configurations", space.size],
    ]
    text = render_kv(pairs, title="T2: Hardware configuration space")
    return ExperimentResult(
        "T2",
        "Hardware configuration space",
        text,
        {
            "size": space.size,
            "cu_ratio": cu_ratio,
            "engine_ratio": eng_ratio,
            "bandwidth_ratio": mem_ratio,
        },
    )


def t3_taxonomy_counts(ctx: ExperimentContext) -> ExperimentResult:
    """T3: kernels per taxonomy category."""
    counts = ctx.taxonomy.category_counts()
    total = sum(counts.values())
    rows = [
        [
            cat.value,
            "intuitive" if cat.is_intuitive else "non-obvious",
            n,
            100.0 * n / total,
        ]
        for cat, n in counts.items()
    ]
    text = render_table(
        ["category", "family", "kernels", "percent"],
        rows,
        title="T3: Taxonomy of GPGPU performance scaling",
        precision=1,
    )
    return ExperimentResult(
        "T3",
        "Taxonomy category counts",
        text,
        {
            "counts": {cat.value: n for cat, n in counts.items()},
            "total": total,
            "intuitive_fraction": ctx.taxonomy.intuitive_fraction(),
        },
    )


def t5_axis_behaviours(ctx: ExperimentContext) -> ExperimentResult:
    """T5: per-axis behaviour histogram (how many kernels are linear /
    saturating / flat / inverse along each knob)."""
    histograms = ctx.taxonomy.axis_behaviour_counts()
    from repro.taxonomy.axis import AxisBehaviour

    behaviours = list(AxisBehaviour)
    rows = [
        [axis] + [histograms[axis][b] for b in behaviours]
        for axis in ("cu", "engine", "memory")
    ]
    text = render_table(
        ["axis"] + [b.value for b in behaviours],
        rows,
        title="T5: Per-axis scaling behaviours across all 267 kernels",
    )
    return ExperimentResult(
        "T5",
        "Per-axis behaviour histogram",
        text,
        {
            axis: {b.value: n for b, n in counts.items()}
            for axis, counts in histograms.items()
        },
    )


def s1_study_summary(ctx: ExperimentContext) -> ExperimentResult:
    """S1: the abstract-style study summary with measured numbers."""
    from repro.report.summary import study_summary

    text = study_summary(ctx)
    return ExperimentResult(
        "S1", "Study summary", text, {"summary": text}
    )


def t4_suite_breakdown(ctx: ExperimentContext) -> ExperimentResult:
    """T4: taxonomy category counts per suite."""
    by_suite = ctx.taxonomy.by_suite()
    categories = list(TaxonomyCategory)
    rows = [
        [suite] + [counts[cat] for cat in categories]
        for suite, counts in sorted(by_suite.items())
    ]
    text = render_table(
        ["suite"] + [c.value for c in categories],
        rows,
        title="T4: Taxonomy breakdown per suite",
    )
    return ExperimentResult(
        "T4",
        "Taxonomy breakdown per suite",
        text,
        {
            suite: {cat.value: n for cat, n in counts.items()}
            for suite, counts in by_suite.items()
        },
    )


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------


def _axis_figure(
    ctx: ExperimentContext,
    figure_id: str,
    title: str,
    axis: Axis,
    category: TaxonomyCategory,
    count: int = 4,
) -> ExperimentResult:
    kernels = ctx.representatives(category, count)
    series = []
    for name in kernels:
        slice_ = axis_slice(ctx.dataset, name, axis)
        series.append(
            FigureSeries(
                label=name, x=slice_.knob_values, y=slice_.speedup
            )
        )
    figure = Figure(
        figure_id=figure_id,
        title=title,
        x_label=axis.value,
        y_label="speedup vs axis minimum",
        series=tuple(series),
    )
    return ExperimentResult(
        figure_id,
        title,
        render_figure(figure),
        {
            "kernels": kernels,
            "series": {
                s.label: {"x": list(s.x), "y": list(s.y)} for s in series
            },
        },
    )


def f1_cu_scaling(ctx: ExperimentContext) -> ExperimentResult:
    """F1: compute-bound kernels scaling with CU count."""
    return _axis_figure(
        ctx,
        "F1",
        "Compute-bound kernels vs CU count (clocks at max)",
        Axis.CU,
        TaxonomyCategory.COMPUTE_BOUND,
    )


def f2_engine_scaling(ctx: ExperimentContext) -> ExperimentResult:
    """F2: engine-frequency scaling of compute-bound kernels."""
    return _axis_figure(
        ctx,
        "F2",
        "Compute-bound kernels vs engine clock (44 CUs, memory at max)",
        Axis.ENGINE,
        TaxonomyCategory.COMPUTE_BOUND,
    )


def f3_bandwidth_scaling(ctx: ExperimentContext) -> ExperimentResult:
    """F3: memory-bandwidth scaling of bandwidth-bound kernels."""
    return _axis_figure(
        ctx,
        "F3",
        "Bandwidth-bound kernels vs memory clock (44 CUs, engine at max)",
        Axis.MEMORY,
        TaxonomyCategory.BANDWIDTH_BOUND,
    )


def f4_plateau_surface(ctx: ExperimentContext) -> ExperimentResult:
    """F4: the (engine, memory) plateau surface of a plateau kernel."""
    kernels = ctx.representatives(TaxonomyCategory.PLATEAU, 1)
    name = kernels[0]
    surface = clock_surface(ctx.dataset, name)
    space = ctx.dataset.space
    text = render_heatmap(
        surface,
        space.engine_mhz,
        space.memory_mhz,
        title=(
            f"F4: {name} speedup over (engine, memory) plane at 44 CUs "
            f"(max {surface.max():.2f}x despite 5x/8.3x knob ranges)"
        ),
    )
    return ExperimentResult(
        "F4",
        "Frequency/bandwidth plateau surface",
        text,
        {"kernel": name, "surface": surface.tolist(),
         "max_gain": float(surface.max())},
    )


def f5_inverse_cu(ctx: ExperimentContext) -> ExperimentResult:
    """F5: kernels that lose performance as CUs are added."""
    result = _axis_figure(
        ctx,
        "F5",
        "Inverse scaling: performance LOSS with added CUs",
        Axis.CU,
        TaxonomyCategory.CU_INVERSE,
    )
    drops = {}
    for name in result.data["kernels"]:
        label = ctx.taxonomy.label_for(name)
        drops[name] = label.features.cu.drop_from_peak
    data = dict(result.data)
    data["drop_from_peak"] = drops
    return ExperimentResult(result.experiment_id, result.title,
                            result.text, data)


def f6_category_histogram(ctx: ExperimentContext) -> ExperimentResult:
    """F6: distribution of all 267 kernels across categories."""
    counts = ctx.taxonomy.category_counts()
    rows = [[cat.value, n] for cat, n in counts.items()]
    text = render_table(
        ["category", "kernels"],
        rows,
        title="F6: Kernel distribution across the taxonomy",
    )
    return ExperimentResult(
        "F6",
        "Taxonomy histogram",
        text,
        {"counts": {cat.value: n for cat, n in counts.items()}},
    )


def f7_suite_scalability(ctx: ExperimentContext) -> ExperimentResult:
    """F7: do the suites scale to modern GPU sizes?"""
    per_suite = analyse_all_suites(ctx.dataset, ctx.taxonomy)
    rows = [
        [
            s.suite,
            s.kernel_count,
            s.median_useful_cus,
            100.0 * s.fraction_scaling_to_full,
            100.0 * (s.fraction_parallelism_starved or 0.0),
            s.scales_to_modern_gpus,
        ]
        for s in per_suite.values()
    ]
    text = render_table(
        [
            "suite",
            "kernels",
            "median useful CUs",
            "% scaling to 44",
            "% starved of work",
            "scales?",
        ],
        rows,
        title="F7: Suite scalability to modern GPU sizes",
        precision=1,
    )
    histogram = useful_cu_histogram(ctx.dataset)
    return ExperimentResult(
        "F7",
        "Suite scalability",
        text,
        {
            "per_suite": {
                s.suite: {
                    "median_useful_cus": s.median_useful_cus,
                    "fraction_scaling_to_full": s.fraction_scaling_to_full,
                    "fraction_parallelism_starved": (
                        s.fraction_parallelism_starved
                    ),
                    "scales": s.scales_to_modern_gpus,
                }
                for s in per_suite.values()
            },
            "useful_cu_histogram": histogram,
        },
    )


def f8_crossover(ctx: ExperimentContext) -> ExperimentResult:
    """F8: compute<->bandwidth crossover maps for balanced kernels."""
    kernels = ctx.representatives(TaxonomyCategory.BALANCED, 2)
    space = ctx.dataset.space
    blocks = []
    data = {}
    for name in kernels:
        cmap = crossover_map(ctx.dataset, name)
        blocks.append(
            render_heatmap(
                cmap.dominance.astype(np.float64),
                space.engine_mhz,
                space.memory_mhz,
                title=(
                    f"F8: {name} dominant knob over (engine, memory) "
                    "(dark=engine, light=memory)"
                ),
            )
        )
        data[name] = {
            "compute_fraction": cmap.compute_bound_fraction,
            "bandwidth_fraction": cmap.bandwidth_bound_fraction,
            "has_crossover": cmap.has_crossover,
        }
    return ExperimentResult(
        "F8", "Bottleneck crossover maps", "\n\n".join(blocks), data
    )


def f9_speedup_cdf(ctx: ExperimentContext) -> ExperimentResult:
    """F9: end-to-end speedup CDFs, overall and per category."""
    cdfs = cdf_by_category(ctx.dataset, ctx.taxonomy)
    overall = overall_cdf(ctx.dataset)
    series = [
        FigureSeries(
            label="all",
            x=tuple(overall.sorted_speedups),
            y=tuple(overall.cdf_y),
        )
    ]
    medians = {"all": overall.median}
    for category, cdf in cdfs.items():
        series.append(
            FigureSeries(
                label=category.value,
                x=tuple(cdf.sorted_speedups),
                y=tuple(cdf.cdf_y),
            )
        )
        medians[category.value] = cdf.median
    figure = Figure(
        figure_id="F9",
        title="End-to-end speedup CDFs (min config -> max config)",
        x_label="speedup",
        y_label="fraction of kernels",
        series=tuple(series),
    )
    return ExperimentResult(
        "F9",
        "Speedup CDFs",
        render_figure(figure),
        {
            "medians": medians,
            "ceiling": configuration_ceiling(ctx.dataset),
        },
    )


def f10_cluster_agreement(ctx: ExperimentContext) -> ExperimentResult:
    """F10: unsupervised clusters vs the rule-based taxonomy."""
    agreement = evaluate_agreement(ctx.dataset, ctx.taxonomy)
    pairs = [
        ["cluster purity", agreement.purity],
        ["adjusted rand index", agreement.adjusted_rand_index],
        ["agrees", agreement.agrees],
    ]
    text = render_kv(
        pairs, title="F10: Cluster vs taxonomy agreement"
    )
    return ExperimentResult(
        "F10",
        "Cluster agreement",
        text,
        {
            "purity": agreement.purity,
            "ari": agreement.adjusted_rand_index,
            "majorities": agreement.cluster_majorities,
        },
    )


#: All experiment producers, keyed by experiment ID.
EXPERIMENTS: Dict[str, Callable[[ExperimentContext], ExperimentResult]] = {
    "S1": s1_study_summary,
    "T1": t1_suite_inventory,
    "T2": t2_config_space,
    "T3": t3_taxonomy_counts,
    "T4": t4_suite_breakdown,
    "T5": t5_axis_behaviours,
    "F1": f1_cu_scaling,
    "F2": f2_engine_scaling,
    "F3": f3_bandwidth_scaling,
    "F4": f4_plateau_surface,
    "F5": f5_inverse_cu,
    "F6": f6_category_histogram,
    "F7": f7_suite_scalability,
    "F8": f8_crossover,
    "F9": f9_speedup_cdf,
    "F10": f10_cluster_agreement,
}


def run_experiment(
    experiment_id: str, ctx: Optional[ExperimentContext] = None
) -> ExperimentResult:
    """Regenerate one experiment by ID."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id](ctx or ExperimentContext())


def run_all(
    ctx: Optional[ExperimentContext] = None,
) -> Dict[str, ExperimentResult]:
    """Regenerate every table and figure (one shared sweep)."""
    ctx = ctx or ExperimentContext()
    return {eid: fn(ctx) for eid, fn in EXPERIMENTS.items()}
