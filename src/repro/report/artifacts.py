"""Artifact writer: persist regenerated experiments to disk.

``write_artifacts`` renders every (or a chosen subset of) experiment to
a Markdown file plus a machine-readable JSON sidecar, and an index file
linking them — the layout a paper-reproduction CI job archives.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from repro.atomic import atomic_write_text
from repro.report.experiments import (
    EXPERIMENTS,
    ExperimentContext,
    ExperimentResult,
)


def _artifact_markdown(result: ExperimentResult) -> str:
    return (
        f"# {result.experiment_id}: {result.title}\n\n"
        "```\n"
        f"{result.text}\n"
        "```\n"
    )


def write_artifacts(
    output_dir: Union[str, Path],
    experiment_ids: Optional[Iterable[str]] = None,
    ctx: Optional[ExperimentContext] = None,
) -> Dict[str, Path]:
    """Regenerate experiments and write them under *output_dir*.

    Returns experiment id -> Markdown path. Each experiment also gets
    a ``<id>.json`` with its structured data, and the directory gets an
    ``INDEX.md``. Every file is written atomically (temp file +
    rename), so an interrupted regeneration never leaves a truncated
    artifact behind.
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    ctx = ctx or ExperimentContext()
    ids = list(experiment_ids) if experiment_ids else sorted(EXPERIMENTS)

    written: Dict[str, Path] = {}
    index_lines = ["# Regenerated experiments", ""]
    for experiment_id in ids:
        result = EXPERIMENTS[experiment_id](ctx)
        md_path = output_dir / f"{experiment_id}.md"
        atomic_write_text(md_path, _artifact_markdown(result))
        json_path = output_dir / f"{experiment_id}.json"
        atomic_write_text(json_path, json.dumps(result.data, indent=2,
                                                default=str))
        written[experiment_id] = md_path
        index_lines.append(
            f"- [{experiment_id}]({md_path.name}) — {result.title} "
            f"([data]({json_path.name}))"
        )
    atomic_write_text(output_dir / "INDEX.md",
                      "\n".join(index_lines) + "\n")
    return written
