"""Reporting: ASCII tables/figures and the experiment registry."""

from repro.report.artifacts import write_artifacts
from repro.report.experiments import (
    EXPERIMENTS,
    ExperimentContext,
    ExperimentResult,
    run_all,
    run_experiment,
)
from repro.report.figures import (
    Figure,
    figure_to_csv,
    FigureSeries,
    render_figure,
    render_heatmap,
    sparkline,
)
from repro.report.summary import study_summary
from repro.report.tables import format_cell, render_kv, render_table

__all__ = [
    "EXPERIMENTS",
    "ExperimentContext",
    "ExperimentResult",
    "Figure",
    "FigureSeries",
    "figure_to_csv",
    "format_cell",
    "render_figure",
    "render_heatmap",
    "render_kv",
    "render_table",
    "run_all",
    "run_experiment",
    "sparkline",
    "study_summary",
    "write_artifacts",
]
