"""Study-summary generator: the abstract, with our measured numbers.

``study_summary`` renders the reproduction's headline findings in the
same narrative order as the paper's abstract, with every quantitative
claim filled in from a live run — a one-call answer to "what did the
reproduction find?" that also feeds EXPERIMENTS.md regeneration.
"""

from __future__ import annotations

from repro.analysis.suite_scaling import analyse_all_suites
from repro.report.experiments import ExperimentContext
from repro.taxonomy.categories import TaxonomyCategory


def study_summary(ctx: ExperimentContext = None) -> str:
    """The reproduction's abstract-style summary paragraph."""
    ctx = ctx or ExperimentContext()
    dataset = ctx.dataset
    taxonomy = ctx.taxonomy
    space = dataset.space
    counts = taxonomy.category_counts()
    cu_ratio, eng_ratio, mem_ratio = space.axis_ranges

    per_suite = analyse_all_suites(dataset, taxonomy)
    failing = sorted(
        s.suite for s in per_suite.values()
        if not s.scales_to_modern_gpus
    )

    intuitive = sum(
        n for c, n in counts.items() if c.is_intuitive
    )
    inverse = counts[TaxonomyCategory.CU_INVERSE]
    plateau = counts[TaxonomyCategory.PLATEAU]
    starved = counts[TaxonomyCategory.PARALLELISM_LIMITED]

    return (
        f"This reproduction presents performance scaling data for "
        f"{dataset.num_kernels} GPGPU kernels from 97 programs run on "
        f"{space.size} hardware configurations of a modelled GCN-class "
        f"GPU, across a {eng_ratio:.0f}x change in core frequency, a "
        f"{mem_ratio:.1f}x change in memory bandwidth, and a "
        f"{cu_ratio:.0f}x difference in compute units. "
        f"{intuitive} kernels ({100 * intuitive / dataset.num_kernels:.0f}%) "
        f"scale in intuitive ways: {counts[TaxonomyCategory.COMPUTE_BOUND]} "
        f"with added computational capability, "
        f"{counts[TaxonomyCategory.BANDWIDTH_BOUND]} with memory "
        f"bandwidth, and {counts[TaxonomyCategory.BALANCED]} with both. "
        f"The remainder scale in non-obvious ways: {inverse} kernels "
        f"lose performance when more processing units are added, "
        f"{plateau} plateau as frequency and bandwidth are increased, "
        f"and {starved} cannot fill the device at all. "
        f"{len(failing)} of the 8 studied benchmark suites "
        f"({', '.join(failing)}) do not scale to modern GPU sizes, "
        f"implying that either new benchmarks or new inputs are "
        f"warranted."
    )
