"""Figure data series and text rendering (sparklines, heatmaps).

Each figure in the benchmark harness is backed by a
:class:`FigureSeries` (named x/y arrays) so the numbers are available
programmatically, plus a text renderer for terminal inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

_SPARK_CHARS = "▁▂▃▄▅▆▇█"
_HEAT_CHARS = " .:-=+*#%@"


@dataclass(frozen=True)
class FigureSeries:
    """One named line of a figure."""

    label: str
    x: Tuple[float, ...]
    y: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: {len(self.x)} x-values vs "
                f"{len(self.y)} y-values"
            )


@dataclass(frozen=True)
class Figure:
    """A figure: identity, axis labels, and its series."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: Tuple[FigureSeries, ...]

    def series_by_label(self, label: str) -> FigureSeries:
        """Look up one series; raises ``KeyError``."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(
            f"figure {self.figure_id} has no series {label!r}; "
            f"available: {[s.label for s in self.series]}"
        )


def sparkline(values: Sequence[float]) -> str:
    """Render values as a unicode sparkline (min..max mapped to bars)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return ""
    low, high = float(arr.min()), float(arr.max())
    if high == low:
        return _SPARK_CHARS[0] * arr.size
    scaled = (arr - low) / (high - low) * (len(_SPARK_CHARS) - 1)
    return "".join(_SPARK_CHARS[int(round(v))] for v in scaled)


def render_figure(figure: Figure, precision: int = 2) -> str:
    """Render a figure as labelled sparklines with endpoint values."""
    lines = [f"{figure.figure_id}: {figure.title}"]
    lines.append(f"  x: {figure.x_label}   y: {figure.y_label}")
    width = max((len(s.label) for s in figure.series), default=0)
    for s in figure.series:
        spark = sparkline(s.y)
        first = f"{s.y[0]:.{precision}f}"
        last = f"{s.y[-1]:.{precision}f}"
        lines.append(
            f"  {s.label.ljust(width)}  {spark}  [{first} -> {last}]"
        )
    return "\n".join(lines)


def figure_to_csv(figure: Figure) -> str:
    """Long-format CSV of a figure's series (for external plotting).

    Columns: series, x, y — one row per data point, so any plotting
    stack (pandas/gnuplot/spreadsheet) can regenerate the figure from
    the harness output.
    """
    lines = ["series,x,y"]
    for series in figure.series:
        for x, y in zip(series.x, series.y):
            lines.append(f"{series.label},{x:g},{y:g}")
    return "\n".join(lines) + "\n"


def render_heatmap(
    grid: np.ndarray,
    row_labels: Sequence[float],
    col_labels: Sequence[float],
    title: str = "",
) -> str:
    """Render a 2-D array as a character-density heatmap.

    Rows print top-to-bottom in *reverse* order so larger row values
    sit visually "up", matching conventional axis orientation.
    """
    grid = np.asarray(grid, dtype=np.float64)
    low, high = float(grid.min()), float(grid.max())
    span = high - low if high > low else 1.0
    lines = [title] if title else []
    for i in reversed(range(grid.shape[0])):
        cells = []
        for j in range(grid.shape[1]):
            level = (grid[i, j] - low) / span
            cells.append(
                _HEAT_CHARS[int(round(level * (len(_HEAT_CHARS) - 1)))]
            )
        lines.append(f"{row_labels[i]:>8g} |" + "".join(cells) + "|")
    footer = "".join("-" for _ in range(grid.shape[1]))
    lines.append(f"{'':>8s} +{footer}+")
    lines.append(
        f"{'':>10s}{col_labels[0]:g} .. {col_labels[-1]:g}"
    )
    return "\n".join(lines)
