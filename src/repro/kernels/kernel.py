"""Kernel and launch-geometry definitions.

A :class:`Kernel` pairs a name (``program.kernel`` identifiers mirror
the paper's "267 kernels from 97 programs" accounting), the behavioural
profile (:class:`~repro.kernels.characteristics.KernelCharacteristics`),
the launch geometry, and the per-wavefront resource usage that
determines occupancy on a GCN compute unit.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.kernels.characteristics import KernelCharacteristics

#: GCN wavefront width (work-items per wavefront).
WAVEFRONT_SIZE = 64


@dataclass(frozen=True)
class LaunchGeometry:
    """NDRange launch shape, flattened to one dimension.

    The scaling study cares about *how much* parallelism a launch
    exposes, not its dimensionality, so grids are recorded as a flat
    work-item count plus the workgroup size.
    """

    global_size: int
    workgroup_size: int = 256

    def __post_init__(self) -> None:
        if self.global_size < 1:
            raise WorkloadError(
                f"global_size must be >= 1, got {self.global_size}"
            )
        if self.workgroup_size < 1:
            raise WorkloadError(
                f"workgroup_size must be >= 1, got {self.workgroup_size}"
            )
        if self.workgroup_size > 1024:
            raise WorkloadError(
                "workgroup_size exceeds the OpenCL/GCN limit of 1024 "
                f"work-items, got {self.workgroup_size}"
            )

    @property
    def num_workgroups(self) -> int:
        """Workgroups launched (ceil of global over workgroup size)."""
        return math.ceil(self.global_size / self.workgroup_size)

    @property
    def waves_per_workgroup(self) -> int:
        """Wavefronts per workgroup (ceil of workgroup over 64 lanes)."""
        return math.ceil(self.workgroup_size / WAVEFRONT_SIZE)

    @property
    def total_waves(self) -> int:
        """Wavefronts in the whole launch."""
        return self.num_workgroups * self.waves_per_workgroup


@dataclass(frozen=True)
class ResourceUsage:
    """Per-wavefront register and per-workgroup LDS consumption.

    These are the three resources whose exhaustion limits GCN occupancy
    (besides the architectural wave-slot cap): vector registers, scalar
    registers, and local data share.
    """

    vgprs: int = 32
    sgprs: int = 24
    lds_bytes_per_workgroup: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.vgprs <= 256:
            raise WorkloadError(f"vgprs must be in [1, 256], got {self.vgprs}")
        if not 1 <= self.sgprs <= 102:
            raise WorkloadError(f"sgprs must be in [1, 102], got {self.sgprs}")
        if self.lds_bytes_per_workgroup < 0:
            raise WorkloadError(
                "lds_bytes_per_workgroup must be >= 0, got "
                f"{self.lds_bytes_per_workgroup}"
            )


@dataclass(frozen=True)
class Kernel:
    """A single GPGPU kernel: identity, behaviour, geometry, resources."""

    program: str
    name: str
    characteristics: KernelCharacteristics
    geometry: LaunchGeometry
    resources: ResourceUsage = field(default_factory=ResourceUsage)
    suite: str = ""

    def __post_init__(self) -> None:
        if not self.program:
            raise WorkloadError("program name must be non-empty")
        if not self.name:
            raise WorkloadError("kernel name must be non-empty")

    @property
    def full_name(self) -> str:
        """Stable ``suite/program.kernel`` identifier."""
        prefix = f"{self.suite}/" if self.suite else ""
        return f"{prefix}{self.program}.{self.name}"

    def replace(self, **changes) -> "Kernel":
        """Return a copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """Serialise to a plain JSON-compatible dict."""
        return {
            "program": self.program,
            "name": self.name,
            "suite": self.suite,
            "characteristics": self.characteristics.to_dict(),
            "geometry": dataclasses.asdict(self.geometry),
            "resources": dataclasses.asdict(self.resources),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Kernel":
        """Reconstruct a kernel from :meth:`to_dict` output."""
        return cls(
            program=payload["program"],
            name=payload["name"],
            suite=payload.get("suite", ""),
            characteristics=KernelCharacteristics.from_dict(
                payload["characteristics"]
            ),
            geometry=LaunchGeometry(**payload["geometry"]),
            resources=ResourceUsage(**payload["resources"]),
        )
