"""Structure-of-arrays packing of many kernels for whole-study batching.

The study's unit of work is not one kernel but the *entire catalog*:
267 kernels, each carrying an 18-field behavioural vector plus launch
geometry and per-wavefront resource usage. Evaluating them one
``Kernel`` object at a time leaves a 267-iteration Python loop around
the vectorized grid engine — the last interpreter-bound axis of the
sweep. :class:`KernelPack` removes it by packing every per-kernel
quantity into one contiguous ``float64``/``int64`` NumPy array per
field, so the interval model can broadcast over a
``(kernel, cu, engine, memory)`` 4-D lattice in a handful of array
operations (see ``repro/gpu/interval_batch.py``,
``BatchIntervalModel.simulate_study``).

Packing is lossless: :meth:`KernelPack.unpack` reconstructs the exact
``Kernel`` objects (property-tested in ``tests/kernels/test_pack.py``),
so the pack is a pure layout transformation, never a approximation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.kernels.characteristics import KernelCharacteristics
from repro.kernels.kernel import Kernel, LaunchGeometry, ResourceUsage

#: Characteristics fields packed as float64 arrays, in declaration
#: order (all 18 fields of :class:`KernelCharacteristics`).
CHARACTERISTIC_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(KernelCharacteristics)
)

#: Integer launch-geometry quantities packed as int64 arrays.
GEOMETRY_FIELDS: Tuple[str, ...] = ("global_size", "workgroup_size")

#: Integer per-wavefront resource quantities packed as int64 arrays.
RESOURCE_FIELDS: Tuple[str, ...] = (
    "vgprs", "sgprs", "lds_bytes_per_workgroup",
)


@dataclass(frozen=True)
class KernelPack:
    """N kernels in structure-of-arrays form.

    Every array has length ``len(self)`` and is contiguous;
    characteristics are ``float64``, geometry and resources ``int64``.
    Derived geometry (workgroup counts, waves) is precomputed once at
    pack time so the study engine never touches Python-level
    properties inside its broadcasts.
    """

    #: ``suite/program.kernel`` identifiers, in pack order.
    names: Tuple[str, ...]
    #: Identity triples needed to reconstruct each :class:`Kernel`.
    programs: Tuple[str, ...]
    kernel_names: Tuple[str, ...]
    suites: Tuple[str, ...]
    #: Field name -> contiguous array (see the *_FIELDS constants).
    characteristics: Dict[str, np.ndarray]
    geometry: Dict[str, np.ndarray]
    resources: Dict[str, np.ndarray]
    #: Derived launch-geometry arrays (int64): workgroups launched,
    #: waves per workgroup, waves in the whole launch.
    num_workgroups: np.ndarray
    waves_per_workgroup: np.ndarray
    total_waves: np.ndarray

    def __len__(self) -> int:
        return len(self.names)

    @classmethod
    def from_kernels(cls, kernels: Sequence[Kernel]) -> "KernelPack":
        """Pack *kernels* (non-empty, unique full names) into arrays."""
        if not kernels:
            raise WorkloadError("cannot pack an empty kernel list")
        names = tuple(k.full_name for k in kernels)
        if len(set(names)) != len(names):
            raise WorkloadError(
                "kernel list contains duplicate full names"
            )
        characteristics = {
            field: np.ascontiguousarray(
                [getattr(k.characteristics, field) for k in kernels],
                dtype=np.float64,
            )
            for field in CHARACTERISTIC_FIELDS
        }
        geometry = {
            field: np.ascontiguousarray(
                [getattr(k.geometry, field) for k in kernels],
                dtype=np.int64,
            )
            for field in GEOMETRY_FIELDS
        }
        resources = {
            field: np.ascontiguousarray(
                [getattr(k.resources, field) for k in kernels],
                dtype=np.int64,
            )
            for field in RESOURCE_FIELDS
        }
        return cls(
            names=names,
            programs=tuple(k.program for k in kernels),
            kernel_names=tuple(k.name for k in kernels),
            suites=tuple(k.suite for k in kernels),
            characteristics=characteristics,
            geometry=geometry,
            resources=resources,
            num_workgroups=np.ascontiguousarray(
                [k.geometry.num_workgroups for k in kernels],
                dtype=np.int64,
            ),
            waves_per_workgroup=np.ascontiguousarray(
                [k.geometry.waves_per_workgroup for k in kernels],
                dtype=np.int64,
            ),
            total_waves=np.ascontiguousarray(
                [k.geometry.total_waves for k in kernels],
                dtype=np.int64,
            ),
        )

    def subset(self, lo: int, hi: int) -> "KernelPack":
        """A contiguous kernel-row slice ``[lo, hi)`` as its own pack.

        Every array is re-materialised contiguous, so a tile shipped to
        a worker process pickles only its own rows, not the parent
        catalog's. Values are copied verbatim — no re-derivation — so a
        sliced pack evaluates bit-identically to the same rows of the
        parent (the kernel-axis tiling invariant the study-mt engine
        relies on).
        """
        if not 0 <= lo < hi <= len(self):
            raise WorkloadError(
                f"invalid pack slice [{lo}, {hi}) of {len(self)} kernels"
            )
        sl = slice(lo, hi)
        return KernelPack(
            names=self.names[sl],
            programs=self.programs[sl],
            kernel_names=self.kernel_names[sl],
            suites=self.suites[sl],
            characteristics={
                field: np.ascontiguousarray(arr[sl])
                for field, arr in self.characteristics.items()
            },
            geometry={
                field: np.ascontiguousarray(arr[sl])
                for field, arr in self.geometry.items()
            },
            resources={
                field: np.ascontiguousarray(arr[sl])
                for field, arr in self.resources.items()
            },
            num_workgroups=np.ascontiguousarray(self.num_workgroups[sl]),
            waves_per_workgroup=np.ascontiguousarray(
                self.waves_per_workgroup[sl]
            ),
            total_waves=np.ascontiguousarray(self.total_waves[sl]),
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def ch(self, field: str) -> np.ndarray:
        """One characteristics array by field name (float64)."""
        return self.characteristics[field]

    @property
    def global_bytes_per_item(self) -> np.ndarray:
        """Loads + stores per work-item, mirroring the scalar property
        (same addition order, so the study path stays bit-exact)."""
        return (
            self.characteristics["global_load_bytes_per_item"]
            + self.characteristics["global_store_bytes_per_item"]
        )

    # ------------------------------------------------------------------
    # Round trip
    # ------------------------------------------------------------------

    def kernel(self, index: int) -> Kernel:
        """Reconstruct the kernel at *index* (exact round trip)."""
        return Kernel(
            program=self.programs[index],
            name=self.kernel_names[index],
            suite=self.suites[index],
            characteristics=KernelCharacteristics(
                **{
                    field: float(self.characteristics[field][index])
                    for field in CHARACTERISTIC_FIELDS
                }
            ),
            geometry=LaunchGeometry(
                **{
                    field: int(self.geometry[field][index])
                    for field in GEOMETRY_FIELDS
                }
            ),
            resources=ResourceUsage(
                **{
                    field: int(self.resources[field][index])
                    for field in RESOURCE_FIELDS
                }
            ),
        )

    def unpack(self) -> List[Kernel]:
        """Reconstruct every packed kernel, in pack order."""
        return [self.kernel(i) for i in range(len(self))]


def pack_kernels(kernels: Sequence[Kernel]) -> KernelPack:
    """Module-level convenience wrapper around
    :meth:`KernelPack.from_kernels`."""
    return KernelPack.from_kernels(kernels)


# ----------------------------------------------------------------------
# Pack memoization
# ----------------------------------------------------------------------

#: Catalogs worth caching packs for. The full study catalog plus a few
#: alternates (per-suite subsets, ablations) fit comfortably; anything
#: churning through more distinct catalogs than this is not a study
#: loop and should not hold packs alive.
_PACK_CACHE_CAPACITY = 8

_pack_cache: "OrderedDict[str, KernelPack]" = OrderedDict()
_pack_cache_lock = threading.Lock()


def catalog_fingerprint(kernels: Sequence[Kernel]) -> str:
    """A content hash identifying *kernels* (values and order).

    Hashes the canonical dict form of every kernel, so two catalogs
    fingerprint equal exactly when packing them yields equal packs.
    Deliberately local (hashlib over sorted-keys JSON) rather than
    borrowing the sweep cache's fingerprint helper: the kernels layer
    sits below ``repro.sweep`` and must not import it.
    """
    digest = hashlib.sha256()
    for kernel in kernels:
        digest.update(
            json.dumps(kernel.to_dict(), sort_keys=True).encode()
        )
        digest.update(b"\x00")
    return digest.hexdigest()


def memoized_pack(kernels: Sequence[Kernel]) -> KernelPack:
    """Pack *kernels*, reusing a cached pack for a known catalog.

    Keyed by :func:`catalog_fingerprint`, so repeated whole-study calls
    over the same 267-kernel catalog stop re-packing it every time.
    The returned pack is shared — safe because :class:`KernelPack` is
    frozen and the engines treat its arrays as read-only. A small LRU
    bounds memory across distinct catalogs.
    """
    key = catalog_fingerprint(kernels)
    with _pack_cache_lock:
        cached = _pack_cache.get(key)
        if cached is not None:
            _pack_cache.move_to_end(key)
            return cached
    pack = KernelPack.from_kernels(list(kernels))
    with _pack_cache_lock:
        _pack_cache[key] = pack
        _pack_cache.move_to_end(key)
        while len(_pack_cache) > _PACK_CACHE_CAPACITY:
            _pack_cache.popitem(last=False)
    return pack


def clear_pack_cache() -> None:
    """Drop every memoized pack (test isolation hook)."""
    with _pack_cache_lock:
        _pack_cache.clear()
