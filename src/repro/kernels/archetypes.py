"""Constructors for the scaling-behaviour archetypes.

The paper's taxonomy names recurring scaling shapes; each function here
builds a :class:`~repro.kernels.kernel.Kernel` whose characteristics
mechanistically produce one of those shapes on the modelled GPU:

* :func:`compute_kernel` — arithmetic intensity far above the machine
  balance point: performance tracks CU count x engine clock.
* :func:`streaming_kernel` — low intensity, well-coalesced streams:
  performance tracks memory bandwidth once enough CUs are active.
* :func:`balanced_kernel` — intensity near the balance point: both
  clock knobs matter, with a visible crossover.
* :func:`cache_resident_kernel` — footprint inside the L2: scales with
  engine clock (the L2 clock domain), flat in memory clock.
* :func:`latency_kernel` — dependence chains + low occupancy: saturates
  early on both clock axes (the paper's plateau class).
* :func:`limited_parallelism_kernel` — too few workgroups to fill the
  device: flat beyond a small CU count.
* :func:`thrashing_kernel` — per-workgroup private footprints that
  overflow the L2 as CUs are added: performance *falls* at high CU
  counts (the paper's inverse class).
* :func:`atomic_kernel` — contended global atomics: serialisation grows
  with concurrency, another inverse/flat-CU mechanism.
* :func:`divergent_kernel`, :func:`lds_kernel`, :func:`tiny_kernel` —
  secondary behaviours (branch divergence, LDS-bound stencils,
  launch-overhead-dominated microkernels).

Suite modules layer realistic names and per-kernel parameter tweaks on
top of these constructors; every parameter can be overridden.
"""

from __future__ import annotations


from repro.kernels.characteristics import KernelCharacteristics
from repro.kernels.kernel import Kernel, LaunchGeometry, ResourceUsage

#: Default launch: 1 Mi work-items in 256-wide workgroups (4096 WGs).
DEFAULT_GLOBAL = 1 << 20
DEFAULT_WG = 256



def _merged(overrides: dict, **defaults) -> KernelCharacteristics:
    """Build characteristics from archetype *defaults*, letting caller
    *overrides* win on conflicts (so suites can retune any field)."""
    params = dict(defaults)
    params.update(overrides)
    return KernelCharacteristics(**params)

def _build(
    program: str,
    name: str,
    characteristics: KernelCharacteristics,
    global_size: int,
    workgroup_size: int,
    vgprs: int,
    sgprs: int,
    lds_bytes: int,
    suite: str,
) -> Kernel:
    return Kernel(
        program=program,
        name=name,
        suite=suite,
        characteristics=characteristics,
        geometry=LaunchGeometry(
            global_size=global_size, workgroup_size=workgroup_size
        ),
        resources=ResourceUsage(
            vgprs=vgprs, sgprs=sgprs, lds_bytes_per_workgroup=lds_bytes
        ),
    )


def compute_kernel(
    program: str,
    name: str = "main",
    suite: str = "",
    valu_ops: float = 2400.0,
    load_bytes: float = 16.0,
    store_bytes: float = 4.0,
    global_size: int = DEFAULT_GLOBAL,
    workgroup_size: int = DEFAULT_WG,
    vgprs: int = 40,
    simd_efficiency: float = 1.0,
    **overrides,
) -> Kernel:
    """Arithmetic-heavy kernel (dense math, crypto, n-body forces)."""
    ch = _merged(
        overrides,
        valu_ops_per_item=valu_ops,
        global_load_bytes_per_item=load_bytes,
        global_store_bytes_per_item=store_bytes,
        salu_ops_per_item=valu_ops * 0.04,
        l1_reuse=0.3,
        l2_reuse=0.5,
        coalescing_efficiency=0.9,
        simd_efficiency=simd_efficiency,
        memory_parallelism=6.0,
    )
    return _build(
        program, name, ch, global_size, workgroup_size, vgprs, 32, 0, suite
    )


def streaming_kernel(
    program: str,
    name: str = "main",
    suite: str = "",
    valu_ops: float = 80.0,
    load_bytes: float = 24.0,
    store_bytes: float = 8.0,
    footprint_mib: float = 256.0,
    coalescing: float = 0.9,
    global_size: int = DEFAULT_GLOBAL * 4,
    workgroup_size: int = DEFAULT_WG,
    **overrides,
) -> Kernel:
    """Bandwidth-bound streaming kernel (SAXPY, copy, histogram read)."""
    ch = _merged(
        overrides,
        valu_ops_per_item=valu_ops,
        global_load_bytes_per_item=load_bytes,
        global_store_bytes_per_item=store_bytes,
        salu_ops_per_item=valu_ops * 0.05,
        l1_reuse=0.1,
        l2_reuse=0.15,
        footprint_bytes=footprint_mib * 1024 * 1024,
        coalescing_efficiency=coalescing,
        memory_parallelism=8.0,
    )
    return _build(
        program, name, ch, global_size, workgroup_size, 28, 24, 0, suite
    )


def balanced_kernel(
    program: str,
    name: str = "main",
    suite: str = "",
    valu_ops: float = 600.0,
    load_bytes: float = 40.0,
    store_bytes: float = 8.0,
    global_size: int = DEFAULT_GLOBAL * 2,
    workgroup_size: int = DEFAULT_WG,
    **overrides,
) -> Kernel:
    """Kernel near the machine balance point: both knobs matter."""
    ch = _merged(
        overrides,
        valu_ops_per_item=valu_ops,
        global_load_bytes_per_item=load_bytes,
        global_store_bytes_per_item=store_bytes,
        salu_ops_per_item=valu_ops * 0.05,
        l1_reuse=0.35,
        l2_reuse=0.3,
        footprint_bytes=128 * 1024 * 1024,
        coalescing_efficiency=0.85,
        memory_parallelism=6.0,
    )
    return _build(
        program, name, ch, global_size, workgroup_size, 36, 32, 0, suite
    )


def cache_resident_kernel(
    program: str,
    name: str = "main",
    suite: str = "",
    valu_ops: float = 150.0,
    load_bytes: float = 48.0,
    footprint_kib: float = 640.0,
    global_size: int = DEFAULT_GLOBAL,
    workgroup_size: int = DEFAULT_WG,
    **overrides,
) -> Kernel:
    """Small-footprint kernel served from the L2 (lookup tables, small
    matrices): scales with engine clock, indifferent to memory clock."""
    ch = _merged(
        overrides,
        valu_ops_per_item=valu_ops,
        global_load_bytes_per_item=load_bytes,
        global_store_bytes_per_item=4.0,
        l1_reuse=0.4,
        l2_reuse=0.95,
        footprint_bytes=footprint_kib * 1024,
        shared_footprint=1.0,
        coalescing_efficiency=0.8,
        memory_parallelism=6.0,
    )
    return _build(
        program, name, ch, global_size, workgroup_size, 32, 24, 0, suite
    )


def latency_kernel(
    program: str,
    name: str = "main",
    suite: str = "",
    valu_ops: float = 60.0,
    load_bytes: float = 48.0,
    dependent_fraction: float = 0.85,
    vgprs: int = 128,
    global_size: int = DEFAULT_GLOBAL // 4,
    workgroup_size: int = DEFAULT_WG,
    **overrides,
) -> Kernel:
    """Pointer-chasing kernel (graph/tree walks): exposed-latency bound,
    plateauing as both clocks rise (the fixed DRAM latency remains)."""
    ch = _merged(
        overrides,
        valu_ops_per_item=valu_ops,
        global_load_bytes_per_item=load_bytes,
        global_store_bytes_per_item=4.0,
        l1_reuse=0.05,
        l2_reuse=0.2,
        footprint_bytes=512 * 1024 * 1024,
        coalescing_efficiency=0.25,
        simd_efficiency=0.7,
        memory_parallelism=1.5,
        dependent_access_fraction=dependent_fraction,
    )
    return _build(
        program, name, ch, global_size, workgroup_size, vgprs, 40, 0, suite
    )


def limited_parallelism_kernel(
    program: str,
    name: str = "main",
    suite: str = "",
    num_workgroups: int = 8,
    workgroup_size: int = DEFAULT_WG,
    valu_ops: float = 900.0,
    load_bytes: float = 24.0,
    **overrides,
) -> Kernel:
    """Launch too small to fill the device: flat past a few CUs.

    This is the mechanism behind the paper's benchmark-suite critique —
    inputs sized for older, smaller GPUs leave modern devices idle.
    """
    ch = _merged(
        overrides,
        valu_ops_per_item=valu_ops,
        global_load_bytes_per_item=load_bytes,
        global_store_bytes_per_item=8.0,
        l1_reuse=0.3,
        l2_reuse=0.5,
        footprint_bytes=8 * 1024 * 1024,
        coalescing_efficiency=0.8,
        memory_parallelism=4.0,
    )
    return _build(
        program,
        name,
        ch,
        num_workgroups * workgroup_size,
        workgroup_size,
        40,
        32,
        0,
        suite,
    )


def thrashing_kernel(
    program: str,
    name: str = "main",
    suite: str = "",
    valu_ops: float = 90.0,
    load_bytes: float = 48.0,
    footprint_mib: float = 24.0,
    l2_reuse: float = 0.9,
    row_sensitivity: float = 0.8,
    global_size: int = DEFAULT_GLOBAL,
    workgroup_size: int = DEFAULT_WG,
    **overrides,
) -> Kernel:
    """Cache-fitting reuse per workgroup that collapses as concurrent
    private footprints overflow the shared L2: the inverse-CU class."""
    ch = _merged(
        overrides,
        valu_ops_per_item=valu_ops,
        global_load_bytes_per_item=load_bytes,
        global_store_bytes_per_item=8.0,
        l1_reuse=0.1,
        l2_reuse=l2_reuse,
        footprint_bytes=footprint_mib * 1024 * 1024,
        shared_footprint=0.0,
        coalescing_efficiency=0.6,
        row_locality_sensitivity=row_sensitivity,
        memory_parallelism=6.0,
    )
    return _build(
        program, name, ch, global_size, workgroup_size, 36, 32, 0, suite
    )


def atomic_kernel(
    program: str,
    name: str = "main",
    suite: str = "",
    valu_ops: float = 120.0,
    load_bytes: float = 16.0,
    atomic_ops: float = 1.0,
    contention: float = 0.25,
    global_size: int = DEFAULT_GLOBAL,
    workgroup_size: int = DEFAULT_WG,
    **overrides,
) -> Kernel:
    """Reduction/histogram-style kernel with contended global atomics."""
    ch = _merged(
        overrides,
        valu_ops_per_item=valu_ops,
        global_load_bytes_per_item=load_bytes,
        global_store_bytes_per_item=4.0,
        l1_reuse=0.2,
        l2_reuse=0.4,
        footprint_bytes=64 * 1024 * 1024,
        coalescing_efficiency=0.75,
        memory_parallelism=4.0,
        atomic_ops_per_item=atomic_ops,
        atomic_contention=contention,
    )
    return _build(
        program, name, ch, global_size, workgroup_size, 32, 28, 0, suite
    )


def divergent_kernel(
    program: str,
    name: str = "main",
    suite: str = "",
    valu_ops: float = 1400.0,
    load_bytes: float = 20.0,
    simd_efficiency: float = 0.35,
    global_size: int = DEFAULT_GLOBAL,
    workgroup_size: int = DEFAULT_WG,
    **overrides,
) -> Kernel:
    """Branch-divergent compute kernel (ray tracing, irregular physics):
    compute-shaped scaling at a fraction of peak lane utilisation."""
    return compute_kernel(
        program,
        name,
        suite=suite,
        valu_ops=valu_ops,
        load_bytes=load_bytes,
        simd_efficiency=simd_efficiency,
        global_size=global_size,
        workgroup_size=workgroup_size,
        **overrides,
    )


def lds_kernel(
    program: str,
    name: str = "main",
    suite: str = "",
    valu_ops: float = 300.0,
    lds_bytes: float = 96.0,
    load_bytes: float = 12.0,
    lds_per_workgroup: int = 16384,
    barriers: float = 8.0,
    global_size: int = DEFAULT_GLOBAL,
    workgroup_size: int = DEFAULT_WG,
    **overrides,
) -> Kernel:
    """Tiled stencil/matmul kernel: LDS-heavy with barriers; LDS sits in
    the engine clock domain so scaling follows CUs x engine clock."""
    ch = _merged(
        overrides,
        valu_ops_per_item=valu_ops,
        global_load_bytes_per_item=load_bytes,
        global_store_bytes_per_item=4.0,
        lds_bytes_per_item=lds_bytes,
        l1_reuse=0.5,
        l2_reuse=0.6,
        footprint_bytes=32 * 1024 * 1024,
        coalescing_efficiency=0.9,
        memory_parallelism=6.0,
        barriers_per_workgroup=barriers,
    )
    return _build(
        program,
        name,
        ch,
        global_size,
        workgroup_size,
        48,
        32,
        lds_per_workgroup,
        suite,
    )


def tiny_kernel(
    program: str,
    name: str = "main",
    suite: str = "",
    valu_ops: float = 200.0,
    load_bytes: float = 16.0,
    num_workgroups: int = 64,
    workgroup_size: int = 64,
    launch_overhead_us: float = 12.0,
    **overrides,
) -> Kernel:
    """Microsecond-scale kernel dominated by launch overhead: nearly
    flat on every axis (another face of the plateau class)."""
    ch = _merged(
        overrides,
        valu_ops_per_item=valu_ops,
        global_load_bytes_per_item=load_bytes,
        global_store_bytes_per_item=4.0,
        l1_reuse=0.3,
        l2_reuse=0.6,
        footprint_bytes=1024 * 1024,
        coalescing_efficiency=0.8,
        memory_parallelism=4.0,
        launch_overhead_us=launch_overhead_us,
    )
    return _build(
        program,
        name,
        ch,
        num_workgroups * workgroup_size,
        workgroup_size,
        24,
        24,
        0,
        suite,
    )


ARCHETYPE_BUILDERS = {
    "compute": compute_kernel,
    "streaming": streaming_kernel,
    "balanced": balanced_kernel,
    "cache_resident": cache_resident_kernel,
    "latency": latency_kernel,
    "limited_parallelism": limited_parallelism_kernel,
    "thrashing": thrashing_kernel,
    "atomic": atomic_kernel,
    "divergent": divergent_kernel,
    "lds": lds_kernel,
    "tiny": tiny_kernel,
}


def build_archetype(kind: str, program: str, **kwargs) -> Kernel:
    """Build an archetype kernel by *kind* name.

    Raises ``KeyError`` listing valid kinds when *kind* is unknown.
    """
    if kind not in ARCHETYPE_BUILDERS:
        raise KeyError(
            f"unknown archetype {kind!r}; valid: {sorted(ARCHETYPE_BUILDERS)}"
        )
    return ARCHETYPE_BUILDERS[kind](program, **kwargs)
