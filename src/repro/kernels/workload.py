"""Program-level workload modelling.

The study's unit of analysis is the kernel, but users run *programs* —
sequences of kernel invocations with very different weights (an
iterative solver may launch its inner kernel 10,000 times and its setup
kernel once). :class:`ProgramProfile` composes per-kernel scaling into
program-level scaling, which is where the benchmark-suite critique
bites hardest: one serial-ish kernel on the critical path caps the
whole program (Amdahl on heterogeneous launches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Sequence, Tuple

from repro.errors import WorkloadError
from repro.kernels.kernel import Kernel

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids the
    # kernels <-> gpu import cycle (gpu imports kernel definitions).
    from repro.gpu.config import HardwareConfig
    from repro.gpu.simulator import GpuSimulator


@dataclass(frozen=True)
class KernelInvocation:
    """One kernel and how often the program launches it."""

    kernel: Kernel
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise WorkloadError(
                f"invocation count must be >= 1, got {self.count}"
            )


@dataclass(frozen=True)
class ProgramProfile:
    """A program as a weighted bag of kernel invocations."""

    name: str
    invocations: Tuple[KernelInvocation, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("program profile needs a name")
        if not self.invocations:
            raise WorkloadError(
                f"program {self.name!r} has no invocations"
            )

    @classmethod
    def from_counts(
        cls, name: str, counts: Sequence[Tuple[Kernel, int]]
    ) -> "ProgramProfile":
        """Build from (kernel, invocation count) pairs."""
        return cls(
            name=name,
            invocations=tuple(
                KernelInvocation(kernel=k, count=n) for k, n in counts
            ),
        )

    def total_time_s(
        self, config: "HardwareConfig", simulator: "GpuSimulator" = None
    ) -> float:
        """End-to-end GPU time of one program run at *config*."""
        simulator = simulator or _default_simulator()
        return sum(
            invocation.count
            * simulator.time_s(invocation.kernel, config)
            for invocation in self.invocations
        )

    def time_attribution(
        self, config: "HardwareConfig", simulator: "GpuSimulator" = None
    ) -> Dict[str, float]:
        """Fraction of program time spent in each kernel at *config*."""
        simulator = simulator or _default_simulator()
        times = {
            invocation.kernel.full_name: invocation.count
            * simulator.time_s(invocation.kernel, config)
            for invocation in self.invocations
        }
        total = sum(times.values())
        return {name: t / total for name, t in times.items()}

    def speedup(
        self,
        config: "HardwareConfig",
        base: "HardwareConfig",
        simulator: "GpuSimulator" = None,
    ) -> float:
        """Program-level speedup of *config* over *base*."""
        simulator = simulator or _default_simulator()
        return self.total_time_s(base, simulator) / self.total_time_s(
            config, simulator
        )

    def amdahl_cap(
        self,
        config: "HardwareConfig",
        base: "HardwareConfig",
        simulator: "GpuSimulator" = None,
    ) -> Tuple[str, float]:
        """The kernel that limits program scaling, and the program
        speedup if every *other* kernel became infinitely fast.

        The classic diagnosis: if the cap is close to the achieved
        speedup, optimising anything else is wasted effort.
        """
        simulator = simulator or _default_simulator()
        base_times = {
            invocation.kernel.full_name: invocation.count
            * simulator.time_s(invocation.kernel, base)
            for invocation in self.invocations
        }
        config_times = {
            invocation.kernel.full_name: invocation.count
            * simulator.time_s(invocation.kernel, config)
            for invocation in self.invocations
        }
        base_total = sum(base_times.values())
        limiter = max(config_times, key=config_times.__getitem__)
        cap = base_total / config_times[limiter]
        return limiter, cap


def _default_simulator():
    """Late import: the gpu package imports kernel definitions, so a
    module-level import here would create a cycle."""
    from repro.gpu.simulator import GpuSimulator

    return GpuSimulator()
