"""Workload representation: kernel characteristics, launch geometry,
and the scaling-behaviour archetype constructors."""

from repro.kernels.archetypes import (
    ARCHETYPE_BUILDERS,
    atomic_kernel,
    balanced_kernel,
    build_archetype,
    cache_resident_kernel,
    compute_kernel,
    divergent_kernel,
    latency_kernel,
    lds_kernel,
    limited_parallelism_kernel,
    streaming_kernel,
    thrashing_kernel,
    tiny_kernel,
)
from repro.kernels.characteristics import KernelCharacteristics
from repro.kernels.pack import KernelPack, pack_kernels
from repro.kernels.workload import KernelInvocation, ProgramProfile
from repro.kernels.kernel import (
    WAVEFRONT_SIZE,
    Kernel,
    LaunchGeometry,
    ResourceUsage,
)

__all__ = [
    "ARCHETYPE_BUILDERS",
    "Kernel",
    "KernelInvocation",
    "KernelCharacteristics",
    "KernelPack",
    "LaunchGeometry",
    "ProgramProfile",
    "ResourceUsage",
    "WAVEFRONT_SIZE",
    "atomic_kernel",
    "balanced_kernel",
    "build_archetype",
    "cache_resident_kernel",
    "compute_kernel",
    "divergent_kernel",
    "latency_kernel",
    "lds_kernel",
    "limited_parallelism_kernel",
    "pack_kernels",
    "streaming_kernel",
    "thrashing_kernel",
    "tiny_kernel",
]
