"""Per-kernel behavioural characteristics consumed by the GPU model.

The IISWC'15 study measured real OpenCL kernels; this reproduction
replaces the measurement oracle with a mechanistic performance model
(see DESIGN.md). :class:`KernelCharacteristics` is the vector of
workload properties that model needs: how much vector arithmetic the
kernel executes per work-item, how much data it moves and with what
locality, how much latent parallelism it exposes, and which
serialisation effects (atomics, barriers, dependent loads) it suffers.

The fields were chosen so that every scaling behaviour the paper's
abstract calls out has a mechanistic cause here:

* compute scaling           <- ``valu_ops_per_item`` dominating,
* bandwidth scaling         <- ``global_*_bytes_per_item`` with poor reuse,
* frequency+bandwidth
  plateaus                  <- ``dependent_access_fraction`` (exposed
                               fixed-time DRAM latency) and
                               ``launch_overhead_us``,
* CU-count plateaus         <- small grids (geometry, not here) and low
                               occupancy,
* performance LOSS with
  more CUs                  <- ``shared_footprint`` cache thrash,
  ``row_locality_sensitivity`` DRAM efficiency loss, and
  ``atomic_contention`` growth with concurrency.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import WorkloadError

#: Fields that must be finite and >= 0.
_NON_NEGATIVE_FIELDS = (
    "valu_ops_per_item",
    "salu_ops_per_item",
    "lds_bytes_per_item",
    "global_load_bytes_per_item",
    "global_store_bytes_per_item",
    "footprint_bytes",
    "atomic_ops_per_item",
    "barriers_per_workgroup",
    "launch_overhead_us",
)

#: Fields constrained to the closed interval [0, 1].
_UNIT_INTERVAL_FIELDS = (
    "l1_reuse",
    "l2_reuse",
    "coalescing_efficiency",
    "simd_efficiency",
    "dependent_access_fraction",
    "atomic_contention",
    "shared_footprint",
    "row_locality_sensitivity",
)


@dataclass(frozen=True)
class KernelCharacteristics:
    """Behavioural profile of one GPU kernel.

    All ``*_per_item`` quantities are averages over the kernel's
    work-items (threads); totals are obtained by multiplying with the
    launch geometry's global size.

    Parameters
    ----------
    valu_ops_per_item:
        Vector-ALU lane operations per work-item (FLOP-equivalent).
    salu_ops_per_item:
        Scalar-ALU operations per work-item (address math, control).
        These execute on the scalar pipe and rarely bottleneck, but
        contribute to the compute interval.
    lds_bytes_per_item:
        Local-data-share (shared-memory) traffic per work-item.
    global_load_bytes_per_item / global_store_bytes_per_item:
        Global-memory traffic issued by the work-item *before* caching.
    l1_reuse:
        Fraction of global traffic served by the per-CU L1 (temporal +
        intra-workgroup spatial reuse). ``0`` means every access leaves
        the CU.
    l2_reuse:
        Fraction of L1 misses that hit in the shared L2 *when the
        kernel's footprint fits*; the cache model degrades this with
        footprint pressure and CU contention.
    footprint_bytes:
        Total distinct bytes the kernel touches (working set). Drives
        the analytic L2 hit-rate model.
    shared_footprint:
        How much of the footprint is *shared across workgroups* (0 =
        perfectly partitioned, 1 = all workgroups walk the same data).
        Shared footprints thrash the L2 as concurrency grows — one of
        the paper's "non-obvious" inverse-CU mechanisms.
    coalescing_efficiency:
        Fraction of peak DRAM efficiency this kernel's access pattern
        achieves with a single active CU (1.0 = perfectly coalesced
        streaming, ~0.1 = random single-word gathers).
    row_locality_sensitivity:
        How strongly DRAM efficiency degrades as more CUs interleave
        their streams (0 = insensitive, 1 = maximal row-buffer
        thrashing). The second inverse-CU mechanism.
    simd_efficiency:
        Average fraction of the 64 SIMD lanes doing useful work
        (1 - branch-divergence waste).
    memory_parallelism:
        Outstanding memory requests a single wavefront sustains (MLP).
        With occupancy, determines how much DRAM latency is hidden.
    dependent_access_fraction:
        Fraction of global accesses on a serial dependence chain
        (pointer chasing). These expose full memory latency and create
        the frequency/bandwidth plateau the paper highlights.
    atomic_ops_per_item:
        Global atomic operations per work-item.
    atomic_contention:
        Probability that an atomic conflicts with another in flight
        (0 = disjoint addresses, 1 = single hot address).
    barriers_per_workgroup:
        ``barrier()`` count per workgroup execution.
    launch_overhead_us:
        Fixed host-side launch/driver overhead per kernel invocation in
        microseconds. Dominates tiny kernels and caps their scaling.
    """

    valu_ops_per_item: float
    global_load_bytes_per_item: float
    global_store_bytes_per_item: float = 0.0
    salu_ops_per_item: float = 0.0
    lds_bytes_per_item: float = 0.0
    l1_reuse: float = 0.0
    l2_reuse: float = 0.5
    footprint_bytes: float = 64 * 1024 * 1024
    shared_footprint: float = 0.0
    coalescing_efficiency: float = 0.85
    row_locality_sensitivity: float = 0.0
    simd_efficiency: float = 1.0
    memory_parallelism: float = 4.0
    dependent_access_fraction: float = 0.0
    atomic_ops_per_item: float = 0.0
    atomic_contention: float = 0.0
    barriers_per_workgroup: float = 0.0
    launch_overhead_us: float = 8.0

    def __post_init__(self) -> None:
        for field_name in _NON_NEGATIVE_FIELDS:
            value = getattr(self, field_name)
            if not _is_finite(value) or value < 0:
                raise WorkloadError(
                    f"{field_name} must be finite and >= 0, got {value!r}"
                )
        for field_name in _UNIT_INTERVAL_FIELDS:
            value = getattr(self, field_name)
            if not _is_finite(value) or not 0.0 <= value <= 1.0:
                raise WorkloadError(
                    f"{field_name} must lie in [0, 1], got {value!r}"
                )
        mlp = self.memory_parallelism
        if not _is_finite(mlp) or mlp < 1.0:
            raise WorkloadError(
                "memory_parallelism must be >= 1 (a wavefront always "
                f"has at least one request in flight), got {mlp!r}"
            )
        if self.simd_efficiency <= 0.0:
            raise WorkloadError(
                "simd_efficiency must be > 0: a kernel with no active lanes "
                "performs no work"
            )

    @property
    def global_bytes_per_item(self) -> float:
        """Total global traffic (loads + stores) per work-item."""
        return (
            self.global_load_bytes_per_item
            + self.global_store_bytes_per_item
        )

    @property
    def arithmetic_intensity(self) -> float:
        """VALU operations per byte of global traffic (roofline x-axis).

        Kernels that touch no global memory get ``inf``; they can only
        be compute- or latency-bound.
        """
        total_bytes = self.global_bytes_per_item
        if total_bytes == 0.0:
            return float("inf")
        return self.valu_ops_per_item / total_bytes

    def replace(self, **changes: float) -> "KernelCharacteristics":
        """Return a copy with ``changes`` applied (validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """Serialise to a plain dict (JSON-compatible)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "KernelCharacteristics":
        """Reconstruct from :meth:`to_dict` output, ignoring unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


def _is_finite(value: float) -> bool:
    """True when *value* is a real, finite number."""
    try:
        return value == value and abs(value) != float("inf")
    except TypeError:
        return False
