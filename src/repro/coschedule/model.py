"""Concurrent-kernel co-scheduling model.

The taxonomy characterizes kernels in isolation, but co-resident
kernels contend for exactly the shared resources its scaling classes
are defined by: DRAM bandwidth, the row-buffer locality of the memory
controller, and L2 capacity. This module evaluates a *pair* of
co-resident kernels at a configuration by spatially partitioning the
CUs and iterating the shared-resource contention to a fixed point:

* **CU partition.** Each kernel dispatches onto its CU allotment
  (:func:`partition_cus`), so per-CU intervals see a smaller machine
  while the clock knobs stay shared.
* **Row-locality under combined pressure.** DRAM bandwidth efficiency
  (:meth:`~repro.gpu.memory.MemoryModel.bandwidth_efficiency`) is
  evaluated at the *combined* active-CU count — the controller
  interleaves both kernels' streams, so each pays the other's
  row-locality damage.
* **L2 capacity split by footprint.** The shared L2 divides in
  proportion to the kernels' concurrent footprints
  (:meth:`~repro.gpu.caches.CacheModel.concurrent_footprint_bytes`);
  each kernel's hit rate is re-derived against its capacity share, so
  a cache-hungry partner inflates the other kernel's DRAM traffic.
* **Bandwidth fair-share fixed point.** Each kernel is entitled to
  half the achieved DRAM bandwidth, and reclaims whatever fraction of
  the partner's entitlement the partner does not use:
  ``share_a = 0.5 + max(0, 0.5 - u_b)`` where ``u_b`` is the
  partner's utilisation of the full pipe (``dram_bytes_b /
  (achieved_bw * time_b)``). Utilisation depends on time and time on
  the share, so the model iterates the loop a fixed
  :data:`FIXED_POINT_ITERATIONS` times and finishes with one
  consistent evaluation at the final shares. The reclaim form is
  work-conserving and *stable*: shares live in [0.5, 1], so a
  saturating partner degrades a kernel's bandwidth by at most 2x
  (plus the shared row-locality damage) — proportional-to-achieved-
  demand sharing, by contrast, has only the all-or-nothing fixed
  points and starves whichever kernel has the lower achieved
  efficiency.

Per-kernel interval arithmetic deliberately mirrors
:mod:`repro.gpu.interval_model` operation by operation (association
order and guards included); a kernel paired with an idle partner
(``kernel_b=None``) takes the whole machine, keeps the full L2 and a
demand share of exactly 1.0, and therefore reproduces its
single-kernel surface bit for bit. The batch path
(:meth:`CoScheduleModel.pair_surface`) vectorizes the same arithmetic
over the ``(n_cu, n_eng, n_mem)`` lattice the way
:mod:`repro.gpu.interval_batch` does, and is pinned bit-exact against
the per-point loop (:meth:`CoScheduleModel.pair_surface_scalar`).

On top of the times, the model prices the pair: activity factors sum
both kernels' busy intervals over the pair makespan, board power comes
from :class:`~repro.power.model.PowerModel`, and the standard
multiprogramming metrics fall out — STP (system throughput, the sum of
reciprocal slowdowns) and ANTT (average normalised turnaround time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.caches import CacheModel
from repro.gpu.config import HardwareConfig, Microarchitecture
from repro.gpu.dispatch import plan_dispatch
from repro.gpu.interval_model import (
    ATOMIC_CONCURRENCY_SLOPE,
    ATOMIC_SERIAL_CYCLES,
    BARRIER_CYCLES,
    FULL_ISSUE_WAVES,
    NON_OVERLAP_FRACTION,
    REQUEST_BYTES,
)
from repro.gpu.memory import MAX_QUEUE_STRETCH, MemoryModel
from repro.gpu.occupancy import compute_occupancy
from repro.kernels.kernel import Kernel
from repro.power.model import DEFAULT_POWER_MODEL, PowerModel
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace
from repro.units import ns_to_seconds, us_to_seconds

#: Contention fixed-point iterations. Fixed (never adaptive): the batch
#: and scalar paths must execute the identical operation sequence to
#: stay bit-exact, and the fair-share reclaim contraction sits within
#: ~1e-6 of its limit by 64 rounds on every catalog pair (the damped
#: share alternation contracts at roughly 0.75 per round).
FIXED_POINT_ITERATIONS = 64

#: Default CU split: half the device each (rounded, both sides >= 1).
DEFAULT_CU_SHARE = 0.5


def partition_cus(
    cu_count: int, share: float = DEFAULT_CU_SHARE
) -> Tuple[int, int]:
    """Split *cu_count* CUs between kernel A and kernel B.

    Kernel A receives ``round(cu_count * share)`` CUs clamped so both
    sides keep at least one CU; co-residency therefore needs at least
    two CUs.
    """
    if cu_count < 2:
        raise ConfigurationError(
            f"co-scheduling needs cu_count >= 2, got {cu_count}"
        )
    cu_a = min(max(1, int(cu_count * share + 0.5)), cu_count - 1)
    return cu_a, cu_count - cu_a


@dataclass(frozen=True)
class KernelShare:
    """One kernel's contended outcome at a configuration."""

    kernel_name: str
    cu_allotment: int
    active_cus: int
    time_s: float
    solo_time_s: float
    dram_demand_share: float
    global_size: int

    @property
    def slowdown(self) -> float:
        """Contended time over solo time (>= 1 in practice)."""
        return self.time_s / self.solo_time_s

    @property
    def items_per_second(self) -> float:
        """Contended throughput in work-items per second."""
        return self.global_size / self.time_s


@dataclass(frozen=True)
class CoScheduleResult:
    """Pair outcome at one configuration."""

    config: HardwareConfig
    a: KernelShare
    b: Optional[KernelShare]
    makespan_s: float
    power_w: float
    energy_j: float
    compute_activity: float
    memory_activity: float

    @property
    def stp(self) -> float:
        """System throughput: sum of reciprocal slowdowns (max 2.0)."""
        if self.b is None:
            return 1.0 / self.a.slowdown
        return 1.0 / self.a.slowdown + 1.0 / self.b.slowdown

    @property
    def antt(self) -> float:
        """Average normalised turnaround time: mean slowdown (>= 1)."""
        if self.b is None:
            return self.a.slowdown
        return (self.a.slowdown + self.b.slowdown) / 2.0


@dataclass(frozen=True)
class PairSurface:
    """Pair outcomes over a whole configuration grid.

    Arrays have ``space.shape``; ``cu_a``/``cu_b`` are the per-CU-axis
    partition (``(n_cu,)``). For an idle partner every ``*_b`` field is
    ``None`` and the surface equals the single-kernel surface.
    """

    kernel_a: str
    kernel_b: Optional[str]
    space: ConfigurationSpace
    cu_a: np.ndarray
    cu_b: Optional[np.ndarray]
    time_a: np.ndarray
    time_b: Optional[np.ndarray]
    solo_time_a: np.ndarray
    solo_time_b: Optional[np.ndarray]
    demand_share_a: np.ndarray
    demand_share_b: Optional[np.ndarray]
    makespan_s: np.ndarray
    power_w: np.ndarray
    energy_j: np.ndarray
    global_size_a: int
    global_size_b: Optional[int]

    @property
    def slowdown_a(self) -> np.ndarray:
        """Kernel A's slowdown surface."""
        return self.time_a / self.solo_time_a

    @property
    def slowdown_b(self) -> Optional[np.ndarray]:
        """Kernel B's slowdown surface (None for an idle partner)."""
        if self.time_b is None:
            return None
        return self.time_b / self.solo_time_b

    @property
    def stp(self) -> np.ndarray:
        """System-throughput surface."""
        if self.time_b is None:
            return 1.0 / self.slowdown_a
        return 1.0 / self.slowdown_a + 1.0 / self.slowdown_b

    @property
    def antt(self) -> np.ndarray:
        """Fairness (mean-slowdown) surface."""
        if self.time_b is None:
            return self.slowdown_a
        return (self.slowdown_a + self.slowdown_b) / 2.0

    @property
    def perf_a(self) -> np.ndarray:
        """Kernel A's *composed* throughput surface (items/s)."""
        return self.global_size_a / self.time_a

    @property
    def perf_b(self) -> Optional[np.ndarray]:
        """Kernel B's composed throughput surface (items/s)."""
        if self.time_b is None:
            return None
        return self.global_size_b / self.time_b


@dataclass
class _Side:
    """Hoisted per-kernel state: kernel-level scalars plus per-CU-axis
    lists (one entry per CU setting), shared by the scalar and batch
    paths so both consume the identical Python floats."""

    kernel: Kernel
    waves_per_cu: int
    workgroups_per_cu: int
    l1_hit: float
    alloc: List[int] = field(default_factory=list)
    active: List[int] = field(default_factory=list)
    quantisation: List[float] = field(default_factory=list)
    resident_total: List[int] = field(default_factory=list)
    efficiency: List[float] = field(default_factory=list)
    dram_fraction: List[float] = field(default_factory=list)


class CoScheduleModel:
    """Pair-contention timing/power model over one microarchitecture.

    *share* sets the CU partition (kernel A's fraction); *iterations*
    the contention fixed-point round count (fixed, see
    :data:`FIXED_POINT_ITERATIONS`).
    """

    def __init__(
        self,
        power_model: Optional[PowerModel] = None,
        share: float = DEFAULT_CU_SHARE,
        iterations: int = FIXED_POINT_ITERATIONS,
    ):
        if not 0.0 < share < 1.0:
            raise ConfigurationError(
                f"share must lie in (0, 1), got {share}"
            )
        if iterations < 1:
            raise ConfigurationError(
                f"iterations must be >= 1, got {iterations}"
            )
        self._power = power_model or DEFAULT_POWER_MODEL
        self._share = share
        self._iterations = iterations
        self._cache_models: Dict[Microarchitecture, CacheModel] = {}
        self._memory_models: Dict[Microarchitecture, MemoryModel] = {}

    @property
    def power_model(self) -> PowerModel:
        """The board-power model pair energy is priced with."""
        return self._power

    @property
    def share(self) -> float:
        """Kernel A's CU-partition fraction."""
        return self._share

    # ------------------------------------------------------------------
    # Point path (the reference oracle)
    # ------------------------------------------------------------------

    def evaluate(
        self,
        kernel_a: Kernel,
        kernel_b: Optional[Kernel],
        config: HardwareConfig,
    ) -> CoScheduleResult:
        """Contended outcome of the pair at one configuration.

        ``kernel_b=None`` models an idle partner: kernel A keeps the
        whole device and the result reproduces its solo execution.
        """
        uarch = config.uarch
        cu_counts = (config.cu_count,)
        engine_hz = config.engine_mhz * 1e6
        memory_hz = config.memory_mhz * 1e6

        side_a, side_b = self._hoist(kernel_a, kernel_b, cu_counts, uarch)
        solo_a, _ = self._hoist(kernel_a, None, cu_counts, uarch)
        solo_time_a = self._point_terms(
            solo_a, 0, config.cu_count, engine_hz, memory_hz, uarch, 1.0
        )[0]

        if side_b is None:
            time_a, busy_a, dram_s_a, _ = self._point_terms(
                side_a, 0, config.cu_count, engine_hz, memory_hz, uarch,
                1.0,
            )
            share_a = 1.0
            time_b = busy_b = dram_s_b = 0.0
            share_b = solo_time_b = None
        else:
            solo_b, _ = self._hoist(kernel_b, None, cu_counts, uarch)
            solo_time_b = self._point_terms(
                solo_b, 0, config.cu_count, engine_hz, memory_hz, uarch,
                1.0,
            )[0]
            share_a = 1.0
            share_b = 1.0
            for _ in range(self._iterations):
                time_a, _, dram_s_a, _ = self._point_terms(
                    side_a, 0, config.cu_count, engine_hz, memory_hz,
                    uarch, share_a,
                )
                time_b, _, dram_s_b, _ = self._point_terms(
                    side_b, 0, config.cu_count, engine_hz, memory_hz,
                    uarch, share_b,
                )
                util_a = share_a * dram_s_a / time_a
                util_b = share_b * dram_s_b / time_b
                share_a = 0.5 + max(0.0, 0.5 - util_b)
                share_b = 0.5 + max(0.0, 0.5 - util_a)
            time_a, busy_a, dram_s_a, _ = self._point_terms(
                side_a, 0, config.cu_count, engine_hz, memory_hz, uarch,
                share_a,
            )
            time_b, busy_b, dram_s_b, _ = self._point_terms(
                side_b, 0, config.cu_count, engine_hz, memory_hz, uarch,
                share_b,
            )

        makespan = max(time_a, time_b)
        compute_activity = min(1.0, (busy_a + busy_b) / makespan)
        memory_activity = min(1.0, (dram_s_a + dram_s_b) / makespan)
        power_w = self._power.board_power_w(
            config, compute_activity, memory_activity
        )
        energy_j = makespan * power_w

        a = KernelShare(
            kernel_name=kernel_a.full_name,
            cu_allotment=side_a.alloc[0],
            active_cus=side_a.active[0],
            time_s=time_a,
            solo_time_s=solo_time_a,
            dram_demand_share=share_a,
            global_size=kernel_a.geometry.global_size,
        )
        b = None
        if side_b is not None:
            b = KernelShare(
                kernel_name=kernel_b.full_name,
                cu_allotment=side_b.alloc[0],
                active_cus=side_b.active[0],
                time_s=time_b,
                solo_time_s=solo_time_b,
                dram_demand_share=share_b,
                global_size=kernel_b.geometry.global_size,
            )
        return CoScheduleResult(
            config=config,
            a=a,
            b=b,
            makespan_s=makespan,
            power_w=power_w,
            energy_j=energy_j,
            compute_activity=compute_activity,
            memory_activity=memory_activity,
        )

    def pair_surface_scalar(
        self,
        kernel_a: Kernel,
        kernel_b: Optional[Kernel],
        space: ConfigurationSpace = PAPER_SPACE,
    ) -> PairSurface:
        """The pair surface via the per-point loop (reference oracle)."""
        n_cu, n_eng, n_mem = space.shape
        shape = space.shape
        time_a = np.empty(shape)
        solo_a = np.empty(shape)
        share_a = np.empty(shape)
        makespan = np.empty(shape)
        power_w = np.empty(shape)
        energy_j = np.empty(shape)
        paired = kernel_b is not None
        time_b = np.empty(shape) if paired else None
        solo_b = np.empty(shape) if paired else None
        share_b = np.empty(shape) if paired else None
        cu_a = np.empty(n_cu, dtype=np.int64)
        cu_b = np.empty(n_cu, dtype=np.int64) if paired else None
        for c in range(n_cu):
            for e in range(n_eng):
                for m in range(n_mem):
                    result = self.evaluate(
                        kernel_a, kernel_b, space.config(c, e, m)
                    )
                    time_a[c, e, m] = result.a.time_s
                    solo_a[c, e, m] = result.a.solo_time_s
                    share_a[c, e, m] = result.a.dram_demand_share
                    makespan[c, e, m] = result.makespan_s
                    power_w[c, e, m] = result.power_w
                    energy_j[c, e, m] = result.energy_j
                    cu_a[c] = result.a.cu_allotment
                    if paired:
                        time_b[c, e, m] = result.b.time_s
                        solo_b[c, e, m] = result.b.solo_time_s
                        share_b[c, e, m] = result.b.dram_demand_share
                        cu_b[c] = result.b.cu_allotment
        return PairSurface(
            kernel_a=kernel_a.full_name,
            kernel_b=kernel_b.full_name if paired else None,
            space=space,
            cu_a=cu_a,
            cu_b=cu_b,
            time_a=time_a,
            time_b=time_b,
            solo_time_a=solo_a,
            solo_time_b=solo_b,
            demand_share_a=share_a,
            demand_share_b=share_b,
            makespan_s=makespan,
            power_w=power_w,
            energy_j=energy_j,
            global_size_a=kernel_a.geometry.global_size,
            global_size_b=(
                kernel_b.geometry.global_size if paired else None
            ),
        )

    # ------------------------------------------------------------------
    # Batch path (vectorized over the lattice)
    # ------------------------------------------------------------------

    def pair_surface(
        self,
        kernel_a: Kernel,
        kernel_b: Optional[Kernel],
        space: ConfigurationSpace = PAPER_SPACE,
    ) -> PairSurface:
        """The pair surface over all of *space* as one broadcast.

        Mirrors :meth:`evaluate` operation by operation — the CU-axis
        state is hoisted through the identical scalar helpers and the
        clock-axis arithmetic repeats the scalar expressions with NumPy
        broadcasting — so every element is bit-identical to
        :meth:`pair_surface_scalar`.
        """
        uarch = space.uarch
        n_cu, n_eng, n_mem = space.shape
        shape = space.shape
        engine_hz = np.asarray(space.engine_mhz, dtype=np.float64) * 1e6
        engine_hz = engine_hz.reshape(1, n_eng, 1)
        memory_hz = np.asarray(space.memory_mhz, dtype=np.float64) * 1e6
        memory_hz = memory_hz.reshape(1, 1, n_mem)
        cu_full = np.asarray(
            space.cu_counts, dtype=np.int64
        ).reshape(n_cu, 1, 1)

        side_a, side_b = self._hoist(
            kernel_a, kernel_b, space.cu_counts, uarch
        )
        solo_side_a, _ = self._hoist(
            kernel_a, None, space.cu_counts, uarch
        )
        solo_a = self._grid_terms(
            solo_side_a, cu_full, engine_hz, memory_hz, uarch, 1.0
        )[0]
        solo_a = _full(solo_a, shape)

        if side_b is None:
            time_a, busy_a, dram_s_a, _ = self._grid_terms(
                side_a, cu_full, engine_hz, memory_hz, uarch, 1.0
            )
            share_a = np.ones(shape)
            time_b = busy_b = dram_s_b = 0.0
            share_b = solo_b = None
        else:
            solo_side_b, _ = self._hoist(
                kernel_b, None, space.cu_counts, uarch
            )
            solo_b = self._grid_terms(
                solo_side_b, cu_full, engine_hz, memory_hz, uarch, 1.0
            )[0]
            solo_b = _full(solo_b, shape)
            share_a = 1.0
            share_b = 1.0
            for _ in range(self._iterations):
                time_a, _, dram_s_a, _ = self._grid_terms(
                    side_a, cu_full, engine_hz, memory_hz, uarch, share_a
                )
                time_b, _, dram_s_b, _ = self._grid_terms(
                    side_b, cu_full, engine_hz, memory_hz, uarch, share_b
                )
                util_a = share_a * dram_s_a / time_a
                util_b = share_b * dram_s_b / time_b
                share_a = 0.5 + np.maximum(0.0, 0.5 - util_b)
                share_b = 0.5 + np.maximum(0.0, 0.5 - util_a)
            time_a, busy_a, dram_s_a, _ = self._grid_terms(
                side_a, cu_full, engine_hz, memory_hz, uarch, share_a
            )
            time_b, busy_b, dram_s_b, _ = self._grid_terms(
                side_b, cu_full, engine_hz, memory_hz, uarch, share_b
            )
            share_a = _full(share_a, shape)
            share_b = _full(share_b, shape)
            time_b = _full(time_b, shape)

        time_a = _full(time_a, shape)
        makespan = np.maximum(time_a, time_b)
        compute_activity = np.minimum(
            1.0, (busy_a + busy_b) / makespan
        )
        memory_activity = np.minimum(
            1.0, (dram_s_a + dram_s_b) / makespan
        )
        power_w = self._power.board_power_surface(
            space,
            _full(compute_activity, shape),
            _full(memory_activity, shape),
        )
        energy_j = makespan * power_w

        return PairSurface(
            kernel_a=kernel_a.full_name,
            kernel_b=(
                kernel_b.full_name if side_b is not None else None
            ),
            space=space,
            cu_a=np.asarray(side_a.alloc, dtype=np.int64),
            cu_b=(
                np.asarray(side_b.alloc, dtype=np.int64)
                if side_b is not None
                else None
            ),
            time_a=time_a,
            time_b=_full(time_b, shape) if side_b is not None else None,
            solo_time_a=solo_a,
            solo_time_b=solo_b,
            demand_share_a=_full(share_a, shape),
            demand_share_b=(
                share_b if side_b is not None else None
            ),
            makespan_s=_full(makespan, shape),
            power_w=power_w,
            energy_j=_full(energy_j, shape),
            global_size_a=kernel_a.geometry.global_size,
            global_size_b=(
                kernel_b.geometry.global_size
                if side_b is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Hoisted state
    # ------------------------------------------------------------------

    def _cache_model(self, uarch: Microarchitecture) -> CacheModel:
        if uarch not in self._cache_models:
            self._cache_models[uarch] = CacheModel(uarch)
        return self._cache_models[uarch]

    def _memory_model(self, uarch: Microarchitecture) -> MemoryModel:
        # bandwidth_efficiency reads no clock/CU field, so a placeholder
        # config serves every configuration on this uarch (the same
        # trick the batch interval engine uses).
        if uarch not in self._memory_models:
            self._memory_models[uarch] = MemoryModel(
                HardwareConfig(
                    cu_count=1,
                    engine_mhz=1.0,
                    memory_mhz=1.0,
                    uarch=uarch,
                )
            )
        return self._memory_models[uarch]

    def _hoist(
        self,
        kernel_a: Kernel,
        kernel_b: Optional[Kernel],
        cu_counts: Sequence[int],
        uarch: Microarchitecture,
    ) -> Tuple[_Side, Optional[_Side]]:
        """Per-CU-axis static state for both kernels.

        Everything here is computed with the scalar models (dispatch,
        footprints, the libm power law of the bandwidth efficiency), so
        the scalar and batch paths consume identical Python floats.
        """
        cache_model = self._cache_model(uarch)
        memory_model = self._memory_model(uarch)
        side_a = self._kernel_side(kernel_a, uarch)
        side_b = (
            self._kernel_side(kernel_b, uarch)
            if kernel_b is not None
            else None
        )
        l2_total = uarch.l2_bytes_total
        for cu in cu_counts:
            if side_b is None:
                allocs = (int(cu),)
                sides = (side_a,)
            else:
                cu_a, cu_b = partition_cus(int(cu), self._share)
                allocs = (cu_a, cu_b)
                sides = (side_a, side_b)
            plans = [
                plan_dispatch(
                    side.kernel.geometry,
                    compute_occupancy(
                        side.kernel.geometry,
                        side.kernel.resources,
                        uarch,
                    ),
                    alloc,
                )
                for side, alloc in zip(sides, allocs)
            ]
            combined_active = 0
            for plan in plans:
                combined_active += plan.active_cus
            footprints = [
                cache_model.concurrent_footprint_bytes(
                    side.kernel, plan.active_cus, side.workgroups_per_cu
                )
                for side, plan in zip(sides, plans)
            ]
            footprint_sum = 0.0
            for footprint in footprints:
                footprint_sum += footprint
            for side, alloc, plan, footprint in zip(
                sides, allocs, plans, footprints
            ):
                ch = side.kernel.characteristics
                if side_b is None or footprint_sum <= 0.0:
                    weight = 1.0
                else:
                    weight = footprint / footprint_sum
                if footprint <= 0.0:
                    l2_hit = ch.l2_reuse
                else:
                    residency = min(
                        1.0, (l2_total * weight) / footprint
                    )
                    l2_hit = ch.l2_reuse * residency
                side.alloc.append(alloc)
                side.active.append(plan.active_cus)
                side.quantisation.append(plan.quantisation_factor)
                side.resident_total.append(
                    plan.resident_workgroups_total
                )
                side.efficiency.append(
                    memory_model.bandwidth_efficiency(
                        ch.coalescing_efficiency,
                        ch.row_locality_sensitivity,
                        combined_active,
                    )
                )
                side.dram_fraction.append(
                    (1.0 - side.l1_hit) * (1.0 - l2_hit)
                )
        return side_a, side_b

    @staticmethod
    def _kernel_side(kernel: Kernel, uarch: Microarchitecture) -> _Side:
        occupancy = compute_occupancy(
            kernel.geometry, kernel.resources, uarch
        )
        return _Side(
            kernel=kernel,
            waves_per_cu=occupancy.waves_per_cu,
            workgroups_per_cu=occupancy.workgroups_per_cu,
            l1_hit=kernel.characteristics.l1_reuse,
        )

    # ------------------------------------------------------------------
    # Interval terms (scalar and vectorized twins — keep in lockstep)
    # ------------------------------------------------------------------

    def _point_terms(
        self,
        side: _Side,
        cu_index: int,
        cu_count_full: int,
        engine_hz: float,
        memory_hz: float,
        uarch: Microarchitecture,
        share: float,
    ) -> Tuple[float, float, float, float]:
        """One kernel's contended time at one configuration.

        Returns ``(time_s, compute_busy_s, dram_s, dram_bytes)``.
        Mirrors ``IntervalModel.simulate`` exactly, with two contended
        substitutions: the DRAM bandwidth available to this kernel is
        the achieved bandwidth times its demand *share*, and cache /
        efficiency state was hoisted under the pair's combined
        pressure.
        """
        kernel = side.kernel
        ch = kernel.characteristics
        geometry = kernel.geometry
        active = side.active[cu_index]
        items = float(geometry.global_size)
        total_waves = float(geometry.total_waves)

        lane_ops = items * ch.valu_ops_per_item / ch.simd_efficiency
        issue_factor = min(1.0, side.waves_per_cu / FULL_ISSUE_WAVES)
        throughput = (
            active * uarch.lanes_per_cu * engine_hz * issue_factor
        )
        compute_s = lane_ops / throughput

        salu_s = (
            total_waves * ch.salu_ops_per_item / (active * engine_hz)
        )

        lds_bytes = items * ch.lds_bytes_per_item
        per_device = cu_count_full * 128 * engine_hz
        active_share = per_device * active / cu_count_full
        lds_s = lds_bytes / active_share

        issued_bytes = items * ch.global_bytes_per_item
        l2_bytes = issued_bytes * (1.0 - side.l1_hit)
        dram_bytes = issued_bytes * side.dram_fraction[cu_index]
        peak_l2 = uarch.l2_banks * 64 * engine_hz
        l2_s = l2_bytes / peak_l2

        bytes_per_cycle = (
            uarch.memory_bus_bits / 8 * uarch.memory_data_rate
        )
        peak_dram = (
            bytes_per_cycle * memory_hz
            * (1.0 - uarch.host_bandwidth_fraction)
        )
        achieved_bw = peak_dram * side.efficiency[cu_index]
        available_bw = achieved_bw * share
        concurrency = active * side.waves_per_cu * ch.memory_parallelism
        l2_time = uarch.l2_latency_cycles / engine_hz
        dram_time = uarch.dram_latency_cycles / memory_hz
        fixed_time = ns_to_seconds(uarch.dram_fixed_latency_ns)
        unloaded_latency = l2_time + dram_time + fixed_time
        little_bw = concurrency * REQUEST_BYTES / unloaded_latency
        effective_bw = min(available_bw, little_bw)
        dram_s = dram_bytes / effective_bw if dram_bytes > 0.0 else 0.0

        memory_side = dram_time + fixed_time
        if ch.dependent_access_fraction == 0.0:
            latency_s = 0.0
        else:
            requests = (l2_bytes + 0.0) / REQUEST_BYTES
            dependent = requests * ch.dependent_access_fraction
            miss_fraction = (
                0.0 if l2_bytes == 0 else dram_bytes / l2_bytes
            )
            chain_concurrency = max(1.0, active * side.waves_per_cu)
            l2_latency = uarch.l2_latency_cycles / engine_hz

            def exposed(dram_latency):
                mean_latency = (
                    miss_fraction * dram_latency
                    + (1.0 - miss_fraction) * l2_latency
                )
                return dependent * mean_latency / chain_concurrency

            latency_s = exposed(l2_time + memory_side / (1.0 - 0.0))
            first_pass_max = max(
                compute_s, salu_s, lds_s, l2_s, dram_s, latency_s
            )
            if first_pass_max > 0.0 and dram_bytes > 0.0:
                utilisation = min(
                    1.0, (dram_bytes / available_bw) / first_pass_max
                )
                bounded = min(
                    utilisation, 1.0 - 1.0 / MAX_QUEUE_STRETCH
                )
                loaded = l2_time + memory_side / (1.0 - bounded)
                latency_s = exposed(loaded)

        if ch.atomic_ops_per_item == 0.0 or ch.atomic_contention == 0.0:
            atomic_s = 0.0
        else:
            serialised = (
                items * ch.atomic_ops_per_item * ch.atomic_contention
            )
            concurrency_growth = 1.0 + ATOMIC_CONCURRENCY_SLOPE * (
                ch.atomic_contention * (active - 1) / 43.0
            )
            cycles = (
                serialised * ATOMIC_SERIAL_CYCLES * concurrency_growth
            )
            atomic_s = cycles / engine_hz

        barrier_s = (
            geometry.num_workgroups
            * ch.barriers_per_workgroup
            * BARRIER_CYCLES
            / engine_hz
            / side.resident_total[cu_index]
        )
        launch_s = us_to_seconds(ch.launch_overhead_us)

        local_peak = max(compute_s, salu_s, lds_s, latency_s)
        shared_peak = max(l2_s, dram_s)
        dominant = max(
            local_peak * side.quantisation[cu_index], shared_peak
        )
        overlap_sum = (
            ((((compute_s + salu_s) + lds_s) + l2_s) + dram_s)
            + latency_s
        )
        overlap_max = max(local_peak, shared_peak)
        spill = NON_OVERLAP_FRACTION * (overlap_sum - overlap_max)
        parallel_s = dominant + spill
        time_s = parallel_s + atomic_s + barrier_s + launch_s

        busy_s = (compute_s + salu_s) + lds_s
        return time_s, busy_s, dram_s, dram_bytes

    def _grid_terms(
        self,
        side: _Side,
        cu_full: np.ndarray,
        engine_hz: np.ndarray,
        memory_hz: np.ndarray,
        uarch: Microarchitecture,
        share,
    ):
        """Vectorized twin of :meth:`_point_terms` over the lattice.

        Returns ``(time_s, compute_busy_s, dram_s, dram_bytes)`` as
        broadcastable arrays. Operation order matches the scalar twin
        exactly; scalar guards become exact-zero products or masked
        ``np.where`` branches.
        """
        kernel = side.kernel
        ch = kernel.characteristics
        geometry = kernel.geometry
        n_cu = len(side.active)
        active = np.asarray(
            side.active, dtype=np.int64
        ).reshape(n_cu, 1, 1)
        quantisation = np.asarray(
            side.quantisation
        ).reshape(n_cu, 1, 1)
        resident_total = np.asarray(
            side.resident_total, dtype=np.int64
        ).reshape(n_cu, 1, 1)
        efficiency = np.asarray(
            side.efficiency
        ).reshape(n_cu, 1, 1)
        dram_fraction = np.asarray(
            side.dram_fraction
        ).reshape(n_cu, 1, 1)
        items = float(geometry.global_size)
        total_waves = float(geometry.total_waves)

        lane_ops = items * ch.valu_ops_per_item / ch.simd_efficiency
        issue_factor = min(1.0, side.waves_per_cu / FULL_ISSUE_WAVES)
        throughput = (
            active * uarch.lanes_per_cu * engine_hz * issue_factor
        )
        compute_s = lane_ops / throughput

        salu_s = (
            total_waves * ch.salu_ops_per_item / (active * engine_hz)
        )

        # A zero-LDS kernel divides an exact 0.0 numerator — same value
        # the scalar division produces.
        lds_bytes = items * ch.lds_bytes_per_item
        per_device = cu_full * 128 * engine_hz
        active_share = per_device * active / cu_full
        lds_s = lds_bytes / active_share

        issued_bytes = items * ch.global_bytes_per_item
        l2_bytes = issued_bytes * (1.0 - side.l1_hit)
        dram_bytes = issued_bytes * dram_fraction
        peak_l2 = uarch.l2_banks * 64 * engine_hz
        l2_s = l2_bytes / peak_l2

        bytes_per_cycle = (
            uarch.memory_bus_bits / 8 * uarch.memory_data_rate
        )
        peak_dram = (
            bytes_per_cycle * memory_hz
            * (1.0 - uarch.host_bandwidth_fraction)
        )
        achieved_bw = peak_dram * efficiency
        available_bw = achieved_bw * share
        concurrency = active * side.waves_per_cu * ch.memory_parallelism
        l2_time = uarch.l2_latency_cycles / engine_hz
        dram_time = uarch.dram_latency_cycles / memory_hz
        fixed_time = ns_to_seconds(uarch.dram_fixed_latency_ns)
        unloaded_latency = l2_time + dram_time + fixed_time
        little_bw = concurrency * REQUEST_BYTES / unloaded_latency
        effective_bw = np.minimum(available_bw, little_bw)
        dram_positive = dram_bytes > 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            dram_s = np.where(
                dram_positive, dram_bytes / effective_bw, 0.0
            )

        memory_side = dram_time + fixed_time
        if ch.dependent_access_fraction == 0.0:
            latency_s = np.float64(0.0)
        else:
            requests = (l2_bytes + 0.0) / REQUEST_BYTES
            dependent = requests * ch.dependent_access_fraction
            if l2_bytes == 0:
                miss_fraction = np.float64(0.0)
            else:
                miss_fraction = dram_bytes / l2_bytes
            chain_concurrency = np.maximum(
                1.0, active * side.waves_per_cu
            )
            l2_latency = uarch.l2_latency_cycles / engine_hz

            def exposed(dram_latency):
                mean_latency = (
                    miss_fraction * dram_latency
                    + (1.0 - miss_fraction) * l2_latency
                )
                return dependent * mean_latency / chain_concurrency

            latency_s = exposed(l2_time + memory_side / (1.0 - 0.0))
            first_pass_max = _chain_max(
                compute_s, salu_s, lds_s, l2_s, dram_s, latency_s
            )
            refine = (first_pass_max > 0.0) & dram_positive
            if np.any(refine):
                with np.errstate(divide="ignore", invalid="ignore"):
                    utilisation = np.minimum(
                        1.0,
                        (dram_bytes / available_bw) / first_pass_max,
                    )
                utilisation = np.where(refine, utilisation, 0.0)
                bounded = np.minimum(
                    utilisation, 1.0 - 1.0 / MAX_QUEUE_STRETCH
                )
                loaded = l2_time + memory_side / (1.0 - bounded)
                latency_s = np.where(
                    refine, exposed(loaded), latency_s
                )

        if ch.atomic_ops_per_item == 0.0 or ch.atomic_contention == 0.0:
            atomic_s = np.float64(0.0)
        else:
            serialised = (
                items * ch.atomic_ops_per_item * ch.atomic_contention
            )
            concurrency_growth = 1.0 + ATOMIC_CONCURRENCY_SLOPE * (
                ch.atomic_contention * (active - 1) / 43.0
            )
            cycles = (
                serialised * ATOMIC_SERIAL_CYCLES * concurrency_growth
            )
            atomic_s = cycles / engine_hz

        barrier_s = (
            geometry.num_workgroups
            * ch.barriers_per_workgroup
            * BARRIER_CYCLES
            / engine_hz
            / resident_total
        )
        launch_s = us_to_seconds(ch.launch_overhead_us)

        local_peak = _chain_max(compute_s, salu_s, lds_s, latency_s)
        shared_peak = np.maximum(l2_s, dram_s)
        dominant = np.maximum(local_peak * quantisation, shared_peak)
        overlap_sum = (
            ((((compute_s + salu_s) + lds_s) + l2_s) + dram_s)
            + latency_s
        )
        overlap_max = np.maximum(local_peak, shared_peak)
        spill = NON_OVERLAP_FRACTION * (overlap_sum - overlap_max)
        parallel_s = dominant + spill
        time_s = parallel_s + atomic_s + barrier_s + launch_s

        busy_s = (compute_s + salu_s) + lds_s
        return time_s, busy_s, dram_s, dram_bytes


def _chain_max(first, *rest):
    """Elementwise maximum of several broadcastable arrays."""
    result = first
    for term in rest:
        result = np.maximum(result, term)
    return result


def _full(value, shape) -> np.ndarray:
    """Broadcast *value* to *shape* as a fresh contiguous array."""
    return np.ascontiguousarray(
        np.broadcast_to(np.asarray(value, dtype=np.float64), shape)
    )
