"""Concurrent-kernel co-scheduling: pair contention over shared
bandwidth and cache, iterated to a fixed point, with pair throughput
(STP), fairness (ANTT) and pair energy surfaces over the sweep grid."""

from repro.coschedule.model import (
    DEFAULT_CU_SHARE,
    FIXED_POINT_ITERATIONS,
    CoScheduleModel,
    CoScheduleResult,
    KernelShare,
    PairSurface,
    partition_cus,
)

__all__ = [
    "DEFAULT_CU_SHARE",
    "FIXED_POINT_ITERATIONS",
    "CoScheduleModel",
    "CoScheduleResult",
    "KernelShare",
    "PairSurface",
    "partition_cus",
]
