"""Cross-architecture taxonomy transfer, scored by confusion matrices.

The acceptance metric for the transfer mode (ROADMAP item 2): predict
every catalog kernel's *taxonomy class* on family B from its measured
surface on family A, and compare against the class the model assigns
when the kernel actually runs on B. :class:`ConfusionMatrix` holds the
actual-by-predicted counts; :func:`evaluate_transfer` produces one per
family pair; :func:`family_taxonomy` reruns the full taxonomy on any
registered family's canonical grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.gpu.interval_batch import BatchIntervalModel
from repro.gpu.uarch import get_family
from repro.kernels.kernel import Kernel
from repro.kernels.pack import KernelPack
from repro.predict.transfer import (
    DEFAULT_NEIGHBOURS,
    transfer_predictor,
)
from repro.sweep.dataset import KernelRecord, ScalingDataset
from repro.taxonomy.categories import TaxonomyCategory
from repro.taxonomy.classifier import TaxonomyResult, classify


def _catalog_kernels() -> List[Kernel]:
    from repro.suites import all_kernels

    return list(all_kernels())


def _dataset(
    kernels: Sequence[Kernel], space, perf: np.ndarray
) -> ScalingDataset:
    records = [
        KernelRecord(
            full_name=k.full_name,
            suite=k.suite,
            program=k.program,
            kernel=k.name,
        )
        for k in kernels
    ]
    return ScalingDataset(space, records, perf)


@dataclass(frozen=True)
class ConfusionMatrix:
    """Actual-by-predicted taxonomy-class counts.

    Rows are the class the model assigns on the target family (ground
    truth); columns are the class transfer predicted. A perfect
    transfer is diagonal.
    """

    categories: Tuple[TaxonomyCategory, ...]
    counts: np.ndarray  # shape (n_categories, n_categories), int64

    @property
    def total(self) -> int:
        """Kernels scored."""
        return int(self.counts.sum())

    @property
    def accuracy(self) -> float:
        """Diagonal fraction — exact class agreement."""
        total = self.total
        if total == 0:
            return 0.0
        return float(np.trace(self.counts)) / total

    def recall(self, category: TaxonomyCategory) -> float:
        """Fraction of *category*'s actual kernels predicted as it."""
        row = self.categories.index(category)
        actual = self.counts[row].sum()
        if actual == 0:
            return 0.0
        return float(self.counts[row, row]) / float(actual)

    def to_dict(self) -> dict:
        """JSON-compatible payload (category names key the rows)."""
        return {
            "categories": [c.value for c in self.categories],
            "counts": self.counts.tolist(),
            "total": self.total,
            "accuracy": self.accuracy,
        }

    def render(self) -> str:
        """A fixed-width table (actual rows, predicted columns)."""
        names = [c.value for c in self.categories]
        width = max(len(n) for n in names) + 2
        cell = max(6, max(len(n) for n in names) + 1)
        lines = [
            " " * width
            + "".join(f"{n:>{cell}}" for n in names)
            + "   (predicted)"
        ]
        for row, name in enumerate(names):
            cells = "".join(
                f"{int(v):>{cell}}" for v in self.counts[row]
            )
            lines.append(f"{name:<{width}}" + cells)
        lines.append(
            f"accuracy {self.accuracy:.3f} over {self.total} kernels"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class TransferRow:
    """One kernel's transfer outcome."""

    kernel_name: str
    actual: TaxonomyCategory
    predicted: TaxonomyCategory
    nearest: str

    @property
    def agrees(self) -> bool:
        """True when the predicted class matches the actual class."""
        return self.actual is self.predicted


@dataclass(frozen=True)
class TransferEvaluation:
    """A scored transfer run: one family pair, many kernels."""

    source_family: str
    target_family: str
    matrix: ConfusionMatrix
    rows: Tuple[TransferRow, ...]
    #: The fitted predictor's leave-one-out surface error.
    transfer_error: float

    @property
    def accuracy(self) -> float:
        """Exact class-agreement fraction."""
        return self.matrix.accuracy

    def to_dict(self) -> dict:
        """JSON-compatible payload."""
        return {
            "source_family": self.source_family,
            "target_family": self.target_family,
            "confusion": self.matrix.to_dict(),
            "transfer_error": self.transfer_error,
            "kernels": [
                {
                    "kernel": row.kernel_name,
                    "actual": row.actual.value,
                    "predicted": row.predicted.value,
                    "nearest": row.nearest,
                }
                for row in self.rows
            ],
        }


def confusion_from_labels(
    pairs: Sequence[Tuple[TaxonomyCategory, TaxonomyCategory]],
) -> ConfusionMatrix:
    """Build a matrix from (actual, predicted) category pairs."""
    categories = tuple(TaxonomyCategory)
    index = {c: i for i, c in enumerate(categories)}
    counts = np.zeros((len(categories), len(categories)), dtype=np.int64)
    for actual, predicted in pairs:
        counts[index[actual], index[predicted]] += 1
    return ConfusionMatrix(categories=categories, counts=counts)


def family_taxonomy(
    family_name: str, kernels: Optional[Sequence[Kernel]] = None
) -> TaxonomyResult:
    """The full taxonomy on *family_name*'s canonical grid.

    Sweeps *kernels* (default: the whole 267-kernel catalog) over the
    family's canonical space with the batch interval engine and
    classifies every surface — the per-family rerun of the paper's
    experiment.
    """
    family = get_family(family_name)
    kernels = list(kernels) if kernels is not None else _catalog_kernels()
    if not kernels:
        raise AnalysisError("family_taxonomy needs at least one kernel")
    study = BatchIntervalModel().simulate_study(
        KernelPack.from_kernels(kernels), family.space
    )
    return classify(_dataset(kernels, family.space, study.items_per_second))


def evaluate_transfer(
    source: str,
    target: str,
    kernels: Optional[Sequence[Kernel]] = None,
    *,
    k: int = DEFAULT_NEIGHBOURS,
) -> TransferEvaluation:
    """Score taxonomy-class transfer from *source* to *target*.

    Every kernel is swept on the source family's canonical grid
    (measurement), its target surface predicted by the cross-family
    corpus, and the predicted class compared against the class from an
    actual target-family sweep (ground truth). Returns the confusion
    matrix plus per-kernel rows.
    """
    predictor = transfer_predictor(source, target, k=k)
    source_family = predictor.source
    target_family = predictor.target
    kernels = list(kernels) if kernels is not None else _catalog_kernels()
    if not kernels:
        raise AnalysisError("evaluate_transfer needs at least one kernel")

    batch = BatchIntervalModel()
    pack = KernelPack.from_kernels(kernels)
    source_perf = batch.simulate_study(
        pack, source_family.space
    ).items_per_second
    target_perf = batch.simulate_study(
        pack, target_family.space
    ).items_per_second

    # Excluding each kernel's own corpus row makes this a leave-one-out
    # score: the headline accuracy never counts a self-match.
    predictions = [
        predictor.predict_cube(
            source_perf[i],
            kernel_name=k.full_name,
            exclude=k.full_name,
        )
        for i, k in enumerate(kernels)
    ]
    predicted_perf = np.stack([p.cube for p in predictions])

    actual_result = classify(
        _dataset(kernels, target_family.space, target_perf)
    )
    predicted_result = classify(
        _dataset(kernels, target_family.space, predicted_perf)
    )

    rows = []
    pairs = []
    for kernel, prediction in zip(kernels, predictions):
        actual = actual_result.label_for(kernel.full_name).category
        predicted = predicted_result.label_for(kernel.full_name).category
        pairs.append((actual, predicted))
        rows.append(
            TransferRow(
                kernel_name=kernel.full_name,
                actual=actual,
                predicted=predicted,
                nearest=prediction.nearest,
            )
        )

    return TransferEvaluation(
        source_family=source_family.name,
        target_family=target_family.name,
        matrix=confusion_from_labels(pairs),
        rows=tuple(rows),
        transfer_error=predictor.measured_error(),
    )


def taxonomy_distributions(
    family_names_seq: Optional[Sequence[str]] = None,
    kernels: Optional[Sequence[Kernel]] = None,
) -> Dict[str, Dict[str, int]]:
    """Per-family taxonomy category counts (snapshot artifact payload).

    Keys are family names; values map category value strings to kernel
    counts over the family's canonical grid.
    """
    from repro.gpu.uarch import family_names

    names = list(family_names_seq or family_names())
    result: Dict[str, Dict[str, int]] = {}
    for name in names:
        taxonomy = family_taxonomy(name, kernels)
        result[name] = {
            category.value: count
            for category, count in taxonomy.category_counts().items()
        }
    return result
