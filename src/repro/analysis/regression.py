"""Log-linear scaling-law regression.

Fits each kernel's full 891-point cube to the power law

    perf ~ A * cu^a * f_engine^b * f_memory^c

via least squares in log space. The exponent triple (a, b, c) is a
compact scaling signature: a compute-bound kernel sits near (1, 1, 0),
a bandwidth-bound one near (0..0.5, 0..0.3, 1), a plateau kernel near
(0, 0, 0). R² measures how power-law-like the kernel is — inverse
scalers and kernels whose bottleneck migrates mid-sweep fit poorly,
which is itself diagnostic (the taxonomy exists because one global
power law cannot describe these kernels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.sweep.dataset import ScalingDataset
from repro.taxonomy.classifier import TaxonomyResult


@dataclass(frozen=True)
class PowerLawFit:
    """One kernel's fitted scaling law."""

    kernel_name: str
    cu_exponent: float
    engine_exponent: float
    memory_exponent: float
    log_intercept: float
    r_squared: float

    @property
    def exponents(self) -> Tuple[float, float, float]:
        """(CU, engine, memory) exponents."""
        return (
            self.cu_exponent,
            self.engine_exponent,
            self.memory_exponent,
        )

    def predict(
        self, cu_count: float, engine_mhz: float, memory_mhz: float
    ) -> float:
        """Performance predicted by the fitted law."""
        return float(
            np.exp(self.log_intercept)
            * cu_count ** self.cu_exponent
            * engine_mhz ** self.engine_exponent
            * memory_mhz ** self.memory_exponent
        )


def fit_kernel(dataset: ScalingDataset, kernel_name: str) -> PowerLawFit:
    """Least-squares power-law fit over one kernel's cube."""
    cube = dataset.kernel_cube(kernel_name)
    space = dataset.space
    n_cu, n_eng, n_mem = space.shape

    log_cu = np.log(np.asarray(space.cu_counts, dtype=np.float64))
    log_eng = np.log(np.asarray(space.engine_mhz, dtype=np.float64))
    log_mem = np.log(np.asarray(space.memory_mhz, dtype=np.float64))

    grid_cu, grid_eng, grid_mem = np.meshgrid(
        log_cu, log_eng, log_mem, indexing="ij"
    )
    design = np.column_stack(
        [
            np.ones(cube.size),
            grid_cu.ravel(),
            grid_eng.ravel(),
            grid_mem.ravel(),
        ]
    )
    target = np.log(cube.ravel())

    coeffs, _, rank, _ = np.linalg.lstsq(design, target, rcond=None)
    if rank < design.shape[1]:
        raise AnalysisError(
            f"rank-deficient design for kernel {kernel_name!r} "
            "(degenerate configuration space?)"
        )
    predicted = design @ coeffs
    residual = target - predicted
    total = target - target.mean()
    ss_tot = float(total @ total)
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - float(
        residual @ residual
    ) / ss_tot

    return PowerLawFit(
        kernel_name=kernel_name,
        log_intercept=float(coeffs[0]),
        cu_exponent=float(coeffs[1]),
        engine_exponent=float(coeffs[2]),
        memory_exponent=float(coeffs[3]),
        r_squared=r_squared,
    )


def fit_all(dataset: ScalingDataset) -> Dict[str, PowerLawFit]:
    """Power-law fits for every kernel, keyed by full name."""
    return {
        name: fit_kernel(dataset, name) for name in dataset.kernel_names
    }


@dataclass(frozen=True)
class CategoryRegressionSummary:
    """Mean exponents and fit quality within one taxonomy category."""

    category: str
    kernel_count: int
    mean_cu_exponent: float
    mean_engine_exponent: float
    mean_memory_exponent: float
    mean_r_squared: float


def summarise_by_category(
    dataset: ScalingDataset, taxonomy: TaxonomyResult
) -> Dict[str, CategoryRegressionSummary]:
    """Aggregate the fitted exponents per taxonomy category.

    Demonstrates that the rule-based categories correspond to distinct
    regions of exponent space — the quantitative backbone of the
    taxonomy's validity.
    """
    fits = fit_all(dataset)
    groups: Dict[str, list] = {}
    for label in taxonomy.labels:
        groups.setdefault(label.category.value, []).append(
            fits[label.kernel_name]
        )
    summaries: Dict[str, CategoryRegressionSummary] = {}
    for category, members in groups.items():
        summaries[category] = CategoryRegressionSummary(
            category=category,
            kernel_count=len(members),
            mean_cu_exponent=float(
                np.mean([f.cu_exponent for f in members])
            ),
            mean_engine_exponent=float(
                np.mean([f.engine_exponent for f in members])
            ),
            mean_memory_exponent=float(
                np.mean([f.memory_exponent for f in members])
            ),
            mean_r_squared=float(
                np.mean([f.r_squared for f in members])
            ),
        )
    return summaries
