"""Class-composition analysis: what co-scheduling does to the taxonomy.

A kernel's scaling class describes its *solo* surface; a co-resident
partner re-shapes that surface by stealing CUs, bandwidth share and L2
capacity. This module asks the taxonomy-level question: for each
ordered pair of scaling classes, pick a representative kernel of each,
co-schedule them over the grid, and classify the first kernel's
*composed* throughput surface. The result is a class-composition
matrix — "a compute-bound kernel next to a bandwidth-bound partner
lands in class X" — plus the pairings that *destroy* scaling: composed
surfaces that fall into a non-scaling class (plateau, CU-inverse or
parallelism-limited) even though the kernel scaled on its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coschedule.model import CoScheduleModel
from repro.errors import AnalysisError
from repro.gpu.interval_batch import BatchIntervalModel
from repro.kernels.kernel import Kernel
from repro.kernels.pack import KernelPack
from repro.suites.registry import all_kernels
from repro.sweep.dataset import KernelRecord, ScalingDataset
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace
from repro.taxonomy.categories import TaxonomyCategory
from repro.taxonomy.classifier import classify

#: Classes whose members do not scale: landing here from a scaling
#: solo class means the pairing destroyed the kernel's scaling.
NON_SCALING = (
    TaxonomyCategory.PLATEAU,
    TaxonomyCategory.CU_INVERSE,
    TaxonomyCategory.PARALLELISM_LIMITED,
)


def _dataset(kernel: Kernel, space, perf: np.ndarray) -> ScalingDataset:
    record = KernelRecord(
        full_name=kernel.full_name,
        suite=kernel.suite,
        program=kernel.program,
        kernel=kernel.name,
    )
    return ScalingDataset(space, [record], perf[np.newaxis])


@dataclass(frozen=True)
class CompositionMatrix:
    """Composed scaling class for every ordered pair of solo classes.

    ``composed[i][j]`` is the class kernel A's surface lands in when a
    representative of ``categories[i]`` runs next to a representative
    of ``categories[j]`` (None when a class has no representative in
    the catalog); ``destroyed[i][j]`` flags pairings that push a
    scaling class into a non-scaling one.
    """

    categories: Tuple[TaxonomyCategory, ...]
    representatives: Dict[TaxonomyCategory, str]
    solo: Dict[TaxonomyCategory, TaxonomyCategory]
    composed: Tuple[Tuple[Optional[TaxonomyCategory], ...], ...]
    destroyed: Tuple[Tuple[bool, ...], ...]

    def composed_class(
        self, a: TaxonomyCategory, b: TaxonomyCategory
    ) -> Optional[TaxonomyCategory]:
        """The class *a*'s representative lands in next to *b*'s."""
        i = self.categories.index(a)
        j = self.categories.index(b)
        return self.composed[i][j]

    def destroys_scaling(
        self, a: TaxonomyCategory, b: TaxonomyCategory
    ) -> bool:
        """True when pairing *a* with *b* lands *a* in a non-scaling
        class it did not occupy solo."""
        i = self.categories.index(a)
        j = self.categories.index(b)
        return self.destroyed[i][j]

    @property
    def destructive_pairs(
        self,
    ) -> List[Tuple[TaxonomyCategory, TaxonomyCategory]]:
        """All ordered (victim, partner) pairs that destroy scaling."""
        pairs = []
        for i, a in enumerate(self.categories):
            for j, b in enumerate(self.categories):
                if self.destroyed[i][j]:
                    pairs.append((a, b))
        return pairs

    def to_dict(self) -> dict:
        """JSON-compatible payload."""
        return {
            "categories": [c.value for c in self.categories],
            "representatives": {
                c.value: name
                for c, name in self.representatives.items()
            },
            "composed": [
                [cell.value if cell is not None else None for cell in row]
                for row in self.composed
            ],
            "destroyed": [list(row) for row in self.destroyed],
        }

    def render(self) -> str:
        """A fixed-width table (victim rows, partner columns).

        Cells show the victim's composed class, suffixed ``!`` when the
        pairing destroyed its scaling; ``-`` marks classes without a
        catalog representative.
        """
        names = [c.value for c in self.categories]
        width = max(len(n) for n in names) + 2
        cell = max(8, max(len(n) for n in names) + 2)
        lines = [
            " " * width
            + "".join(f"{n:>{cell}}" for n in names)
            + "   (partner)"
        ]
        for i, name in enumerate(names):
            cells = ""
            for j in range(len(names)):
                composed = self.composed[i][j]
                if composed is None:
                    text = "-"
                else:
                    text = composed.value
                    if self.destroyed[i][j]:
                        text += "!"
                cells += f"{text:>{cell}}"
            lines.append(f"{name:<{width}}" + cells)
        return "\n".join(lines)


def class_composition_matrix(
    kernels: Optional[Sequence[Kernel]] = None,
    space: ConfigurationSpace = PAPER_SPACE,
    model: Optional[CoScheduleModel] = None,
) -> CompositionMatrix:
    """The composed scaling class of every ordered class pair.

    Classifies the catalog solo (one batch study over *space*), picks
    the first kernel of each class in catalog order as its
    representative, then co-schedules every ordered representative pair
    and classifies the first kernel's composed throughput surface.
    Deterministic: same catalog, same space, same matrix.
    """
    kernels = (
        list(kernels) if kernels is not None else list(all_kernels())
    )
    if not kernels:
        raise AnalysisError(
            "class_composition_matrix needs at least one kernel"
        )
    model = model or CoScheduleModel()

    study = BatchIntervalModel().simulate_study(
        KernelPack.from_kernels(kernels), space
    )
    records = [
        KernelRecord(
            full_name=k.full_name,
            suite=k.suite,
            program=k.program,
            kernel=k.name,
        )
        for k in kernels
    ]
    solo_result = classify(
        ScalingDataset(space, records, study.items_per_second)
    )

    categories = tuple(TaxonomyCategory)
    representatives: Dict[TaxonomyCategory, Kernel] = {}
    solo_class: Dict[TaxonomyCategory, TaxonomyCategory] = {}
    for kernel in kernels:
        category = solo_result.label_for(kernel.full_name).category
        if category not in representatives:
            representatives[category] = kernel
            solo_class[category] = category

    composed_rows: List[Tuple[Optional[TaxonomyCategory], ...]] = []
    destroyed_rows: List[Tuple[bool, ...]] = []
    for victim_class in categories:
        victim = representatives.get(victim_class)
        composed_row: List[Optional[TaxonomyCategory]] = []
        destroyed_row: List[bool] = []
        for partner_class in categories:
            partner = representatives.get(partner_class)
            if victim is None or partner is None:
                composed_row.append(None)
                destroyed_row.append(False)
                continue
            surface = model.pair_surface(victim, partner, space)
            composed = classify(
                _dataset(victim, space, surface.perf_a)
            ).label_for(victim.full_name).category
            composed_row.append(composed)
            destroyed_row.append(
                composed in NON_SCALING
                and victim_class not in NON_SCALING
            )
        composed_rows.append(tuple(composed_row))
        destroyed_rows.append(tuple(destroyed_row))

    return CompositionMatrix(
        categories=categories,
        representatives={
            c: k.full_name for c, k in representatives.items()
        },
        solo=solo_class,
        composed=tuple(composed_rows),
        destroyed=tuple(destroyed_rows),
    )
