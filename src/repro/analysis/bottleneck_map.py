"""Bottleneck-migration maps.

The taxonomy classifies *observed scaling*; this analysis opens the
model and asks which machine resource actually binds at each of the
891 configurations. The result explains the taxonomy from the inside:
a "balanced" kernel is one whose binding resource migrates between
compute and DRAM across the clock plane, a "plateau" kernel one that
is latency- or launch-bound everywhere.

Unlike the rest of :mod:`repro.analysis`, this module needs the
simulator (the breakdown is model state, not measurement); on real
hardware the equivalent data comes from per-configuration profiler
counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.gpu.interval_model import IntervalModel
from repro.kernels.kernel import Kernel
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace


@dataclass(frozen=True)
class BottleneckMap:
    """The binding resource of one kernel at every configuration."""

    kernel_name: str
    space: ConfigurationSpace
    bottlenecks: Tuple[Tuple[Tuple[str, ...], ...], ...]

    def at(self, cu_idx: int, eng_idx: int, mem_idx: int) -> str:
        """The bottleneck name at one grid coordinate."""
        return self.bottlenecks[cu_idx][eng_idx][mem_idx]

    def histogram(self) -> Dict[str, int]:
        """Configurations bound by each resource."""
        counts: Counter = Counter()
        for plane in self.bottlenecks:
            for row in plane:
                counts.update(row)
        return dict(counts)

    @property
    def dominant(self) -> str:
        """The most frequent bottleneck across the space."""
        histogram = self.histogram()
        return max(histogram, key=histogram.__getitem__)

    @property
    def migration_count(self) -> int:
        """Distinct binding resources seen across the space.

        1 = the kernel has one story everywhere; 3+ = the bottleneck
        migrates substantially (the balanced/mixed signature).
        """
        return len(self.histogram())

    def migrates(self) -> bool:
        """True when more than one resource binds somewhere."""
        return self.migration_count > 1


def bottleneck_map(
    kernel: Kernel,
    space: ConfigurationSpace = PAPER_SPACE,
    model: IntervalModel = None,
) -> BottleneckMap:
    """Compute the binding resource of *kernel* at every point."""
    model = model or IntervalModel()
    n_cu, n_eng, n_mem = space.shape
    planes = []
    for c in range(n_cu):
        rows = []
        for e in range(n_eng):
            row = []
            for m in range(n_mem):
                result = model.simulate(kernel, space.config(c, e, m))
                row.append(result.breakdown.bottleneck)
            rows.append(tuple(row))
        planes.append(tuple(rows))
    return BottleneckMap(
        kernel_name=kernel.full_name,
        space=space,
        bottlenecks=tuple(planes),
    )


def migration_summary(
    kernels, space: ConfigurationSpace = PAPER_SPACE
) -> Dict[str, int]:
    """Histogram of migration counts over a kernel collection."""
    model = IntervalModel()
    counts: Counter = Counter()
    for kernel in kernels:
        counts[bottleneck_map(kernel, space, model).migration_count] += 1
    return dict(counts)
