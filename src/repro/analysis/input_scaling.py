"""Input-scaling study: "new benchmarks or new inputs are warranted".

The paper's conclusion is a recommendation, not just a complaint: the
suites that fail to scale mostly fail because their *inputs* were sized
for 2009-era GPUs. This module operationalises the fix — rescale a
kernel's launch (and, proportionally, its footprint) as a larger input
would, re-run the sweep, and measure how much scalability the suite
recovers. It turns the paper's qualitative advice into a quantitative
experiment (`benchmarks/test_extension_input_scaling.py`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.kernels.kernel import Kernel, LaunchGeometry
from repro.sweep.runner import SweepRunner
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace
from repro.taxonomy.categories import TaxonomyCategory
from repro.taxonomy.classifier import classify

#: Launch sizes above this are not grown further (memory capacity).
MAX_GLOBAL_SIZE = 1 << 26


def scale_input(kernel: Kernel, factor: float) -> Kernel:
    """A copy of *kernel* as a *factor*-times-larger input would run it.

    A larger input multiplies the work-item count and the touched
    footprint; per-item behaviour (arithmetic intensity, locality
    fractions, divergence) is input-shape dependent and left unchanged
    — the conservative assumption that makes recovered scalability
    attributable to parallelism alone.
    """
    if factor <= 0:
        raise AnalysisError(f"scale factor must be > 0, got {factor}")
    geometry = kernel.geometry
    new_global = min(
        MAX_GLOBAL_SIZE, max(1, round(geometry.global_size * factor))
    )
    new_geometry = LaunchGeometry(
        global_size=new_global,
        workgroup_size=geometry.workgroup_size,
    )
    new_characteristics = kernel.characteristics.replace(
        footprint_bytes=kernel.characteristics.footprint_bytes * factor
    )
    return kernel.replace(
        geometry=new_geometry, characteristics=new_characteristics
    )


@dataclass(frozen=True)
class InputScalingPoint:
    """Suite health at one input-scale factor."""

    factor: float
    starved_fraction: float
    median_end_to_end_gain: float

    @property
    def suite_scales(self) -> bool:
        """Same bar as the suite-scalability critique (quarter rule)."""
        return self.starved_fraction < 0.25


@dataclass(frozen=True)
class InputScalingStudy:
    """Full study: suite health across input-scale factors."""

    suite: str
    points: tuple

    def recovery_factor(self) -> float:
        """The smallest studied factor at which the suite passes the
        scalability bar (``inf`` if none does)."""
        for point in self.points:
            if point.suite_scales:
                return point.factor
        return float("inf")

    @property
    def recovers(self) -> bool:
        """True when some studied input scale fixes the suite."""
        return self.recovery_factor() != float("inf")


_STARVED = (
    TaxonomyCategory.PARALLELISM_LIMITED,
    TaxonomyCategory.PLATEAU,
)


def study_input_scaling(
    kernels: Sequence[Kernel],
    factors: Sequence[float] = (1.0, 4.0, 16.0, 64.0),
    space: ConfigurationSpace = PAPER_SPACE,
    suite: str = "",
) -> InputScalingStudy:
    """Sweep + classify *kernels* at each input-scale factor.

    Returns the starved fraction and median end-to-end gain per factor
    — the recovery curve the paper's recommendation predicts should
    fall (starvation) and rise (gain) with larger inputs.
    """
    if not kernels:
        raise AnalysisError("input-scaling study needs kernels")
    if not factors:
        raise AnalysisError("input-scaling study needs factors")
    suite = suite or kernels[0].suite

    runner = SweepRunner()
    points: List[InputScalingPoint] = []
    for factor in factors:
        scaled = [scale_input(k, factor) for k in kernels]
        dataset = runner.run(scaled, space)
        taxonomy = classify(dataset)
        starved = sum(
            1 for label in taxonomy.labels if label.category in _STARVED
        )
        gains = [
            label.features.end_to_end_gain for label in taxonomy.labels
        ]
        points.append(
            InputScalingPoint(
                factor=float(factor),
                starved_fraction=starved / len(scaled),
                median_end_to_end_gain=float(np.median(gains)),
            )
        )
    return InputScalingStudy(suite=suite, points=tuple(points))


def recovery_by_suite(
    suites_kernels: Dict[str, Sequence[Kernel]],
    factors: Sequence[float] = (1.0, 4.0, 16.0, 64.0),
    space: ConfigurationSpace = PAPER_SPACE,
) -> Dict[str, InputScalingStudy]:
    """Run the study per suite."""
    return {
        suite: study_input_scaling(kernels, factors, space, suite)
        for suite, kernels in suites_kernels.items()
    }
