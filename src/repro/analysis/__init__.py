"""Evaluation analytics: suite scalability, scaling-law regression,
bottleneck crossovers, speedup distributions, knob sensitivities, and
cross-architecture taxonomy transfer scoring."""

from repro.analysis.bottleneck_map import (
    BottleneckMap,
    bottleneck_map,
    migration_summary,
)
from repro.analysis.coschedule import (
    NON_SCALING,
    CompositionMatrix,
    class_composition_matrix,
)
from repro.analysis.crossover import (
    CrossoverMap,
    balance_point,
    crossover_map,
)
from repro.analysis.input_scaling import (
    InputScalingPoint,
    InputScalingStudy,
    recovery_by_suite,
    scale_input,
    study_input_scaling,
)
from repro.analysis.pareto import (
    ParetoPoint,
    knee_point,
    pareto_front,
    performance_power_front,
)
from repro.analysis.regression import (
    CategoryRegressionSummary,
    PowerLawFit,
    fit_all,
    fit_kernel,
    summarise_by_category,
)
from repro.analysis.roofline import (
    RooflinePoint,
    attainable_gflops,
    place_kernel,
    ridge_point,
    ridge_trajectory,
    roofline_series,
)
from repro.analysis.sensitivity import (
    SensitivityIndex,
    all_sensitivities,
    dominant_knob_histogram,
    kernel_sensitivity,
    sensitivity_from_features,
)
from repro.analysis.speedup import (
    SpeedupCdf,
    cdf_by_category,
    configuration_ceiling,
    overall_cdf,
    speedup_summary,
)
from repro.analysis.transfer import (
    ConfusionMatrix,
    TransferEvaluation,
    TransferRow,
    confusion_from_labels,
    evaluate_transfer,
    family_taxonomy,
    taxonomy_distributions,
)
from repro.analysis.suite_scaling import (
    KernelScalability,
    SuiteScalability,
    analyse_all_suites,
    analyse_suite,
    kernel_scalability,
    non_scaling_suites,
    useful_cu_histogram,
)

__all__ = [
    "BottleneckMap",
    "CategoryRegressionSummary",
    "CompositionMatrix",
    "ConfusionMatrix",
    "NON_SCALING",
    "class_composition_matrix",
    "TransferEvaluation",
    "TransferRow",
    "InputScalingPoint",
    "InputScalingStudy",
    "RooflinePoint",
    "CrossoverMap",
    "KernelScalability",
    "ParetoPoint",
    "PowerLawFit",
    "SensitivityIndex",
    "SpeedupCdf",
    "SuiteScalability",
    "all_sensitivities",
    "analyse_all_suites",
    "analyse_suite",
    "attainable_gflops",
    "balance_point",
    "bottleneck_map",
    "cdf_by_category",
    "configuration_ceiling",
    "confusion_from_labels",
    "crossover_map",
    "dominant_knob_histogram",
    "evaluate_transfer",
    "family_taxonomy",
    "fit_all",
    "fit_kernel",
    "kernel_scalability",
    "knee_point",
    "kernel_sensitivity",
    "migration_summary",
    "non_scaling_suites",
    "overall_cdf",
    "pareto_front",
    "performance_power_front",
    "place_kernel",
    "recovery_by_suite",
    "ridge_point",
    "ridge_trajectory",
    "roofline_series",
    "scale_input",
    "sensitivity_from_features",
    "speedup_summary",
    "study_input_scaling",
    "summarise_by_category",
    "taxonomy_distributions",
    "useful_cu_histogram",
]
