"""Compute-bound <-> bandwidth-bound crossover localisation.

For kernels near the machine-balance ridge ("balanced" in the
taxonomy), which clock knob matters depends on where in the
(engine, memory) plane the configuration sits: at low engine clock the
kernel is compute-bound; at low memory clock it is bandwidth-bound.
This module maps, for every grid cell, which knob is locally more
profitable, and extracts the crossover frontier — the paper's "where
do the bottlenecks flip" view of the clock plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.sweep.dataset import ScalingDataset


@dataclass(frozen=True)
class CrossoverMap:
    """Per-cell dominant knob over the (engine, memory) plane.

    ``dominance`` holds +1 where raising the engine clock is locally
    more profitable, -1 where raising the memory clock is, and 0 where
    neither moves performance meaningfully (plateau cells).
    """

    kernel_name: str
    cu_count: int
    dominance: np.ndarray
    engine_mhz: Tuple[float, ...]
    memory_mhz: Tuple[float, ...]

    @property
    def compute_bound_fraction(self) -> float:
        """Fraction of the plane where the engine knob dominates."""
        return float(np.mean(self.dominance > 0))

    @property
    def bandwidth_bound_fraction(self) -> float:
        """Fraction of the plane where the memory knob dominates."""
        return float(np.mean(self.dominance < 0))

    @property
    def has_crossover(self) -> bool:
        """True when both regimes appear somewhere in the plane."""
        return self.compute_bound_fraction > 0 and (
            self.bandwidth_bound_fraction > 0
        )

    def frontier(self) -> Optional[Tuple[Tuple[int, int], ...]]:
        """Cells on the compute side adjacent to the bandwidth side.

        Returns ``None`` when the plane has no crossover at all.
        """
        if not self.has_crossover:
            return None
        cells = []
        rows, cols = self.dominance.shape
        for i in range(rows):
            for j in range(cols):
                if self.dominance[i, j] <= 0:
                    continue
                neighbours = [
                    (i + di, j + dj)
                    for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1))
                    if 0 <= i + di < rows and 0 <= j + dj < cols
                ]
                if any(self.dominance[n] < 0 for n in neighbours):
                    cells.append((i, j))
        return tuple(cells)


#: Local elasticities below this are "neither knob helps" (plateau).
PLATEAU_ELASTICITY = 0.05


def crossover_map(
    dataset: ScalingDataset,
    kernel_name: str,
    cu_index: int = -1,
) -> CrossoverMap:
    """Build the dominance map of one kernel at one CU setting.

    Local profitability of a knob at a cell is the forward log-log
    slope toward the next grid state (backward at the axis edge).
    """
    space = dataset.space
    surface = dataset.kernel_cube(kernel_name)[cu_index]
    n_eng, n_mem = surface.shape
    if n_eng < 2 or n_mem < 2:
        raise AnalysisError(
            "crossover analysis needs >= 2 states on both clock axes"
        )

    log_perf = np.log(surface)
    log_eng = np.log(np.asarray(space.engine_mhz))
    log_mem = np.log(np.asarray(space.memory_mhz))

    def forward_slope(values: np.ndarray, knobs: np.ndarray) -> np.ndarray:
        slopes = np.empty_like(values)
        slopes[:-1] = np.diff(values) / np.diff(knobs)
        slopes[-1] = slopes[-2]
        return slopes

    eng_elasticity = np.apply_along_axis(
        forward_slope, 0, log_perf, log_eng
    )
    mem_elasticity = np.apply_along_axis(
        forward_slope, 1, log_perf, log_mem
    )

    dominance = np.zeros(surface.shape, dtype=np.int8)
    engine_wins = eng_elasticity > mem_elasticity
    meaningful = np.maximum(eng_elasticity, mem_elasticity) > (
        PLATEAU_ELASTICITY
    )
    dominance[np.logical_and(engine_wins, meaningful)] = 1
    dominance[np.logical_and(~engine_wins, meaningful)] = -1

    cu_count = space.cu_counts[cu_index]
    return CrossoverMap(
        kernel_name=kernel_name,
        cu_count=int(cu_count),
        dominance=dominance,
        engine_mhz=space.engine_mhz,
        memory_mhz=space.memory_mhz,
    )


def balance_point(
    dataset: ScalingDataset, kernel_name: str, cu_index: int = -1
) -> Optional[Tuple[float, float]]:
    """Representative (engine MHz, memory MHz) of the crossover frontier
    — the centroid of frontier cells — or ``None`` without a crossover."""
    cmap = crossover_map(dataset, kernel_name, cu_index)
    frontier = cmap.frontier()
    if not frontier:
        return None
    eng = float(np.mean([cmap.engine_mhz[i] for i, _ in frontier]))
    mem = float(np.mean([cmap.memory_mhz[j] for _, j in frontier]))
    return eng, mem
