"""Speedup distributions across the configuration space.

Summarises how much performance the full hardware range buys each
kernel — the paper's headline "5x frequency, 8.3x bandwidth, 11x CUs"
knobs jointly offer up to ~55x, and the gap between that ceiling and
what kernels actually achieve is the motivation for the taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.sweep.dataset import ScalingDataset
from repro.sweep.views import end_to_end_speedups
from repro.taxonomy.categories import TaxonomyCategory
from repro.taxonomy.classifier import TaxonomyResult


@dataclass(frozen=True)
class SpeedupCdf:
    """Empirical CDF of end-to-end speedups for one kernel population."""

    population: str
    speedups: Tuple[float, ...]

    @property
    def sorted_speedups(self) -> np.ndarray:
        """Speedups in ascending order (the CDF x-values)."""
        return np.sort(np.asarray(self.speedups))

    @property
    def cdf_y(self) -> np.ndarray:
        """Cumulative fractions matching :attr:`sorted_speedups`."""
        n = len(self.speedups)
        return np.arange(1, n + 1) / n

    def quantile(self, q: float) -> float:
        """The *q*-quantile of the speedup distribution."""
        if not 0.0 <= q <= 1.0:
            raise AnalysisError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(np.asarray(self.speedups), q))

    @property
    def median(self) -> float:
        """Median end-to-end speedup."""
        return self.quantile(0.5)

    def fraction_below(self, threshold: float) -> float:
        """Fraction of kernels gaining less than *threshold*."""
        return float(np.mean(np.asarray(self.speedups) < threshold))


def overall_cdf(dataset: ScalingDataset) -> SpeedupCdf:
    """CDF over every kernel in the dataset."""
    return SpeedupCdf(
        population="all",
        speedups=tuple(float(s) for s in end_to_end_speedups(dataset)),
    )


def cdf_by_category(
    dataset: ScalingDataset, taxonomy: TaxonomyResult
) -> Dict[TaxonomyCategory, SpeedupCdf]:
    """One CDF per (non-empty) taxonomy category."""
    speedups = end_to_end_speedups(dataset)
    name_to_speedup = dict(zip(dataset.kernel_names, speedups))
    result: Dict[TaxonomyCategory, SpeedupCdf] = {}
    for category in TaxonomyCategory:
        members = taxonomy.kernels_in(category)
        if not members:
            continue
        result[category] = SpeedupCdf(
            population=category.value,
            speedups=tuple(
                float(name_to_speedup[name]) for name in members
            ),
        )
    return result


def configuration_ceiling(dataset: ScalingDataset) -> float:
    """The joint knob range: max over min peak capability ratio.

    On the paper grid this is 11 x 5 = 55 for compute capability and
    8.33 for bandwidth; we report the compute ceiling, the larger of
    the two, as the theoretical upper bound any kernel could reach.
    """
    cu_ratio, eng_ratio, mem_ratio = dataset.space.axis_ranges
    return max(cu_ratio * eng_ratio, mem_ratio)


def speedup_summary(
    dataset: ScalingDataset, taxonomy: TaxonomyResult
) -> Dict[str, float]:
    """Headline numbers: ceiling, overall median, per-family medians."""
    cdf = overall_cdf(dataset)
    by_cat = cdf_by_category(dataset, taxonomy)
    summary = {
        "ceiling": configuration_ceiling(dataset),
        "overall_median": cdf.median,
        "overall_p90": cdf.quantile(0.9),
        "fraction_below_2x": cdf.fraction_below(2.0),
    }
    for category, category_cdf in by_cat.items():
        summary[f"median_{category.value}"] = category_cdf.median
    return summary
