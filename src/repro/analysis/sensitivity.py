"""Per-axis sensitivity indices.

A compact answer to "which knob should this kernel's user buy?": the
share of a kernel's (log-space) responsiveness attributable to each
knob. Sensitivities are computed from the axis elasticities, normalised
to sum to 1 for responsive kernels; fully unresponsive kernels get all
zeros (buying any knob is wasted money — the plateau class).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.sweep.dataset import ScalingDataset
from repro.taxonomy.features import ScalingFeatures, extract_features

#: Elasticities below this count as zero (noise floor).
ELASTICITY_FLOOR = 0.02


@dataclass(frozen=True)
class SensitivityIndex:
    """Normalised per-knob sensitivity of one kernel (sums to 1 or 0)."""

    kernel_name: str
    cu: float
    engine: float
    memory: float

    @property
    def as_tuple(self) -> Tuple[float, float, float]:
        """(CU, engine, memory) shares."""
        return (self.cu, self.engine, self.memory)

    @property
    def dominant_knob(self) -> str:
        """The knob with the largest share ('none' for plateaus)."""
        shares = {
            "cu": self.cu,
            "engine": self.engine,
            "memory": self.memory,
        }
        best = max(shares, key=shares.__getitem__)
        return best if shares[best] > 0.0 else "none"

    @property
    def is_unresponsive(self) -> bool:
        """True when no knob moves the kernel at all."""
        return self.cu == self.engine == self.memory == 0.0


def sensitivity_from_features(
    features: ScalingFeatures,
) -> SensitivityIndex:
    """Compute the index from already-extracted features."""
    raw = np.array(
        [
            features.cu.elasticity,
            features.engine.elasticity,
            features.memory.elasticity,
        ]
    )
    raw = np.where(raw < ELASTICITY_FLOOR, 0.0, raw)
    total = raw.sum()
    shares = raw / total if total > 0 else raw
    return SensitivityIndex(
        kernel_name=features.kernel_name,
        cu=float(shares[0]),
        engine=float(shares[1]),
        memory=float(shares[2]),
    )


def kernel_sensitivity(
    dataset: ScalingDataset, kernel_name: str
) -> SensitivityIndex:
    """Sensitivity index of one kernel."""
    return sensitivity_from_features(extract_features(dataset, kernel_name))


def all_sensitivities(
    dataset: ScalingDataset,
) -> Dict[str, SensitivityIndex]:
    """Sensitivity indices for every kernel, keyed by full name."""
    return {
        name: kernel_sensitivity(dataset, name)
        for name in dataset.kernel_names
    }


def dominant_knob_histogram(dataset: ScalingDataset) -> Dict[str, int]:
    """How many kernels each knob dominates (plus 'none')."""
    histogram = {"cu": 0, "engine": 0, "memory": 0, "none": 0}
    for index in all_sensitivities(dataset).values():
        histogram[index.dominant_knob] += 1
    return histogram
