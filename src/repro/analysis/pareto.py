"""Pareto-frontier utilities over the configuration space.

Provisioning questions rarely have a single answer: a buyer trades
performance against power (or cost) and wants the *frontier* — every
configuration not dominated on both axes. These helpers extract
per-kernel frontiers from performance and cost surfaces, the structure
behind the design-space-exploration example and the energy analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.gpu.config import HardwareConfig
from repro.power.energy import EnergyModel
from repro.sweep.dataset import ScalingDataset


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated configuration."""

    config: HardwareConfig
    performance: float
    cost: float

    @property
    def value(self) -> float:
        """Performance per unit cost."""
        return self.performance / self.cost


def pareto_front(
    points: Sequence[Tuple[HardwareConfig, float, float]],
) -> List[ParetoPoint]:
    """Non-dominated subset of (config, performance, cost) triples.

    A point dominates another when it has >= performance at <= cost
    with at least one strict inequality. The result is sorted by cost
    ascending (and therefore performance ascending: any non-monotone
    step would be dominated).
    """
    if not points:
        raise AnalysisError("pareto_front needs at least one point")
    ordered = sorted(points, key=lambda p: (p[2], -p[1]))
    front: List[ParetoPoint] = []
    best_perf = -np.inf
    for config, performance, cost in ordered:
        if performance > best_perf:
            front.append(
                ParetoPoint(
                    config=config, performance=performance, cost=cost
                )
            )
            best_perf = performance
    return front


def performance_power_front(
    dataset: ScalingDataset,
    kernel_name: str,
    energy_model: Optional[EnergyModel] = None,
) -> List[ParetoPoint]:
    """The (performance, board power) frontier of one measured kernel.

    Power is evaluated with the kernel's own activity factors at each
    configuration, so an idle memory interface is not charged.
    """
    from repro.suites import kernel_by_name

    energy_model = energy_model or EnergyModel()
    kernel = kernel_by_name(kernel_name)
    cube = dataset.kernel_cube(kernel_name)
    space = dataset.space

    points = []
    n_cu, n_eng, n_mem = space.shape
    for c in range(n_cu):
        for e in range(n_eng):
            for m in range(n_mem):
                config = space.config(c, e, m)
                result = energy_model.evaluate(kernel, config)
                points.append(
                    (config, float(cube[c, e, m]), result.power_w)
                )
    return pareto_front(points)


def knee_point(front: Sequence[ParetoPoint]) -> ParetoPoint:
    """The frontier's knee: maximum perpendicular distance from the
    chord between the frontier's endpoints (normalised axes).

    The knee is the classic "sweet spot" recommendation — beyond it,
    each extra watt buys visibly less performance.
    """
    if not front:
        raise AnalysisError("knee_point needs a non-empty frontier")
    if len(front) <= 2:
        return front[0]
    perf = np.array([p.performance for p in front])
    cost = np.array([p.cost for p in front])
    perf_n = (perf - perf.min()) / max(perf.max() - perf.min(), 1e-12)
    cost_n = (cost - cost.min()) / max(cost.max() - cost.min(), 1e-12)
    # Distance from the line through (0,0) and (1,1): |p - c| / sqrt(2).
    distance = perf_n - cost_n
    return front[int(np.argmax(distance))]
