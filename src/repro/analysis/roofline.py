"""Roofline-model utilities.

The roofline is the one-picture summary of the compute-vs-bandwidth
story the taxonomy tells over three axes: attainable performance is
``min(peak FLOP/s, intensity x peak bandwidth)``, and the *ridge point*
(the machine balance) moves as the knobs move — which is exactly why
one kernel's bottleneck migrates across the 891-configuration space.

These helpers place kernels on the roofline of any configuration and
expose the ridge trajectory over the clock plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.gpu.config import HardwareConfig
from repro.gpu.simulator import GpuSimulator
from repro.kernels.kernel import Kernel


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on one configuration's roofline."""

    kernel_name: str
    arithmetic_intensity: float
    achieved_gflops: float
    attainable_gflops: float
    peak_gflops: float

    @property
    def efficiency(self) -> float:
        """Achieved over attainable performance at this intensity."""
        return self.achieved_gflops / self.attainable_gflops

    @property
    def is_memory_side(self) -> bool:
        """True when the kernel sits left of the ridge point
        (bandwidth-limited region of the roofline)."""
        return self.attainable_gflops < self.peak_gflops


def attainable_gflops(
    config: HardwareConfig, intensity: float
) -> float:
    """Roofline-attainable GFLOP/s at *intensity* (FLOP per DRAM byte)."""
    bandwidth_bound = intensity * config.peak_dram_bytes_per_sec / 1e9
    return min(config.peak_gflops, bandwidth_bound)


def roofline_series(
    config: HardwareConfig,
    intensities: Sequence[float] = tuple(
        2.0 ** e for e in range(-4, 10)
    ),
) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """(intensity, attainable GFLOP/s) series for plotting."""
    xs = tuple(float(i) for i in intensities)
    ys = tuple(attainable_gflops(config, i) for i in xs)
    return xs, ys


def ridge_point(config: HardwareConfig) -> float:
    """Machine balance: the intensity where both roofs meet."""
    return config.peak_gflops * 1e9 / config.peak_dram_bytes_per_sec


def place_kernel(
    kernel: Kernel,
    config: HardwareConfig,
    simulator: GpuSimulator = None,
) -> RooflinePoint:
    """Place *kernel* on *config*'s roofline using modelled DRAM traffic.

    Operational intensity uses the traffic that actually reaches DRAM
    (post-cache), matching how measured rooflines are built from
    memory-controller counters.
    """
    simulator = simulator or GpuSimulator()
    result = simulator.simulate(kernel, config)
    ch = kernel.characteristics
    total_flops = kernel.geometry.global_size * ch.valu_ops_per_item
    dram_bytes = max(result.dram_bytes, 1.0)
    intensity = total_flops / dram_bytes
    achieved = total_flops / result.time_s / 1e9
    return RooflinePoint(
        kernel_name=kernel.full_name,
        arithmetic_intensity=intensity,
        achieved_gflops=achieved,
        attainable_gflops=attainable_gflops(config, intensity),
        peak_gflops=config.peak_gflops,
    )


def ridge_trajectory(
    cu_count: int,
    engine_mhz_values: Sequence[float],
    memory_mhz_values: Sequence[float],
) -> np.ndarray:
    """Ridge-point intensity over the (engine, memory) clock plane.

    The returned grid has shape (len(engine), len(memory)); its spread
    quantifies how far the bottleneck boundary travels across the
    sweep — the mechanism behind the taxonomy's "balanced" class.
    """
    grid = np.empty(
        (len(engine_mhz_values), len(memory_mhz_values)),
        dtype=np.float64,
    )
    for i, engine in enumerate(engine_mhz_values):
        for j, memory in enumerate(memory_mhz_values):
            grid[i, j] = ridge_point(
                HardwareConfig(cu_count, engine, memory)
            )
    return grid
