"""Benchmark-suite scalability critique.

The paper's final finding: "a number of current benchmark suites do
not scale to modern GPU sizes, implying that either new benchmarks or
new inputs are warranted." This module quantifies that claim: for each
kernel, the smallest CU count that already delivers (nearly) all the
performance the kernel will ever get — its *useful CU count* — and
per-suite aggregates of how much of a 44-CU device each suite can
exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.errors import AnalysisError
from repro.sweep.dataset import ScalingDataset
from repro.sweep.views import Axis, axis_slice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.taxonomy.classifier import TaxonomyResult

#: A CU count is "useful" until performance reaches this fraction of
#: the kernel's best point on the CU axis.
USEFUL_THRESHOLD = 0.95


@dataclass(frozen=True)
class KernelScalability:
    """CU-axis scalability of one kernel."""

    kernel_name: str
    useful_cus: int
    max_cus: int
    cu_gain: float

    @property
    def scales_to_full_device(self) -> bool:
        """True when the kernel keeps gaining to the last CU setting."""
        return self.useful_cus >= self.max_cus

    @property
    def utilised_fraction(self) -> float:
        """Useful CUs relative to the device size."""
        return self.useful_cus / self.max_cus


@dataclass(frozen=True)
class SuiteScalability:
    """Aggregated CU scalability of one suite.

    Two complementary views feed the paper's critique:

    * the *useful-CU* statistics (descriptive): where each kernel's CU
      curve stops paying off, whatever the reason — this includes
      bandwidth-bound kernels whose CU saturation is a property of the
      hardware balance, not of the benchmark;
    * the *parallelism-starved fraction* (the verdict, when a taxonomy
      is supplied): kernels whose scaling dies because the benchmark
      itself offers too little work (``PARALLELISM_LIMITED``) or too
      little runtime (``PLATEAU``). Inputs, not silicon, are the fix —
      the paper's "new benchmarks or new inputs are warranted".
    """

    suite: str
    kernel_count: int
    median_useful_cus: float
    mean_useful_cus: float
    fraction_scaling_to_full: float
    fraction_stalled_by_half: float
    fraction_parallelism_starved: Optional[float] = None

    @property
    def scales_to_modern_gpus(self) -> bool:
        """The paper's pass/fail question for a suite.

        With a taxonomy available: a suite fails when a quarter or more
        of its kernels are starved of work — results gathered with such
        a suite systematically under-exercise a 44-CU device. Without a
        taxonomy, fall back to the purely curve-based criterion (at
        least half the kernels still gaining at full device size).
        """
        if self.fraction_parallelism_starved is not None:
            return self.fraction_parallelism_starved < 0.25
        return self.fraction_scaling_to_full >= 0.5


def kernel_scalability(
    dataset: ScalingDataset, kernel_name: str
) -> KernelScalability:
    """Useful-CU analysis of one kernel (clocks pinned at maximum)."""
    slice_ = axis_slice(dataset, kernel_name, Axis.CU)
    speedup = np.asarray(slice_.speedup)
    peak = speedup.max()
    useful_index = int(np.argmax(speedup >= USEFUL_THRESHOLD * peak))
    cu_counts = dataset.space.cu_counts
    return KernelScalability(
        kernel_name=kernel_name,
        useful_cus=int(cu_counts[useful_index]),
        max_cus=int(cu_counts[-1]),
        cu_gain=float(slice_.gain),
    )


def analyse_suite(
    dataset: ScalingDataset,
    suite: str,
    taxonomy: Optional["TaxonomyResult"] = None,
) -> SuiteScalability:
    """Aggregate the scalability of one suite.

    Pass the dataset's taxonomy to enable the parallelism-starved
    verdict (recommended — see :class:`SuiteScalability`).
    """
    rows = dataset.rows_for_suite(suite)
    if not rows:
        raise AnalysisError(f"dataset has no kernels for suite {suite!r}")
    records = [dataset.kernel_records[i] for i in rows]
    per_kernel = [
        kernel_scalability(dataset, record.full_name) for record in records
    ]
    useful = np.array([k.useful_cus for k in per_kernel], dtype=np.float64)
    max_cus = per_kernel[0].max_cus

    starved_fraction = None
    if taxonomy is not None:
        from repro.taxonomy.categories import TaxonomyCategory

        starved_categories = (
            TaxonomyCategory.PARALLELISM_LIMITED,
            TaxonomyCategory.PLATEAU,
        )
        starved = sum(
            1
            for record in records
            if taxonomy.label_for(record.full_name).category
            in starved_categories
        )
        starved_fraction = starved / len(records)

    return SuiteScalability(
        suite=suite,
        kernel_count=len(per_kernel),
        median_useful_cus=float(np.median(useful)),
        mean_useful_cus=float(useful.mean()),
        fraction_scaling_to_full=float(
            np.mean([k.scales_to_full_device for k in per_kernel])
        ),
        fraction_stalled_by_half=float(np.mean(useful <= max_cus / 2)),
        fraction_parallelism_starved=starved_fraction,
    )


def analyse_all_suites(
    dataset: ScalingDataset,
    taxonomy: Optional["TaxonomyResult"] = None,
) -> Dict[str, SuiteScalability]:
    """Per-suite scalability for every suite in the dataset."""
    return {
        suite: analyse_suite(dataset, suite, taxonomy)
        for suite in dataset.suites()
    }


def useful_cu_histogram(
    dataset: ScalingDataset,
) -> Dict[int, int]:
    """How many kernels stop being helped at each CU setting."""
    histogram: Dict[int, int] = {
        int(c): 0 for c in dataset.space.cu_counts
    }
    for name in dataset.kernel_names:
        histogram[kernel_scalability(dataset, name).useful_cus] += 1
    return histogram


def non_scaling_suites(
    dataset: ScalingDataset,
    taxonomy: Optional["TaxonomyResult"] = None,
) -> List[str]:
    """Suites failing the paper's modern-GPU scalability bar."""
    return [
        suite
        for suite, result in analyse_all_suites(dataset, taxonomy).items()
        if not result.scales_to_modern_gpus
    ]
