"""Exception hierarchy for the GPGPU scaling-taxonomy reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the library can catch a single base class. Subclasses
partition failures by subsystem: hardware-model configuration, workload
definition, sweep/dataset handling, and taxonomy classification.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid hardware configuration or configuration space.

    Raised when a :class:`~repro.gpu.config.HardwareConfig` (or the sweep
    grid built from them) violates a physical or product constraint,
    e.g. zero compute units or a memory clock outside the supported
    DVFS range.
    """


class WorkloadError(ReproError):
    """An invalid kernel or launch-geometry definition.

    Raised when :class:`~repro.kernels.characteristics.KernelCharacteristics`
    or :class:`~repro.kernels.kernel.LaunchGeometry` contain values that
    cannot describe a real kernel (negative operation counts, zero-sized
    workgroups, occupancy-impossible resource usage, ...).
    """


class SuiteError(ReproError):
    """A benchmark-suite catalog inconsistency.

    Raised when a suite definition breaks catalog invariants such as
    duplicate program names or an empty kernel list.
    """


class DatasetError(ReproError):
    """A malformed or inconsistent scaling dataset.

    Raised on shape mismatches between the performance tensor and its
    kernel/configuration metadata, and on failed (de)serialisation.
    """


class SimulationError(ReproError):
    """One kernel's simulation failed or produced corrupt output.

    Structured so a sweep campaign can attribute the failure: carries
    the offending kernel's full name and a short reason. Non-strict
    sweeps quarantine the kernel row (NaN-filled, recorded on the
    dataset) instead of aborting; strict sweeps re-raise this error.
    """

    def __init__(self, kernel_name: str, reason: str):
        super().__init__(
            f"simulation of {kernel_name!r} failed: {reason}"
        )
        self.kernel_name = kernel_name
        self.reason = reason


class CampaignError(ReproError):
    """A sweep-campaign journal problem.

    Raised when a resume is attempted against a journal written by a
    different campaign (fingerprint mismatch) or when a journal shard
    is missing or inconsistent with its manifest.
    """


class ClassificationError(ReproError):
    """A taxonomy-classification failure.

    Raised when scaling features cannot be extracted (e.g. an axis slice
    with fewer than two points) or a label cannot be derived.
    """


class AnalysisError(ReproError):
    """An analysis-stage failure (regression, crossover, suite study)."""
