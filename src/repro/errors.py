"""Exception hierarchy for the GPGPU scaling-taxonomy reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the library can catch a single base class. Subclasses
partition failures by subsystem: hardware-model configuration, workload
definition, sweep/dataset handling, and taxonomy classification.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid hardware configuration or configuration space.

    Raised when a :class:`~repro.gpu.config.HardwareConfig` (or the sweep
    grid built from them) violates a physical or product constraint,
    e.g. zero compute units or a memory clock outside the supported
    DVFS range.
    """


class WorkloadError(ReproError):
    """An invalid kernel or launch-geometry definition.

    Raised when :class:`~repro.kernels.characteristics.KernelCharacteristics`
    or :class:`~repro.kernels.kernel.LaunchGeometry` contain values that
    cannot describe a real kernel (negative operation counts, zero-sized
    workgroups, occupancy-impossible resource usage, ...).
    """


class SuiteError(ReproError):
    """A benchmark-suite catalog inconsistency.

    Raised when a suite definition breaks catalog invariants such as
    duplicate program names or an empty kernel list.
    """


class DatasetError(ReproError):
    """A malformed or inconsistent scaling dataset.

    Raised on shape mismatches between the performance tensor and its
    kernel/configuration metadata, and on failed (de)serialisation.
    """


class ClassificationError(ReproError):
    """A taxonomy-classification failure.

    Raised when scaling features cannot be extracted (e.g. an axis slice
    with fewer than two points) or a label cannot be derived.
    """


class AnalysisError(ReproError):
    """An analysis-stage failure (regression, crossover, suite study)."""
