"""Data-collection harness: configuration space, sweep runner, dataset,
axis views, fault-tolerant campaigns, and fault injection."""

from repro.sweep.cache import (
    SweepCache,
    cached_paper_dataset,
    fingerprint_blob,
    sweep_fingerprint,
)
from repro.sweep.campaign import CampaignReport, CampaignRunner
from repro.sweep.dataset import KernelRecord, ScalingDataset
from repro.sweep.faults import FaultKind, FaultSpec, FaultyEngine
from repro.sweep.noise import NoiseModel, perturb
from repro.sweep.parallel import ParallelSweepRunner, SupervisionStats
from repro.sweep.runner import SweepRunner, collect_paper_dataset
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace, reduced_space
from repro.sweep.views import (
    Axis,
    AxisSlice,
    axis_slice,
    axis_values,
    clock_surface,
    end_to_end_speedups,
    normalised_cube,
)

__all__ = [
    "Axis",
    "AxisSlice",
    "CampaignReport",
    "CampaignRunner",
    "ConfigurationSpace",
    "FaultKind",
    "FaultSpec",
    "FaultyEngine",
    "KernelRecord",
    "NoiseModel",
    "PAPER_SPACE",
    "ParallelSweepRunner",
    "ScalingDataset",
    "SupervisionStats",
    "SweepCache",
    "SweepRunner",
    "axis_slice",
    "axis_values",
    "cached_paper_dataset",
    "clock_surface",
    "collect_paper_dataset",
    "fingerprint_blob",
    "sweep_fingerprint",
    "end_to_end_speedups",
    "normalised_cube",
    "perturb",
    "reduced_space",
]
