"""The scaling dataset: a (kernels x CU x engine x memory) tensor.

:class:`ScalingDataset` is the hand-off point between data collection
(:mod:`repro.sweep.runner`) and everything downstream (taxonomy,
analysis, reporting). Performance is stored as work-items/second — the
study only ever interprets performance *relative* to other points of
the same kernel, so any throughput unit works as long as it is
consistent per kernel.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.errors import DatasetError
from repro.sweep.space import ConfigurationSpace


@dataclass(frozen=True)
class KernelRecord:
    """Identity of one kernel row in the dataset."""

    full_name: str
    suite: str
    program: str
    kernel: str

    @classmethod
    def from_full_name(cls, full_name: str) -> "KernelRecord":
        """Parse a ``suite/program.kernel`` identifier."""
        suite, _, rest = full_name.partition("/")
        if not rest:
            suite, rest = "", full_name
        program, _, kernel = rest.partition(".")
        if not kernel:
            raise DatasetError(
                f"cannot parse kernel identifier {full_name!r}"
            )
        return cls(
            full_name=full_name, suite=suite, program=program, kernel=kernel
        )


class ScalingDataset:
    """Performance of every kernel at every configuration.

    ``perf`` has shape ``(n_kernels, n_cu, n_eng, n_mem)`` and holds
    work-items/second. Rows follow the catalog's canonical kernel
    order; configuration axes follow the space's axis order.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        kernel_records: Sequence[KernelRecord],
        perf: np.ndarray,
    ):
        expected_shape = (len(kernel_records),) + space.shape
        if perf.shape != expected_shape:
            raise DatasetError(
                f"perf shape {perf.shape} does not match "
                f"{len(kernel_records)} kernels x space {space.shape}"
            )
        if not np.all(np.isfinite(perf)):
            raise DatasetError("perf contains non-finite values")
        if np.any(perf <= 0):
            raise DatasetError("perf must be strictly positive")
        self._space = space
        self._records = tuple(kernel_records)
        self._perf = perf.astype(np.float64, copy=False)
        self._index = {r.full_name: i for i, r in enumerate(self._records)}
        if len(self._index) != len(self._records):
            raise DatasetError("duplicate kernel names in dataset")

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def space(self) -> ConfigurationSpace:
        """The configuration grid this dataset was collected on."""
        return self._space

    @property
    def kernel_records(self) -> Tuple[KernelRecord, ...]:
        """Per-row kernel identities."""
        return self._records

    @property
    def kernel_names(self) -> List[str]:
        """Full names in row order."""
        return [r.full_name for r in self._records]

    @property
    def num_kernels(self) -> int:
        """Number of kernel rows."""
        return len(self._records)

    @property
    def perf(self) -> np.ndarray:
        """The full tensor, shape (kernels, cu, engine, memory)."""
        return self._perf

    def row_index(self, kernel_name: str) -> int:
        """Row of *kernel_name*; raises :class:`DatasetError`."""
        try:
            return self._index[kernel_name]
        except KeyError:
            raise DatasetError(
                f"dataset has no kernel {kernel_name!r}"
            ) from None

    def kernel_cube(self, kernel_name: str) -> np.ndarray:
        """One kernel's (cu, engine, memory) performance cube."""
        return self._perf[self.row_index(kernel_name)]

    def suites(self) -> List[str]:
        """Distinct suite names in row order of first appearance."""
        seen: Dict[str, None] = {}
        for record in self._records:
            seen.setdefault(record.suite, None)
        return list(seen)

    def rows_for_suite(self, suite: str) -> List[int]:
        """Row indices belonging to *suite*."""
        return [
            i for i, r in enumerate(self._records) if r.suite == suite
        ]

    def subset(self, kernel_names: Sequence[str]) -> "ScalingDataset":
        """A new dataset restricted to *kernel_names* (order preserved)."""
        rows = [self.row_index(name) for name in kernel_names]
        return ScalingDataset(
            self._space,
            [self._records[i] for i in rows],
            self._perf[rows],
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Write the dataset as ``.npz`` (tensor + JSON metadata)."""
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(".npz")
        metadata = {
            "space": self._space.to_dict(),
            "kernels": [r.full_name for r in self._records],
        }
        np.savez_compressed(
            path,
            perf=self._perf,
            metadata=np.array(json.dumps(metadata)),
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScalingDataset":
        """Read a dataset written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise DatasetError(f"no dataset at {path}")
        try:
            with np.load(path, allow_pickle=False) as archive:
                perf = archive["perf"]
                metadata = json.loads(str(archive["metadata"]))
        except (KeyError, ValueError, json.JSONDecodeError) as exc:
            raise DatasetError(f"malformed dataset at {path}: {exc}") from exc
        space = ConfigurationSpace.from_dict(metadata["space"])
        records = [
            KernelRecord.from_full_name(name) for name in metadata["kernels"]
        ]
        return cls(space, records, perf)

    def export_csv(self, path: Union[str, Path]) -> Path:
        """Write one row per (kernel, configuration) in long format.

        Columns: suite, program, kernel, cu_count, engine_mhz,
        memory_mhz, items_per_second.
        """
        path = Path(path)
        n_cu, n_eng, n_mem = self._space.shape
        with open(path, "w") as handle:
            handle.write(
                "suite,program,kernel,cu_count,engine_mhz,memory_mhz,"
                "items_per_second\n"
            )
            for row, record in enumerate(self._records):
                for c in range(n_cu):
                    for e in range(n_eng):
                        for m in range(n_mem):
                            handle.write(
                                f"{record.suite},{record.program},"
                                f"{record.kernel},"
                                f"{self._space.cu_counts[c]},"
                                f"{self._space.engine_mhz[e]:g},"
                                f"{self._space.memory_mhz[m]:g},"
                                f"{self._perf[row, c, e, m]:.6g}\n"
                            )
        return path
