"""The scaling dataset: a (kernels x CU x engine x memory) tensor.

:class:`ScalingDataset` is the hand-off point between data collection
(:mod:`repro.sweep.runner`) and everything downstream (taxonomy,
analysis, reporting). Performance is stored as work-items/second — the
study only ever interprets performance *relative* to other points of
the same kernel, so any throughput unit works as long as it is
consistent per kernel.

Integrity is enforced at the boundary: every healthy kernel row must be
finite and strictly positive, both at construction and on
:meth:`ScalingDataset.load`, so a corrupted campaign cannot silently
flow into classification. Rows that a fault-tolerant sweep explicitly
*quarantined* (see :mod:`repro.sweep.campaign`) are the one exception —
they are NaN-filled by construction, carry their failure cause, and can
be dropped with :meth:`ScalingDataset.healthy`.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.atomic import atomic_path
from repro.errors import DatasetError
from repro.sweep.space import ConfigurationSpace


@dataclass(frozen=True)
class KernelRecord:
    """Identity of one kernel row in the dataset."""

    full_name: str
    suite: str
    program: str
    kernel: str

    @classmethod
    def from_full_name(cls, full_name: str) -> "KernelRecord":
        """Parse a ``suite/program.kernel`` identifier."""
        suite, _, rest = full_name.partition("/")
        if not rest:
            suite, rest = "", full_name
        program, _, kernel = rest.partition(".")
        if not kernel:
            raise DatasetError(
                f"cannot parse kernel identifier {full_name!r}"
            )
        return cls(
            full_name=full_name, suite=suite, program=program, kernel=kernel
        )


def _name_list(names: Sequence[str], limit: int = 5) -> str:
    shown = ", ".join(names[:limit])
    if len(names) > limit:
        shown += f", ... ({len(names)} total)"
    return shown


class ScalingDataset:
    """Performance of every kernel at every configuration.

    ``perf`` has shape ``(n_kernels, n_cu, n_eng, n_mem)`` and holds
    work-items/second. Rows follow the catalog's canonical kernel
    order; configuration axes follow the space's axis order.

    *quarantined* maps kernel full names to failure causes for rows a
    fault-tolerant sweep NaN-filled instead of aborting on; all other
    rows must be finite and strictly positive.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        kernel_records: Sequence[KernelRecord],
        perf: np.ndarray,
        quarantined: Optional[Mapping[str, str]] = None,
    ):
        expected_shape = (len(kernel_records),) + space.shape
        if perf.shape != expected_shape:
            raise DatasetError(
                f"perf shape {perf.shape} does not match "
                f"{len(kernel_records)} kernels x space {space.shape}"
            )
        self._space = space
        self._records = tuple(kernel_records)
        self._perf = perf.astype(np.float64, copy=False)
        self._index = {r.full_name: i for i, r in enumerate(self._records)}
        if len(self._index) != len(self._records):
            raise DatasetError("duplicate kernel names in dataset")
        self._quarantined = {
            str(name): str(cause)
            for name, cause in (quarantined or {}).items()
        }
        unknown = sorted(set(self._quarantined) - set(self._index))
        if unknown:
            raise DatasetError(
                "quarantine list names kernels absent from the dataset: "
                + _name_list(unknown)
            )
        self.validate()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def space(self) -> ConfigurationSpace:
        """The configuration grid this dataset was collected on."""
        return self._space

    @property
    def kernel_records(self) -> Tuple[KernelRecord, ...]:
        """Per-row kernel identities."""
        return self._records

    @property
    def kernel_names(self) -> List[str]:
        """Full names in row order."""
        return [r.full_name for r in self._records]

    @property
    def num_kernels(self) -> int:
        """Number of kernel rows."""
        return len(self._records)

    @property
    def perf(self) -> np.ndarray:
        """The full tensor, shape (kernels, cu, engine, memory)."""
        return self._perf

    @property
    def quarantined(self) -> Dict[str, str]:
        """Kernel full name -> failure cause for quarantined rows."""
        return dict(self._quarantined)

    def row_index(self, kernel_name: str) -> int:
        """Row of *kernel_name*; raises :class:`DatasetError`."""
        try:
            return self._index[kernel_name]
        except KeyError:
            raise DatasetError(
                f"dataset has no kernel {kernel_name!r}"
            ) from None

    def kernel_cube(self, kernel_name: str) -> np.ndarray:
        """One kernel's (cu, engine, memory) performance cube."""
        return self._perf[self.row_index(kernel_name)]

    def suites(self) -> List[str]:
        """Distinct suite names in row order of first appearance."""
        seen: Dict[str, None] = {}
        for record in self._records:
            seen.setdefault(record.suite, None)
        return list(seen)

    def rows_for_suite(self, suite: str) -> List[int]:
        """Row indices belonging to *suite*."""
        return [
            i for i, r in enumerate(self._records) if r.suite == suite
        ]

    def subset(self, kernel_names: Sequence[str]) -> "ScalingDataset":
        """A new dataset restricted to *kernel_names* (order preserved)."""
        rows = [self.row_index(name) for name in kernel_names]
        return ScalingDataset(
            self._space,
            [self._records[i] for i in rows],
            self._perf[rows],
            quarantined={
                name: self._quarantined[name]
                for name in kernel_names
                if name in self._quarantined
            },
        )

    def healthy(self) -> "ScalingDataset":
        """A new dataset with every quarantined row dropped."""
        if not self._quarantined:
            return self
        names = [
            n for n in self.kernel_names if n not in self._quarantined
        ]
        if not names:
            raise DatasetError("every kernel row is quarantined")
        return self.subset(names)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def validate(self) -> "ScalingDataset":
        """Check integrity invariants; returns ``self`` for chaining.

        Healthy rows must be finite and strictly positive; quarantined
        rows must be entirely NaN. Violations raise
        :class:`DatasetError` naming the offending kernel rows.
        """
        non_finite: List[str] = []
        non_positive: List[str] = []
        not_nan_filled: List[str] = []
        for i, record in enumerate(self._records):
            row = self._perf[i]
            if record.full_name in self._quarantined:
                if not np.all(np.isnan(row)):
                    not_nan_filled.append(record.full_name)
            elif not np.all(np.isfinite(row)):
                non_finite.append(record.full_name)
            elif np.any(row <= 0):
                non_positive.append(record.full_name)
        if non_finite:
            raise DatasetError(
                "perf contains non-finite values in kernel rows: "
                + _name_list(non_finite)
                + " (quarantine the rows to permit NaN)"
            )
        if non_positive:
            raise DatasetError(
                "perf must be strictly positive; offending kernel rows: "
                + _name_list(non_positive)
            )
        if not_nan_filled:
            raise DatasetError(
                "quarantined kernel rows must be NaN-filled: "
                + _name_list(not_nan_filled)
            )
        return self

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Write the dataset as ``.npz`` (tensor + JSON metadata).

        The write is atomic: an interruption leaves any previous file
        at *path* untouched rather than a truncated archive.
        """
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(".npz")
        metadata = {
            "space": self._space.to_dict(),
            "kernels": [r.full_name for r in self._records],
            "quarantined": self._quarantined,
        }
        with atomic_path(path) as tmp:
            with open(tmp, "wb") as handle:
                np.savez_compressed(
                    handle,
                    perf=self._perf,
                    metadata=np.array(json.dumps(metadata)),
                )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScalingDataset":
        """Read a dataset written by :meth:`save` (re-validated)."""
        path = Path(path)
        if not path.exists():
            raise DatasetError(f"no dataset at {path}")
        try:
            with np.load(path, allow_pickle=False) as archive:
                perf = archive["perf"]
                metadata = json.loads(str(archive["metadata"]))
        except (
            KeyError,
            ValueError,
            json.JSONDecodeError,
            EOFError,
            zipfile.BadZipFile,
            OSError,
        ) as exc:
            # Truncated, garbage, or non-zip bytes surface from np.load
            # as any of these; all mean "not a dataset".
            raise DatasetError(f"malformed dataset at {path}: {exc}") from exc
        space = ConfigurationSpace.from_dict(metadata["space"])
        records = [
            KernelRecord.from_full_name(name) for name in metadata["kernels"]
        ]
        return cls(
            space, records, perf,
            quarantined=metadata.get("quarantined"),
        )

    def export_csv(self, path: Union[str, Path]) -> Path:
        """Write one row per (kernel, configuration) in long format.

        Columns: suite, program, kernel, cu_count, engine_mhz,
        memory_mhz, items_per_second. Quarantined rows export as
        ``nan``. The write is atomic (temp file + rename).
        """
        path = Path(path)
        n_cu, n_eng, n_mem = self._space.shape
        with atomic_path(path) as tmp:
            with open(tmp, "w") as handle:
                handle.write(
                    "suite,program,kernel,cu_count,engine_mhz,memory_mhz,"
                    "items_per_second\n"
                )
                for row, record in enumerate(self._records):
                    for c in range(n_cu):
                        for e in range(n_eng):
                            for m in range(n_mem):
                                handle.write(
                                    f"{record.suite},{record.program},"
                                    f"{record.kernel},"
                                    f"{self._space.cu_counts[c]},"
                                    f"{self._space.engine_mhz[e]:g},"
                                    f"{self._space.memory_mhz[m]:g},"
                                    f"{self._perf[row, c, e, m]:.6g}\n"
                                )
        return path
