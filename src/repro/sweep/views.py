"""Axis views over a scaling dataset.

The taxonomy reads three one-dimensional slices per kernel — vary one
knob, pin the other two (by default at their maxima, matching the
paper's presentation) — plus the (engine, memory) surface used for the
plateau analysis. All views return *normalised speedups* relative to
the slice's first point, which is the representation every downstream
feature works on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.sweep.dataset import ScalingDataset


class Axis(Enum):
    """The three swept hardware knobs."""

    CU = "cu"
    ENGINE = "engine"
    MEMORY = "memory"


#: Tensor dimension of each axis within a kernel cube.
_AXIS_DIM = {Axis.CU: 0, Axis.ENGINE: 1, Axis.MEMORY: 2}


@dataclass(frozen=True)
class AxisSlice:
    """One kernel's performance along one knob, other knobs pinned."""

    kernel_name: str
    axis: Axis
    knob_values: Tuple[float, ...]
    perf: Tuple[float, ...]

    @property
    def speedup(self) -> Tuple[float, ...]:
        """Performance normalised to the slice's first point."""
        base = self.perf[0]
        return tuple(p / base for p in self.perf)

    @property
    def gain(self) -> float:
        """End-to-end speedup across the slice (last over first)."""
        return self.perf[-1] / self.perf[0]

    @property
    def peak_gain(self) -> float:
        """Best point over the first point (differs from :attr:`gain`
        for non-monotonic, e.g. inverse-scaling, slices)."""
        return max(self.perf) / self.perf[0]

    @property
    def knob_ratio(self) -> float:
        """Dynamic range of the knob itself over the slice."""
        return self.knob_values[-1] / self.knob_values[0]


def axis_values(dataset: ScalingDataset, axis: Axis) -> Tuple[float, ...]:
    """Knob values along *axis* in this dataset's space."""
    space = dataset.space
    if axis is Axis.CU:
        return tuple(float(c) for c in space.cu_counts)
    if axis is Axis.ENGINE:
        return space.engine_mhz
    return space.memory_mhz


def axis_slice(
    dataset: ScalingDataset,
    kernel_name: str,
    axis: Axis,
    fixed: Optional[Tuple[int, int]] = None,
) -> AxisSlice:
    """Slice one kernel along *axis*.

    *fixed* pins the other two axes by index, in cube-dimension order
    with *axis* removed; ``None`` pins both at their maxima (the
    paper's default presentation: scale one knob with the others at
    full speed).
    """
    cube = dataset.kernel_cube(kernel_name)
    dim = _AXIS_DIM[axis]
    other_dims = [d for d in range(3) if d != dim]
    if fixed is None:
        fixed = tuple(cube.shape[d] - 1 for d in other_dims)
    if len(fixed) != 2:
        raise DatasetError(f"fixed must pin exactly 2 axes, got {fixed!r}")
    for d, idx in zip(other_dims, fixed):
        if not 0 <= idx < cube.shape[d]:
            raise DatasetError(
                f"fixed index {idx} outside axis of length {cube.shape[d]}"
            )

    indexer: list = [slice(None)] * 3
    for d, idx in zip(other_dims, fixed):
        indexer[d] = idx
    line = cube[tuple(indexer)]
    return AxisSlice(
        kernel_name=kernel_name,
        axis=axis,
        knob_values=axis_values(dataset, axis),
        perf=tuple(float(v) for v in line),
    )


def clock_surface(
    dataset: ScalingDataset,
    kernel_name: str,
    cu_index: int = -1,
) -> np.ndarray:
    """The (engine, memory) performance surface at one CU setting,
    normalised to its (min engine, min memory) corner.

    This is the view behind the paper's plateau observation: plateau
    kernels stay near 1.0 across the whole surface.
    """
    cube = dataset.kernel_cube(kernel_name)
    surface = cube[cu_index]
    return surface / surface[0, 0]


def normalised_cube(
    dataset: ScalingDataset, kernel_name: str
) -> np.ndarray:
    """A kernel's full cube normalised to the smallest configuration."""
    cube = dataset.kernel_cube(kernel_name)
    return cube / cube[0, 0, 0]


def end_to_end_speedups(dataset: ScalingDataset) -> np.ndarray:
    """Speedup of the largest over the smallest configuration, for
    every kernel (the paper's headline per-kernel scaling summary)."""
    perf = dataset.perf
    return perf[:, -1, -1, -1] / perf[:, 0, 0, 0]
