"""Fault-tolerant sweep campaigns: checkpointing, resume, quarantine.

A full paper-scale sweep is 237,897 simulations; ablation grids, noise
studies, and ML sampling campaigns multiply that by dozens of runs. A
campaign that dies at 90% and restarts from zero wastes the whole run —
so :class:`CampaignRunner` wraps any sweep runner with per-chunk
checkpointing to an on-disk *journal*: atomic ``.npz`` shards plus a
manifest keyed by a fingerprint of the kernel list, configuration
space, and engine settings. Interrupt the campaign at any point and a
``resume=True`` re-run reloads every completed shard and executes only
the remainder, producing a dataset bit-exact with an uninterrupted run
(the model is deterministic and chunks are independent).

Journal layout (one directory per campaign)::

    journal/
      manifest.json      fingerprint, kernel order, chunk table
      chunk_0000.npz     per-chunk perf tensor + kernel names
      chunk_0001.npz     ...

Both the manifest and every shard are written atomically (temp file +
rename), so a kill mid-write never corrupts the journal: the chunk is
either durably recorded or cleanly absent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.atomic import atomic_path, atomic_write_text
from repro.errors import CampaignError
from repro.gpu.engine import engine_fingerprint, normalize_grid_mode
from repro.sweep.cache import fingerprint_blob
from repro.kernels.kernel import Kernel
from repro.sweep.dataset import KernelRecord, ScalingDataset
from repro.sweep.runner import (
    ProgressCallback,
    SweepRunner,
    check_kernel_list,
)
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace

MANIFEST_NAME = "manifest.json"

#: Default kernels per checkpointed chunk: a lost chunk costs at most
#: this many kernel grids of recomputation.
DEFAULT_CHUNK_SIZE = 16


@dataclass(frozen=True)
class CampaignReport:
    """What a campaign did: chunk accounting and quarantined kernels."""

    total_kernels: int
    total_chunks: int
    resumed_chunks: int
    executed_chunks: int
    quarantined: Mapping[str, str]

    @property
    def quarantined_count(self) -> int:
        """Number of kernels quarantined during the campaign."""
        return len(self.quarantined)

    def summary_lines(self) -> List[str]:
        """Human-readable summary, one line per fact."""
        lines = [
            f"campaign: {self.total_kernels} kernels in "
            f"{self.total_chunks} chunks "
            f"({self.resumed_chunks} resumed from journal, "
            f"{self.executed_chunks} executed)"
        ]
        for name in sorted(self.quarantined):
            lines.append(
                f"quarantined {name}: {self.quarantined[name]}"
            )
        return lines


class CampaignRunner:
    """Checkpointing wrapper around a sweep runner.

    Partitions the kernel list into chunks, runs each through the
    inner runner (:class:`SweepRunner` by default; a
    :class:`~repro.sweep.parallel.ParallelSweepRunner` works the same
    way), and journals every completed chunk before starting the next.
    ``strict=False`` (the default for campaigns) quarantines failing
    kernels instead of aborting; ``strict=True`` restores fail-fast.
    """

    def __init__(
        self,
        journal_dir: Union[str, Path],
        runner=None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        strict: bool = False,
    ):
        if chunk_size < 1:
            raise CampaignError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self._journal = Path(journal_dir)
        self._runner = runner if runner is not None else SweepRunner()
        self._chunk_size = chunk_size
        self._strict = strict

    @property
    def journal_dir(self) -> Path:
        """Where this campaign checkpoints."""
        return self._journal

    def run(
        self,
        kernels: Sequence[Kernel],
        space: ConfigurationSpace = PAPER_SPACE,
        progress: Optional[ProgressCallback] = None,
        resume: bool = False,
    ) -> Tuple[ScalingDataset, CampaignReport]:
        """Run (or resume) the campaign; returns (dataset, report).

        With ``resume=True``, completed chunks recorded in a matching
        journal are loaded from their shards instead of re-simulated;
        a journal written by a different campaign (other kernels,
        space, engine, or chunking) raises :class:`CampaignError`.
        *progress* receives cumulative ``(rows_done, rows_total)``
        ticks, counting resumed rows too.
        """
        check_kernel_list(kernels)
        names = [k.full_name for k in kernels]
        chunks = [
            list(kernels[i:i + self._chunk_size])
            for i in range(0, len(kernels), self._chunk_size)
        ]
        fingerprint = self._fingerprint(names, space)

        manifest = self._load_manifest() if resume else None
        if manifest is not None and manifest.get("fingerprint") != fingerprint:
            raise CampaignError(
                f"journal at {self._journal} was written by a different "
                "campaign (fingerprint mismatch); choose another journal "
                "directory or start without resume"
            )
        if manifest is None:
            self._journal.mkdir(parents=True, exist_ok=True)
            manifest = {
                "fingerprint": fingerprint,
                "kernels": names,
                "chunk_size": self._chunk_size,
                "space": space.to_dict(),
                "chunks": {},
            }
            self._write_manifest(manifest)

        total = len(kernels)
        done_rows = 0
        parts: Dict[int, np.ndarray] = {}
        quarantined: Dict[str, str] = {}
        resumed = executed = 0

        for index, chunk in enumerate(chunks):
            entry = manifest["chunks"].get(str(index))
            if entry is not None and entry.get("status") == "done":
                perf, chunk_quarantine = self._load_shard(
                    self._journal / entry["shard"], chunk, space
                )
                resumed += 1
            else:
                chunk_dataset = self._runner.run(
                    chunk, space, strict=self._strict
                )
                perf = chunk_dataset.perf
                chunk_quarantine = chunk_dataset.quarantined
                shard_name = f"chunk_{index:04d}.npz"
                self._write_shard(
                    self._journal / shard_name, chunk, perf,
                    chunk_quarantine,
                )
                manifest["chunks"][str(index)] = {
                    "status": "done",
                    "shard": shard_name,
                    "quarantined": chunk_quarantine,
                }
                self._write_manifest(manifest)
                executed += 1
            parts[index] = perf
            quarantined.update(chunk_quarantine)
            done_rows += len(chunk)
            if progress is not None:
                progress(done_rows, total)

        perf = np.concatenate(
            [parts[i] for i in range(len(chunks))], axis=0
        )
        records = [KernelRecord.from_full_name(name) for name in names]
        dataset = ScalingDataset(
            space, records, perf, quarantined=quarantined
        )
        report = CampaignReport(
            total_kernels=total,
            total_chunks=len(chunks),
            resumed_chunks=resumed,
            executed_chunks=executed,
            quarantined=dict(quarantined),
        )
        return dataset, report

    # ------------------------------------------------------------------
    # Journal I/O
    # ------------------------------------------------------------------

    def _fingerprint(
        self, names: Sequence[str], space: ConfigurationSpace
    ) -> str:
        """Identity of this campaign's inputs and execution settings.

        The payload layout is load-bearing: existing journals store
        this hash, so changing a key or adding a field orphans every
        resumable campaign on disk. The engine value is the
        descriptor-derived fingerprint material
        (:func:`repro.gpu.engine.engine_fingerprint`), which for the
        built-in engines is byte-identical to the pre-registry enum
        values.
        """
        engine = getattr(self._runner, "engine", "interval")
        grid_mode = getattr(self._runner, "grid_mode", "batch")
        return fingerprint_blob(
            {
                "kernels": list(names),
                "space": space.to_dict(),
                "chunk_size": self._chunk_size,
                "engine": engine_fingerprint(engine),
                "grid_mode": normalize_grid_mode(grid_mode),
            }
        )

    def _load_manifest(self) -> Optional[dict]:
        path = self._journal / MANIFEST_NAME
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(
                f"corrupt campaign manifest at {path}: {exc}"
            ) from exc
        if not isinstance(manifest.get("chunks"), dict):
            raise CampaignError(
                f"corrupt campaign manifest at {path}: no chunk table"
            )
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        atomic_write_text(
            self._journal / MANIFEST_NAME, json.dumps(manifest, indent=1)
        )

    def _write_shard(
        self,
        path: Path,
        chunk: Sequence[Kernel],
        perf: np.ndarray,
        quarantined: Mapping[str, str],
    ) -> None:
        metadata = {
            "kernels": [k.full_name for k in chunk],
            "quarantined": dict(quarantined),
        }
        with atomic_path(path) as tmp:
            with open(tmp, "wb") as handle:
                np.savez_compressed(
                    handle,
                    perf=perf,
                    metadata=np.array(json.dumps(metadata)),
                )

    def _load_shard(
        self,
        path: Path,
        chunk: Sequence[Kernel],
        space: ConfigurationSpace,
    ) -> Tuple[np.ndarray, Dict[str, str]]:
        """A completed chunk's tensor, cross-checked against the plan."""
        if not path.exists():
            raise CampaignError(
                f"journal shard {path} is missing; the journal is "
                "incomplete — start the campaign without resume"
            )
        try:
            with np.load(path, allow_pickle=False) as archive:
                perf = archive["perf"]
                metadata = json.loads(str(archive["metadata"]))
        except (KeyError, ValueError, json.JSONDecodeError) as exc:
            raise CampaignError(
                f"corrupt journal shard at {path}: {exc}"
            ) from exc
        expected_names = [k.full_name for k in chunk]
        if metadata.get("kernels") != expected_names:
            raise CampaignError(
                f"journal shard {path} holds different kernels than the "
                "campaign plan; the journal does not match this campaign"
            )
        expected_shape = (len(chunk),) + space.shape
        if perf.shape != expected_shape:
            raise CampaignError(
                f"journal shard {path} has shape {perf.shape}, "
                f"expected {expected_shape}"
            )
        return perf, dict(metadata.get("quarantined", {}))
