"""Fault injection for exercising sweep fault-tolerance.

:class:`FaultyEngine` is a drop-in :class:`~repro.gpu.simulator.GpuSimulator`
wrapper that injects failures — structured exceptions, hangs, silent
NaN corruption, and hard worker exits — at configurable kernels or call
indices. It exists so every recovery path in the sweep stack (per-kernel
quarantine, chunk retry, serial degradation, checkpoint resume) is
property-tested against the exact failure it defends against, rather
than trusted on inspection.

Fault specs serialise to plain dicts, so :class:`ParallelSweepRunner`
can carry them across process boundaries and trip them inside worker
processes. The ``scope`` field restricts where a fault fires ("worker"
faults only trip in pool workers, modelling a broken worker environment
whose work still succeeds in-process), and ``max_trips`` with an
optional on-disk ``state_path`` counter models transient failures that
disappear on retry — including retries in a fresh process.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.gpu.engine import (
    FAULTY_DESCRIPTOR,
    EngineDescriptor,
    GridModeSpec,
)
from repro.gpu.simulator import GpuSimulator, SimulationResult
from repro.kernels.kernel import Kernel


class FaultKind(Enum):
    """What a tripped fault does."""

    #: Raise a structured :class:`SimulationError`.
    RAISE = "raise"
    #: Sleep for ``hang_s`` seconds (models a wedged simulation).
    HANG = "hang"
    #: Return normally but with NaN throughput (silent data corruption).
    NAN = "nan"
    #: Kill the current process with ``os._exit`` (worker crash).
    EXIT = "exit"


def _in_worker() -> bool:
    """True inside a multiprocessing pool worker (daemon process)."""
    return multiprocessing.current_process().daemon


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what fires, where, and how often.

    A spec with neither *kernel_name* nor *kernel_index* matches every
    simulation. ``max_trips=None`` fires on every match; with a count,
    trips are tallied in-memory per engine instance, or in the file at
    *state_path* so the tally survives process boundaries (each trip
    appends one byte; the file's size is the count).
    """

    kind: FaultKind
    kernel_name: Optional[str] = None
    kernel_index: Optional[int] = None  # Nth simulate_grid call
    scope: str = "any"  # "any" | "worker" | "main"
    max_trips: Optional[int] = None
    state_path: Optional[str] = None
    hang_s: float = 3600.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.scope not in ("any", "worker", "main"):
            raise ValueError(f"unknown fault scope {self.scope!r}")

    def to_dict(self) -> dict:
        """Serialise for a worker payload (JSON/pickle friendly)."""
        return {
            "kind": self.kind.value,
            "kernel_name": self.kernel_name,
            "kernel_index": self.kernel_index,
            "scope": self.scope,
            "max_trips": self.max_trips,
            "state_path": self.state_path,
            "hang_s": self.hang_s,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        """Reconstruct from :meth:`to_dict` output."""
        return cls(
            kind=FaultKind(payload["kind"]),
            kernel_name=payload.get("kernel_name"),
            kernel_index=payload.get("kernel_index"),
            scope=payload.get("scope", "any"),
            max_trips=payload.get("max_trips"),
            state_path=payload.get("state_path"),
            hang_s=payload.get("hang_s", 3600.0),
            message=payload.get("message", "injected fault"),
        )


class FaultyEngine:
    """A :class:`GpuSimulator` wrapper that injects configured faults.

    Delegates every call to the wrapped simulator; before (and for NaN
    faults, after) each ``simulate_grid`` it evaluates the fault specs
    in order and triggers those that match.
    """

    supports_point = True
    supports_grid = True
    supports_study = False

    def __init__(
        self, simulator: GpuSimulator, specs: Sequence[FaultSpec]
    ):
        self._simulator = simulator
        self._specs = list(specs)
        self._calls = 0
        self._local_trips: Dict[int, int] = {}

    @property
    def engine(self):
        """The wrapped simulator's engine."""
        return self._simulator.engine

    def descriptor(self) -> EngineDescriptor:
        """Identity of the fault-injection wrapper itself.

        Deliberately *not* the wrapped engine's descriptor: results
        produced under injection must never share a cache or campaign
        fingerprint with clean runs.
        """
        return FAULTY_DESCRIPTOR

    @property
    def specs(self) -> List[FaultSpec]:
        """The configured fault specs."""
        return list(self._specs)

    def simulate(self, kernel: Kernel, config) -> SimulationResult:
        """Pass-through single-point simulation (no injection)."""
        return self._simulator.simulate(kernel, config)

    def simulate_grid(
        self, kernel: Kernel, space, mode: GridModeSpec = "batch"
    ):
        """Simulate a grid, tripping any matching faults."""
        call_index = self._calls
        self._calls += 1
        corrupt = False
        for pos, spec in enumerate(self._specs):
            if not self._matches(spec, kernel, call_index):
                continue
            if not self._arm(pos, spec):
                continue
            if spec.kind is FaultKind.RAISE:
                raise SimulationError(kernel.full_name, spec.message)
            if spec.kind is FaultKind.HANG:
                time.sleep(spec.hang_s)
            elif spec.kind is FaultKind.EXIT:
                os._exit(17)
            elif spec.kind is FaultKind.NAN:
                corrupt = True
        result = self._simulator.simulate_grid(kernel, space, mode=mode)
        if corrupt:
            # The engine's tensors may be read-only views; corrupt a copy.
            result = dataclasses.replace(
                result,
                items_per_second=np.full_like(
                    result.items_per_second, np.nan
                ),
                time_s=np.full_like(result.time_s, np.nan),
            )
        return result

    # ------------------------------------------------------------------

    @staticmethod
    def _matches(spec: FaultSpec, kernel: Kernel, call_index: int) -> bool:
        if spec.scope == "worker" and not _in_worker():
            return False
        if spec.scope == "main" and _in_worker():
            return False
        if (spec.kernel_name is not None
                and kernel.full_name != spec.kernel_name):
            return False
        if (spec.kernel_index is not None
                and call_index != spec.kernel_index):
            return False
        return True

    def _arm(self, pos: int, spec: FaultSpec) -> bool:
        """Record a trip; False once ``max_trips`` is exhausted."""
        if spec.max_trips is None:
            return True
        if spec.state_path:
            count = (
                os.path.getsize(spec.state_path)
                if os.path.exists(spec.state_path) else 0
            )
            if count >= spec.max_trips:
                return False
            with open(spec.state_path, "ab") as handle:
                handle.write(b"!")
            return True
        count = self._local_trips.get(pos, 0)
        if count >= spec.max_trips:
            return False
        self._local_trips[pos] = count + 1
        return True
