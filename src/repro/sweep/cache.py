"""Content-addressed sweep result cache.

Every downstream consumer — ``gpuscale classify``, ``gpuscale report``,
the ablation/noise/sampling studies — starts from the same 267-kernel x
891-configuration dataset. The model is deterministic, so that dataset
is a pure function of its inputs: the kernel definitions, the
configuration space, and the engine. :class:`SweepCache` keys a saved
:class:`~repro.sweep.dataset.ScalingDataset` by the SHA-256 of exactly
those inputs (the same canonical-JSON hashing the campaign journal uses
for its fingerprint, extended from kernel *names* to full kernel
*content* so an edited characteristic can never alias a stale result).
A repeat invocation loads the ``.npz`` instead of re-simulating; any
change to a kernel, the space, or the engine changes the key and misses
naturally.

Cache entries live under ``$GPUSCALE_CACHE_DIR`` (default
``~/.cache/gpuscale``), one atomic ``.npz`` per fingerprint. Corrupt or
unreadable entries count as misses — the cache is an accelerator, never
a correctness dependency. Datasets containing quarantined kernels are
not cached: a frozen failure row would outlive the transient fault that
produced it.

The cache is safe under concurrent readers and writers — the query
service's engine worker, parallel sweep processes, and test harnesses
may all hit one directory at once. Writes go through
:func:`repro.atomic.atomic_path` (per-call-unique temp name, then
``os.replace``), so a reader only ever sees some writer's *complete*
bytes; a read racing a delete, a replace, or a corrupt entry counts as
a miss and never propagates an error. Stat counters are lock-guarded.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import DatasetError, ReproError
from repro.gpu.engine import EngineSpec, GridModeSpec, engine_fingerprint
from repro.kernels.kernel import Kernel
from repro.sweep.dataset import ScalingDataset
from repro.sweep.runner import ProgressCallback, collect_paper_dataset
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "GPUSCALE_CACHE_DIR"

#: Bump to invalidate every existing entry after a model change that
#: alters outputs without touching any fingerprinted input.
CACHE_SCHEMA_VERSION = 1


def default_cache_dir() -> Path:
    """The cache root: ``$GPUSCALE_CACHE_DIR`` or ``~/.cache/gpuscale``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "gpuscale"


def fingerprint_blob(payload: dict) -> str:
    """SHA-256 of *payload* as canonical (sorted-keys) JSON.

    The shared hashing primitive behind both the campaign journal
    fingerprint and the sweep cache key — one definition, so the two
    can never drift apart in encoding.
    """
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def sweep_fingerprint(
    kernels: Sequence[Kernel],
    space: ConfigurationSpace,
    engine: EngineSpec = "interval",
) -> str:
    """Content address of one sweep's inputs.

    Full ``kernel.to_dict()`` payloads (characteristics, geometry,
    resources), the space including its microarchitecture, and the
    engine's descriptor-derived fingerprint material
    (:func:`repro.gpu.engine.engine_fingerprint`). Engines in one
    family are equivalence-tested to produce the same dataset, so they
    share material — and cache entries; grid mode is excluded for the
    same reason (scalar, batch, and study paths are oracle-equal).
    """
    return fingerprint_blob(
        {
            "version": CACHE_SCHEMA_VERSION,
            "kernels": [k.to_dict() for k in kernels],
            "space": space.to_dict(),
            "engine": engine_fingerprint(engine),
        }
    )


class SingleFlight:
    """Per-key mutual exclusion for concurrent cache misses.

    N threads asking for the same key get one lock; the first in
    computes while the rest block, then re-check the cache and find
    the winner's result. Lock records are reference-counted and
    dropped when the last waiter leaves, so the key table never grows
    with the (unbounded) set of fingerprints ever requested.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._keys: Dict[str, List] = {}  # key -> [lock, refcount]

    def acquire(self, key: str) -> threading.Lock:
        """Take the key's lock (blocking); pair with :meth:`release`."""
        with self._lock:
            entry = self._keys.get(key)
            if entry is None:
                entry = [threading.Lock(), 0]
                self._keys[key] = entry
            entry[1] += 1
        entry[0].acquire()
        return entry[0]

    def release(self, key: str) -> None:
        """Drop the key's lock; forgets the key with its last waiter."""
        with self._lock:
            entry = self._keys[key]
            entry[1] -= 1
            if entry[1] == 0:
                del self._keys[key]
        entry[0].release()

    def active_keys(self) -> List[str]:
        """Keys currently in flight (diagnostic)."""
        with self._lock:
            return sorted(self._keys)


class SweepCache:
    """Fingerprint-keyed store of saved scaling datasets."""

    def __init__(self, cache_dir: Union[str, Path, None] = None):
        self._dir = (
            Path(cache_dir) if cache_dir is not None else default_cache_dir()
        )
        self._stats_lock = threading.Lock()
        self._single_flight = SingleFlight()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _count(self, stat: str) -> None:
        with self._stats_lock:
            setattr(self, stat, getattr(self, stat) + 1)

    @property
    def cache_dir(self) -> Path:
        """Directory holding the cache entries."""
        return self._dir

    def path_for(self, fingerprint: str) -> Path:
        """Where the entry for *fingerprint* lives (existing or not)."""
        return self._dir / f"sweep_{fingerprint}.npz"

    def load(self, fingerprint: str) -> Optional[ScalingDataset]:
        """The cached dataset, or ``None`` on miss.

        A corrupt, truncated, or invalid entry is deleted and treated
        as a miss: the caller re-simulates and overwrites it. Races
        are tolerated the same way — an entry deleted or replaced
        between the existence check and the read is just a miss.
        """
        return self._load(fingerprint, count_miss=True)

    def _load(
        self, fingerprint: str, count_miss: bool
    ) -> Optional[ScalingDataset]:
        path = self.path_for(fingerprint)
        if not path.exists():
            if count_miss:
                self._count("misses")
            return None
        try:
            dataset = ScalingDataset.load(path).validate()
        except (ReproError, OSError, ValueError, KeyError):
            self.invalidate(fingerprint)
            if count_miss:
                self._count("misses")
            return None
        self._count("hits")
        return dataset

    def load_or_compute(
        self,
        fingerprint: str,
        compute: Callable[[], ScalingDataset],
    ) -> ScalingDataset:
        """Load the entry, or compute-and-store it exactly once.

        Concurrent callers missing on the same *fingerprint* are
        single-flighted: one runs *compute*, stores the result, and
        every peer re-reads the stored entry instead of re-simulating
        (the double-check inside the key lock). Distinct fingerprints
        never contend. A dataset with quarantined kernels is returned
        but not stored, matching :meth:`store`'s refusal policy.

        The second look inside the lock deliberately does not count a
        miss: the caller's attempt already counted one, and the stat
        would otherwise double-count every single-flighted request.
        """
        dataset = self.load(fingerprint)
        if dataset is not None:
            return dataset
        self._single_flight.acquire(fingerprint)
        try:
            dataset = self._load(fingerprint, count_miss=False)
            if dataset is not None:
                return dataset
            dataset = compute()
            if not dataset.quarantined:
                try:
                    self.store(fingerprint, dataset)
                except (ReproError, OSError):
                    pass  # an accelerator, never a dependency
            return dataset
        finally:
            self._single_flight.release(fingerprint)

    def store(self, fingerprint: str, dataset: ScalingDataset) -> Path:
        """Persist *dataset* under *fingerprint* (atomic write).

        Refuses datasets with quarantined kernels — those rows record a
        (possibly transient) failure, not a result worth replaying.
        """
        if dataset.quarantined:
            raise DatasetError(
                "refusing to cache a dataset with quarantined kernels: "
                + ", ".join(sorted(dataset.quarantined))
            )
        self._dir.mkdir(parents=True, exist_ok=True)
        path = dataset.save(self.path_for(fingerprint))
        self._count("stores")
        return path

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one entry; ``True`` if something was deleted.

        Tolerates a concurrent delete (both callers report having
        invalidated, neither errors).
        """
        path = self.path_for(fingerprint)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False
        except OSError:
            return False

    def entries(self) -> List[Path]:
        """Every cache entry, sorted by name."""
        if not self._dir.is_dir():
            return []
        return sorted(self._dir.glob("sweep_*.npz"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def cached_paper_dataset(
    engine: EngineSpec = "interval",
    space: ConfigurationSpace = PAPER_SPACE,
    progress: Optional[ProgressCallback] = None,
    grid_mode: GridModeSpec = "batch",
    strict: bool = True,
    cache: Optional[SweepCache] = None,
) -> ScalingDataset:
    """:func:`collect_paper_dataset` behind the result cache.

    On a hit the engine is never invoked (pinned by the engine-call
    counter in the cache tests); on a miss the dataset is collected,
    stored, and returned — and concurrent misses for the same
    fingerprint are single-flighted through
    :meth:`SweepCache.load_or_compute`, so one collection run serves
    every caller. Pass an explicit *cache* to control the directory;
    ``None`` uses the default location.
    """
    from repro.suites import all_kernels

    if cache is None:
        cache = SweepCache()
    fingerprint = sweep_fingerprint(all_kernels(), space, engine)
    return cache.load_or_compute(
        fingerprint,
        lambda: collect_paper_dataset(
            engine, space, progress, grid_mode, strict=strict
        ),
    )
