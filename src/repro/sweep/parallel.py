"""Multiprocess sweep collection.

The batch interval engine completes the full 237,897-point study in a
fraction of a second on one core, but iteration workflows (ablation
sweeps, noise studies, alternative hardware families, ML-style sampling
campaigns) re-run it many times. :class:`ParallelSweepRunner`
partitions the kernel list across worker processes — simulation is
embarrassingly parallel per kernel row — and reassembles an
identical-to-serial dataset (bit-exact: the model is deterministic and
rows are independent).

Kernels and the configuration space travel to workers as plain dicts,
including the microarchitecture, so non-default hardware families
(e.g. :data:`repro.gpu.families.APU_SPACE`) parallelise the same way
the paper grid does.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.gpu.simulator import Engine, GridMode
from repro.kernels.kernel import Kernel
from repro.sweep.dataset import KernelRecord, ScalingDataset
from repro.sweep.runner import ProgressCallback, SweepRunner
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace

#: Target chunks per worker: small enough that ``imap`` completions
#: give useful progress ticks, large enough to amortise pickling.
_CHUNKS_PER_WORKER = 4


def _sweep_chunk(
    payload: Tuple[List[dict], dict, str, str]
) -> np.ndarray:
    """Worker: sweep a chunk of kernels (serialised as dicts).

    Kernels and the space travel as plain dicts so the worker start
    method (fork or spawn) does not matter.
    """
    kernel_payloads, space_payload, engine_value, mode_value = payload
    kernels = [Kernel.from_dict(p) for p in kernel_payloads]
    space = ConfigurationSpace.from_dict(space_payload)
    runner = SweepRunner(Engine(engine_value), GridMode(mode_value))
    return runner.run(kernels, space).perf


class ParallelSweepRunner:
    """Sweep kernels across a pool of worker processes."""

    def __init__(
        self,
        engine: Engine = Engine.INTERVAL,
        workers: Optional[int] = None,
        grid_mode: GridMode = GridMode.BATCH,
    ):
        self._engine = engine
        self._workers = workers or max(
            1, multiprocessing.cpu_count() - 1
        )
        self._grid_mode = grid_mode

    @property
    def workers(self) -> int:
        """Worker-process count."""
        return self._workers

    @property
    def grid_mode(self) -> GridMode:
        """How each worker evaluates a kernel's configuration grid."""
        return self._grid_mode

    def run(
        self,
        kernels: Sequence[Kernel],
        space: ConfigurationSpace = PAPER_SPACE,
        progress: Optional[ProgressCallback] = None,
    ) -> ScalingDataset:
        """Collect the dataset; identical to the serial runner's.

        *progress*, when given, is called as chunks of kernel rows
        complete with ``(rows_done, rows_total)`` — the same signature
        as the serial runner's callback.
        """
        if not kernels:
            raise DatasetError("cannot sweep an empty kernel list")
        names = [k.full_name for k in kernels]
        if len(set(names)) != len(names):
            raise DatasetError("kernel list contains duplicate full names")

        if self._workers == 1 or len(kernels) < 2 * self._workers:
            return SweepRunner(self._engine, self._grid_mode).run(
                kernels, space, progress
            )

        chunk_size = -(-len(kernels) // (self._workers * _CHUNKS_PER_WORKER))
        chunks = [
            list(kernels[i:i + chunk_size])
            for i in range(0, len(kernels), chunk_size)
        ]
        space_payload = space.to_dict()
        payloads = [
            (
                [k.to_dict() for k in chunk],
                space_payload,
                self._engine.value,
                self._grid_mode.value,
            )
            for chunk in chunks
        ]
        parts: List[np.ndarray] = []
        done = 0
        with multiprocessing.Pool(self._workers) as pool:
            # imap preserves chunk order, so the concatenated rows line
            # up with *names*, while letting progress tick per chunk.
            for chunk, part in zip(chunks, pool.imap(_sweep_chunk, payloads)):
                parts.append(part)
                done += len(chunk)
                if progress is not None:
                    progress(done, len(kernels))

        perf = np.concatenate(parts, axis=0)
        records = [KernelRecord.from_full_name(name) for name in names]
        return ScalingDataset(space, records, perf)
