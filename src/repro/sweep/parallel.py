"""Multiprocess sweep collection with worker supervision.

The batch interval engine completes the full 237,897-point study in a
fraction of a second on one core, but iteration workflows (ablation
sweeps, noise studies, alternative hardware families, ML-style sampling
campaigns) re-run it many times. :class:`ParallelSweepRunner`
partitions the kernel list across worker processes — simulation is
embarrassingly parallel per kernel row — and reassembles an
identical-to-serial dataset (bit-exact: the model is deterministic and
rows are independent).

The pool is *supervised* rather than trusted: every chunk result is
awaited with a timeout, so a hung or crashed worker fails the chunk
visibly instead of blocking the campaign forever. A failed chunk is
retried (bounded, with backoff) on a fresh pool; a chunk that keeps
failing degrades to in-process serial execution, which also covers
sandboxed environments where a process pool cannot be created at all.
Worker-side failures come back as structured records naming the
originating kernel, not as bare pickled tracebacks.

Kernels and the configuration space travel to workers as plain dicts,
including the microarchitecture, so non-default hardware families
(e.g. :data:`repro.gpu.families.APU_SPACE`) parallelise the same way
the paper grid does.

Result rows travel back through a ``multiprocessing.shared_memory``
segment rather than the result pickle: the parent allocates one
``(n_kernels, n_cu, n_eng, n_mem)`` float64 ndarray up front, each
chunk payload carries the segment name plus the chunk's kernel-row
offset, and workers write their rows straight into the mapped buffer —
the pickled result shrinks to quarantine metadata. Retried chunks
simply rewrite their rows (deterministic data, idempotent), degraded
chunks are written by the parent, and any failure to create or attach
the segment falls back to pickling rows exactly as before, so
supervision and quarantine semantics are unchanged.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.shm import (
    create_segment,
    ensure_tracker,
    untrack_segment,
    write_rows,
)
from repro.gpu.engine import (
    Engine,
    EngineSpec,
    GridMode,
    GridModeSpec,
    normalize_engine,
    normalize_grid_mode,
)
from repro.gpu.simulator import GpuSimulator
from repro.kernels.kernel import Kernel
from repro.sweep.dataset import KernelRecord, ScalingDataset
from repro.sweep.faults import FaultSpec, FaultyEngine
from repro.sweep.runner import (
    ProgressCallback,
    SweepRunner,
    check_kernel_list,
)
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace

#: Target chunks per worker: small enough that chunk completions give
#: useful progress ticks, large enough to amortise pickling.
_CHUNKS_PER_WORKER = 4

#: How long to wait for one chunk before declaring its worker wedged.
DEFAULT_CHUNK_TIMEOUT_S = 300.0

#: Retries per chunk (on a fresh pool) before degrading to serial.
DEFAULT_MAX_RETRIES = 2

#: Base backoff between retries; multiplied by the attempt number.
DEFAULT_RETRY_BACKOFF_S = 0.25


# The shared-memory transport lives in repro.shm so the study-mt
# engine can share the layout without a gpu -> sweep import; these
# aliases keep the established monkeypatch/injection points stable.
_untrack_shared_memory = untrack_segment
_write_rows_shared = write_rows


def _sweep_chunk(payload: dict) -> dict:
    """Worker: sweep a chunk of kernels (serialised as dicts).

    Returns a structured result instead of raising, so the parent can
    surface a failure with the originating kernel's name rather than a
    bare pickled traceback. Kernels and the space travel as plain
    dicts so the worker start method (fork or spawn) does not matter.
    Rows are written into the parent's shared-memory result array when
    the payload names one (zero-copy); otherwise — or if attaching
    fails — they are pickled back as before.
    """
    try:
        kernels = [Kernel.from_dict(p) for p in payload["kernels"]]
        space = ConfigurationSpace.from_dict(payload["space"])
        engine = payload["engine"]  # a registry name string
        simulator = GpuSimulator(engine)
        specs = [FaultSpec.from_dict(s) for s in payload.get("faults", [])]
        if specs:
            simulator = FaultyEngine(simulator, specs)
        runner = SweepRunner(
            engine, payload["mode"], simulator=simulator
        )
        dataset = runner.run(kernels, space, strict=payload["strict"])
        shm_info = payload.get("shm")
        if shm_info is not None and _write_rows_shared(
            shm_info, dataset.perf
        ):
            return {"ok": True, "quarantined": dataset.quarantined}
        return {
            "ok": True,
            "perf": dataset.perf,
            "quarantined": dataset.quarantined,
        }
    except Exception as exc:
        return {
            "ok": False,
            "kernel": getattr(exc, "kernel_name", None),
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


@dataclass
class SupervisionStats:
    """Counters describing one supervised parallel run."""

    retries: int = 0
    timeouts: int = 0
    degraded_chunks: int = 0
    pool_unavailable: bool = False
    worker_errors: List[str] = field(default_factory=list)


class ParallelSweepRunner:
    """Sweep kernels across a supervised pool of worker processes."""

    def __init__(
        self,
        engine: EngineSpec = "interval",
        workers: Optional[int] = None,
        grid_mode: GridModeSpec = "batch",
        *,
        chunk_timeout_s: float = DEFAULT_CHUNK_TIMEOUT_S,
        max_retries: int = DEFAULT_MAX_RETRIES,
        retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
        faults: Sequence[FaultSpec] = (),
    ):
        self._engine_name = normalize_engine(engine)
        self._workers = workers or max(
            1, multiprocessing.cpu_count() - 1
        )
        self._mode = normalize_grid_mode(grid_mode)
        self._chunk_timeout_s = chunk_timeout_s
        self._max_retries = max_retries
        self._retry_backoff_s = retry_backoff_s
        self._faults = list(faults)
        self._stats = SupervisionStats()

    @property
    def workers(self) -> int:
        """Worker-process count."""
        return self._workers

    @property
    def engine(self):
        """The engine selection (legacy enum where one exists)."""
        try:
            return Engine(self._engine_name)
        except ValueError:
            return self._engine_name

    @property
    def engine_name(self) -> str:
        """Registry name of the selected engine."""
        return self._engine_name

    @property
    def grid_mode(self):
        """How workers evaluate a kernel's grid (legacy enum alias)."""
        return GridMode(self._mode)

    @property
    def grid_mode_name(self) -> str:
        """Canonical grid-mode name (``batch``/``scalar``/``study``)."""
        return self._mode

    @property
    def last_stats(self) -> SupervisionStats:
        """Supervision counters from the most recent :meth:`run`."""
        return self._stats

    def run(
        self,
        kernels: Sequence[Kernel],
        space: ConfigurationSpace = PAPER_SPACE,
        progress: Optional[ProgressCallback] = None,
        strict: bool = True,
    ) -> ScalingDataset:
        """Collect the dataset; identical to the serial runner's.

        *progress*, when given, is called as chunks of kernel rows
        complete with ``(rows_done, rows_total)`` — the same signature
        as the serial runner's callback. Each chunk is counted exactly
        once, even when it is retried or degraded to serial execution.
        """
        check_kernel_list(kernels)
        names = [k.full_name for k in kernels]
        self._stats = SupervisionStats()

        if self._workers == 1 or len(kernels) < 2 * self._workers:
            return self._serial_runner().run(
                kernels, space, progress, strict=strict
            )

        chunk_size = -(-len(kernels) // (self._workers * _CHUNKS_PER_WORKER))
        chunks = [
            list(kernels[i:i + chunk_size])
            for i in range(0, len(kernels), chunk_size)
        ]
        offsets = [0] * len(chunks)
        for i in range(1, len(chunks)):
            offsets[i] = offsets[i - 1] + len(chunks[i - 1])

        result_shape = (len(kernels),) + space.shape
        shm = self._create_shared_result(result_shape)
        try:
            space_payload = space.to_dict()
            fault_payloads = [s.to_dict() for s in self._faults]
            payloads = [
                {
                    "kernels": [k.to_dict() for k in chunk],
                    "space": space_payload,
                    "engine": self._engine_name,
                    "mode": self._mode,
                    "strict": strict,
                    "faults": fault_payloads,
                    **(
                        {
                            "shm": {
                                "name": shm.name,
                                "shape": list(result_shape),
                                "offset": offsets[i],
                            }
                        }
                        if shm is not None
                        else {}
                    ),
                }
                for i, chunk in enumerate(chunks)
            ]

            results = self._supervise(
                chunks, payloads, space, progress, strict,
                total=len(kernels),
            )

            perf = np.empty(result_shape, dtype=np.float64)
            shared_view = (
                np.ndarray(result_shape, dtype=np.float64, buffer=shm.buf)
                if shm is not None
                else None
            )
            for i, chunk in enumerate(chunks):
                lo = offsets[i]
                hi = lo + len(chunk)
                chunk_perf = results[i].get("perf")
                if chunk_perf is not None:
                    # Pickle fallback or parent-side serial degradation.
                    perf[lo:hi] = chunk_perf
                else:
                    perf[lo:hi] = shared_view[lo:hi]
        finally:
            if shm is not None:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass

        quarantined: Dict[str, str] = {}
        for i in range(len(chunks)):
            quarantined.update(results[i]["quarantined"])
        records = [KernelRecord.from_full_name(name) for name in names]
        return ScalingDataset(space, records, perf, quarantined=quarantined)

    @staticmethod
    def _create_shared_result(result_shape) -> Optional[
        shared_memory.SharedMemory
    ]:
        """The shared result segment, or ``None`` to pickle rows back."""
        return create_segment(result_shape)

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------

    def _serial_runner(self) -> SweepRunner:
        """An in-process runner with the same engine (and faults)."""
        simulator = GpuSimulator(self._engine_name)
        if self._faults:
            simulator = FaultyEngine(simulator, self._faults)
        return SweepRunner(
            self._engine_name, self._mode, simulator=simulator
        )

    def _make_pool(self):
        """A worker pool, or ``None`` where pools cannot be created
        (e.g. sandboxes that forbid spawning processes)."""
        try:
            # Workers must inherit the parent's shm resource tracker
            # (a private per-worker tracker mistakes the parent's
            # result segment for a leak at exit).
            ensure_tracker()
            return multiprocessing.Pool(self._workers)
        except (OSError, PermissionError, RuntimeError, ValueError):
            return None

    def _supervise(
        self,
        chunks: List[List[Kernel]],
        payloads: List[dict],
        space: ConfigurationSpace,
        progress: Optional[ProgressCallback],
        strict: bool,
        total: int,
    ) -> Dict[int, dict]:
        """Run every chunk to completion, whatever the workers do.

        Chunks are submitted to the pool and collected in order with a
        per-chunk timeout. On a timeout, a crashed worker, or a
        structured worker failure, the pool is torn down and the
        incomplete chunks are resubmitted to a fresh one (completed
        results are kept); a chunk that exhausts its retries runs
        serially in-process. If no pool can be created, everything
        runs serially.
        """
        n_chunks = len(chunks)
        results: Dict[int, dict] = {}
        attempts = [0] * n_chunks
        stats = self._stats

        def tick() -> None:
            if progress is not None:
                done = sum(len(chunks[i]) for i in results)
                progress(done, total)

        def run_serial(index: int) -> None:
            dataset = self._serial_runner().run(
                chunks[index], space, strict=strict
            )
            results[index] = {
                "ok": True,
                "perf": dataset.perf,
                "quarantined": dataset.quarantined,
            }
            tick()

        pool = self._make_pool()
        if pool is None:
            stats.pool_unavailable = True
        try:
            while len(results) < n_chunks:
                remaining = [i for i in range(n_chunks) if i not in results]
                if pool is None:
                    for index in remaining:
                        run_serial(index)
                    break

                pending = {
                    i: pool.apply_async(_sweep_chunk, (payloads[i],))
                    for i in remaining
                }
                failed = None
                for i in sorted(pending):
                    try:
                        outcome = pending[i].get(self._chunk_timeout_s)
                    except multiprocessing.TimeoutError:
                        stats.timeouts += 1
                        stats.worker_errors.append(
                            f"chunk {i} ({chunks[i][0].full_name}, ...): "
                            f"no result within {self._chunk_timeout_s:g}s "
                            "(worker hung or crashed)"
                        )
                        failed = i
                        break
                    except Exception as exc:
                        stats.worker_errors.append(
                            f"chunk {i}: pool failure "
                            f"{type(exc).__name__}: {exc}"
                        )
                        failed = i
                        break
                    if outcome["ok"]:
                        results[i] = outcome
                        tick()
                        continue
                    stats.worker_errors.append(
                        f"chunk {i}: {outcome['error']}"
                        + (f" (kernel {outcome['kernel']})"
                           if outcome.get("kernel") else "")
                    )
                    if strict and outcome.get("kernel"):
                        # A deterministic per-kernel simulation failure:
                        # retrying cannot help, surface it immediately
                        # with the kernel's name.
                        raise SimulationError(
                            outcome["kernel"], outcome["error"]
                        )
                    failed = i
                    break

                if failed is None:
                    continue
                attempts[failed] += 1
                _shutdown(pool)
                pool = None
                if attempts[failed] > self._max_retries:
                    stats.degraded_chunks += 1
                    run_serial(failed)
                else:
                    stats.retries += 1
                    if self._retry_backoff_s > 0:
                        time.sleep(
                            self._retry_backoff_s * attempts[failed]
                        )
                pool = self._make_pool()
                if pool is None:
                    stats.pool_unavailable = True
        finally:
            if pool is not None:
                _shutdown(pool)
        return results


def _shutdown(pool) -> None:
    """Terminate a pool, reaping hung or runaway workers."""
    pool.terminate()
    pool.join()
