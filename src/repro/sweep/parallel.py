"""Multiprocess sweep collection.

The analytical engine completes the full 237,897-point study in a few
seconds on one core, but iteration workflows (ablation sweeps, noise
studies, alternative hardware families) re-run it many times.
:class:`ParallelSweepRunner` partitions the kernel list across worker
processes — simulation is embarrassingly parallel per kernel row — and
reassembles an identical-to-serial dataset (bit-exact: the model is
deterministic and rows are independent).
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.gpu.simulator import Engine
from repro.kernels.kernel import Kernel
from repro.sweep.dataset import KernelRecord, ScalingDataset
from repro.sweep.runner import SweepRunner
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace


def _sweep_chunk(
    payload: Tuple[List[dict], dict, str]
) -> np.ndarray:
    """Worker: sweep a chunk of kernels (serialised as dicts).

    Kernels and the space travel as plain dicts so the worker start
    method (fork or spawn) does not matter.
    """
    kernel_payloads, space_payload, engine_value = payload
    kernels = [Kernel.from_dict(p) for p in kernel_payloads]
    space = ConfigurationSpace.from_dict(space_payload)
    runner = SweepRunner(Engine(engine_value))
    return runner.run(kernels, space).perf


class ParallelSweepRunner:
    """Sweep kernels across a pool of worker processes."""

    def __init__(
        self,
        engine: Engine = Engine.INTERVAL,
        workers: Optional[int] = None,
    ):
        self._engine = engine
        self._workers = workers or max(
            1, multiprocessing.cpu_count() - 1
        )

    @property
    def workers(self) -> int:
        """Worker-process count."""
        return self._workers

    def run(
        self,
        kernels: Sequence[Kernel],
        space: ConfigurationSpace = PAPER_SPACE,
    ) -> ScalingDataset:
        """Collect the dataset; identical to the serial runner's."""
        if not kernels:
            raise DatasetError("cannot sweep an empty kernel list")
        names = [k.full_name for k in kernels]
        if len(set(names)) != len(names):
            raise DatasetError("kernel list contains duplicate full names")

        if self._workers == 1 or len(kernels) < 2 * self._workers:
            return SweepRunner(self._engine).run(kernels, space)

        # NOTE: the reduced space loses the uarch on serialisation;
        # restrict parallel runs to the default microarchitecture.
        if space.uarch is not PAPER_SPACE.uarch:
            return SweepRunner(self._engine).run(kernels, space)

        chunk_size = -(-len(kernels) // self._workers)
        chunks = [
            list(kernels[i:i + chunk_size])
            for i in range(0, len(kernels), chunk_size)
        ]
        payloads = [
            (
                [k.to_dict() for k in chunk],
                space.to_dict(),
                self._engine.value,
            )
            for chunk in chunks
        ]
        with multiprocessing.Pool(self._workers) as pool:
            parts = pool.map(_sweep_chunk, payloads)

        perf = np.concatenate(parts, axis=0)
        records = [KernelRecord.from_full_name(name) for name in names]
        return ScalingDataset(space, records, perf)
