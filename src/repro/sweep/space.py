"""The swept configuration space: 11 x 9 x 9 = 891 hardware points.

Mirrors the paper's experimental design: 11 compute-unit settings
(4..44 in steps of 4, an 11x range), 9 engine-clock states (200..1000
MHz, 5x), and 9 memory-clock states (150..1250 MHz, 8.33x bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import ConfigurationError
from repro.gpu.config import HAWAII_UARCH, HardwareConfig, Microarchitecture
from repro.gpu.dvfs import CU_SETTINGS, ENGINE_DOMAIN, MEMORY_DOMAIN


@dataclass(frozen=True)
class ConfigurationSpace:
    """A full-factorial grid over (CU count, engine MHz, memory MHz)."""

    cu_counts: Tuple[int, ...] = CU_SETTINGS
    engine_mhz: Tuple[float, ...] = ENGINE_DOMAIN.states_mhz
    memory_mhz: Tuple[float, ...] = MEMORY_DOMAIN.states_mhz
    uarch: Microarchitecture = HAWAII_UARCH

    def __post_init__(self) -> None:
        for axis_name, axis in (
            ("cu_counts", self.cu_counts),
            ("engine_mhz", self.engine_mhz),
            ("memory_mhz", self.memory_mhz),
        ):
            if not axis:
                raise ConfigurationError(f"axis {axis_name} is empty")
            if tuple(sorted(axis)) != tuple(axis):
                raise ConfigurationError(
                    f"axis {axis_name} must be sorted ascending"
                )
            if len(set(axis)) != len(axis):
                raise ConfigurationError(
                    f"axis {axis_name} has duplicate values"
                )

    # ------------------------------------------------------------------
    # Shape and indexing
    # ------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int, int]:
        """(num CU settings, num engine states, num memory states)."""
        return (
            len(self.cu_counts),
            len(self.engine_mhz),
            len(self.memory_mhz),
        )

    @property
    def size(self) -> int:
        """Total number of configurations (891 for the paper's grid)."""
        n_cu, n_eng, n_mem = self.shape
        return n_cu * n_eng * n_mem

    def config(
        self, cu_idx: int, eng_idx: int, mem_idx: int
    ) -> HardwareConfig:
        """The configuration at one grid coordinate."""
        return HardwareConfig(
            cu_count=self.cu_counts[cu_idx],
            engine_mhz=self.engine_mhz[eng_idx],
            memory_mhz=self.memory_mhz[mem_idx],
            uarch=self.uarch,
        )

    def flat_index(self, cu_idx: int, eng_idx: int, mem_idx: int) -> int:
        """Row-major flat index of a grid coordinate."""
        n_cu, n_eng, n_mem = self.shape
        if not (0 <= cu_idx < n_cu and 0 <= eng_idx < n_eng
                and 0 <= mem_idx < n_mem):
            raise ConfigurationError(
                f"index ({cu_idx}, {eng_idx}, {mem_idx}) outside {self.shape}"
            )
        return (cu_idx * n_eng + eng_idx) * n_mem + mem_idx

    def unflatten(self, flat: int) -> Tuple[int, int, int]:
        """Grid coordinate of a row-major flat index."""
        if not 0 <= flat < self.size:
            raise ConfigurationError(
                f"flat index {flat} outside [0, {self.size})"
            )
        n_cu, n_eng, n_mem = self.shape
        cu_idx, rest = divmod(flat, n_eng * n_mem)
        eng_idx, mem_idx = divmod(rest, n_mem)
        return cu_idx, eng_idx, mem_idx

    def __iter__(self) -> Iterator[HardwareConfig]:
        """Iterate configurations in row-major (flat) order."""
        for cu_idx in range(len(self.cu_counts)):
            for eng_idx in range(len(self.engine_mhz)):
                for mem_idx in range(len(self.memory_mhz)):
                    yield self.config(cu_idx, eng_idx, mem_idx)

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # Named corners
    # ------------------------------------------------------------------

    @property
    def min_config(self) -> HardwareConfig:
        """The smallest corner (embedded-class)."""
        return self.config(0, 0, 0)

    @property
    def max_config(self) -> HardwareConfig:
        """The largest corner (flagship discrete card)."""
        n_cu, n_eng, n_mem = self.shape
        return self.config(n_cu - 1, n_eng - 1, n_mem - 1)

    @property
    def axis_ranges(self) -> Tuple[float, float, float]:
        """Dynamic range of each knob (11x, 5x, 8.33x on the paper grid)."""
        return (
            self.cu_counts[-1] / self.cu_counts[0],
            self.engine_mhz[-1] / self.engine_mhz[0],
            self.memory_mhz[-1] / self.memory_mhz[0],
        )

    def to_dict(self) -> dict:
        """Serialise axis values and the microarchitecture.

        Round-trips through :meth:`from_dict`, including non-default
        microarchitectures, so alternative-hardware-family sweeps can
        cross process boundaries (JSON-compatible).
        """
        return {
            "cu_counts": list(self.cu_counts),
            "engine_mhz": list(self.engine_mhz),
            "memory_mhz": list(self.memory_mhz),
            "uarch": self.uarch.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ConfigurationSpace":
        """Reconstruct from :meth:`to_dict` output.

        Payloads written before the microarchitecture was serialised
        (no ``uarch`` key) load with the default Hawaii-class uarch.
        """
        uarch = (
            Microarchitecture.from_dict(payload["uarch"])
            if "uarch" in payload
            else HAWAII_UARCH
        )
        return cls(
            cu_counts=tuple(int(c) for c in payload["cu_counts"]),
            engine_mhz=tuple(float(f) for f in payload["engine_mhz"]),
            memory_mhz=tuple(float(f) for f in payload["memory_mhz"]),
            uarch=uarch,
        )


#: The paper's 891-configuration grid.
PAPER_SPACE = ConfigurationSpace()


def reduced_space(
    cu_step: int = 2, eng_step: int = 2, mem_step: int = 2
) -> ConfigurationSpace:
    """A strided subgrid for fast tests (keeps both endpoints per axis).

    ``reduced_space(2, 2, 2)`` yields a 6 x 5 x 5 grid — the same axis
    extremes, one eighth the points.
    """
    def stride(axis, step):
        picked = list(axis[::step])
        if picked[-1] != axis[-1]:
            picked.append(axis[-1])
        return tuple(picked)

    return ConfigurationSpace(
        cu_counts=stride(CU_SETTINGS, cu_step),
        engine_mhz=stride(ENGINE_DOMAIN.states_mhz, eng_step),
        memory_mhz=stride(MEMORY_DOMAIN.states_mhz, mem_step),
    )
