"""Measurement-noise model for sweep collection.

The original study timed real hardware, where run-to-run variance of a
few percent is normal (clock ramping, OS jitter, DRAM refresh phase).
Our model substrate is deterministic, so robustness of the taxonomy to
measurement noise must be established explicitly: this module injects
deterministic, seeded multiplicative log-normal noise into collected
datasets, and the ``benchmarks/test_ablation_noise.py`` ablation
asserts that classification labels are stable at realistic noise
levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.sweep.dataset import ScalingDataset

#: Run-to-run variance typical of careful wall-clock GPU measurement.
TYPICAL_SIGMA = 0.02


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative log-normal measurement noise.

    Each measured performance value is multiplied by
    ``exp(N(0, sigma))``; *sigma* ~ 0.02 corresponds to ~2% run-to-run
    standard deviation. The seed makes perturbed datasets reproducible.
    """

    sigma: float = TYPICAL_SIGMA
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise DatasetError(f"sigma must be >= 0, got {self.sigma}")

    def apply(self, dataset: ScalingDataset) -> ScalingDataset:
        """A new dataset with noise applied to every measurement."""
        if self.sigma == 0.0:
            return dataset
        rng = np.random.default_rng(self.seed)
        factors = np.exp(
            rng.normal(0.0, self.sigma, size=dataset.perf.shape)
        )
        return ScalingDataset(
            dataset.space,
            dataset.kernel_records,
            dataset.perf * factors,
            quarantined=dataset.quarantined,
        )


def perturb(
    dataset: ScalingDataset,
    sigma: float = TYPICAL_SIGMA,
    seed: int = 0,
) -> ScalingDataset:
    """Convenience wrapper: one-call noisy copy of *dataset*."""
    return NoiseModel(sigma=sigma, seed=seed).apply(dataset)
