"""Sweep runner: kernels x configurations -> :class:`ScalingDataset`.

Replaces the paper's measurement campaign (wall-clock timing of real
kernels under firmware CU-fusing/DVFS control) with the performance
model. The full paper-scale sweep is 267 x 891 = 237,897 simulations;
the batch interval engine evaluates each kernel's whole 891-point grid
as one set of NumPy broadcasts (see ``repro/gpu/interval_batch.py``),
completing the study in well under a second. ``GridMode.SCALAR``
retains the original one-call-per-point path as a reference oracle.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.gpu.simulator import Engine, GpuSimulator, GridMode
from repro.kernels.kernel import Kernel
from repro.sweep.dataset import KernelRecord, ScalingDataset
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace

ProgressCallback = Callable[[int, int], None]


class SweepRunner:
    """Collect the scaling dataset for a set of kernels."""

    def __init__(
        self,
        engine: Engine = Engine.INTERVAL,
        grid_mode: GridMode = GridMode.BATCH,
    ):
        self._simulator = GpuSimulator(engine)
        self._grid_mode = grid_mode

    @property
    def simulator(self) -> GpuSimulator:
        """The simulator used for every point."""
        return self._simulator

    @property
    def grid_mode(self) -> GridMode:
        """How each kernel's configuration grid is evaluated."""
        return self._grid_mode

    def run(
        self,
        kernels: Sequence[Kernel],
        space: ConfigurationSpace = PAPER_SPACE,
        progress: Optional[ProgressCallback] = None,
    ) -> ScalingDataset:
        """Simulate every kernel at every configuration.

        *progress*, when given, is called after each kernel row with
        ``(rows_done, rows_total)``.
        """
        if not kernels:
            raise DatasetError("cannot sweep an empty kernel list")
        names = [k.full_name for k in kernels]
        if len(set(names)) != len(names):
            raise DatasetError("kernel list contains duplicate full names")

        n_cu, n_eng, n_mem = space.shape
        perf = np.empty((len(kernels), n_cu, n_eng, n_mem), dtype=np.float64)

        for row, kernel in enumerate(kernels):
            grid = self._simulator.simulate_grid(
                kernel, space, mode=self._grid_mode
            )
            perf[row] = grid.items_per_second
            if progress is not None:
                progress(row + 1, len(kernels))

        records = [KernelRecord.from_full_name(name) for name in names]
        return ScalingDataset(space, records, perf)


def collect_paper_dataset(
    engine: Engine = Engine.INTERVAL,
    space: ConfigurationSpace = PAPER_SPACE,
    progress: Optional[ProgressCallback] = None,
    grid_mode: GridMode = GridMode.BATCH,
) -> ScalingDataset:
    """Run the full study: all 267 catalog kernels over the 891 configs."""
    from repro.suites import all_kernels

    return SweepRunner(engine, grid_mode).run(all_kernels(), space, progress)
