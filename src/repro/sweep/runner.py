"""Sweep runner: kernels x configurations -> :class:`ScalingDataset`.

Replaces the paper's measurement campaign (wall-clock timing of real
kernels under firmware CU-fusing/DVFS control) with the performance
model. The full paper-scale sweep is 267 x 891 = 237,897 simulations;
the batch interval engine evaluates each kernel's whole 891-point grid
as one set of NumPy broadcasts (see ``repro/gpu/interval_batch.py``),
completing the study in well under a second, and ``grid_mode="study"``
goes one axis further — the entire kernel catalog in a single
(kernel, cu, eng, mem) broadcast, tens of milliseconds for the full
study. ``grid_mode="scalar"`` retains the original one-call-per-point
path as a reference oracle; simulators whose capability flags rule out
kernel-axis batching (the event engine, fault-injection wrappers,
point-only registrations) transparently fall back to the per-kernel
loop, preserving quarantine semantics.

Fault isolation is per kernel row: with ``strict=False`` a kernel whose
simulation raises — or silently produces non-finite or non-positive
throughput — is *quarantined* (its row NaN-filled and the cause
recorded on the dataset) instead of aborting the whole sweep. The
default ``strict=True`` keeps fail-fast semantics, surfacing a
structured :class:`~repro.errors.SimulationError` that names the
offending kernel.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.errors import DatasetError, SimulationError
from repro.gpu.engine import (
    Engine,
    EngineSpec,
    GridMode,
    GridModeSpec,
    normalize_engine,
    normalize_grid_mode,
)
from repro.gpu.simulator import GpuSimulator
from repro.kernels.kernel import Kernel
from repro.sweep.dataset import KernelRecord, ScalingDataset
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace

ProgressCallback = Callable[[int, int], None]


def check_kernel_list(kernels: Sequence[Kernel]) -> None:
    """Reject empty or duplicate-name kernel lists (shared precondition)."""
    if not kernels:
        raise DatasetError("cannot sweep an empty kernel list")
    names = [k.full_name for k in kernels]
    if len(set(names)) != len(names):
        raise DatasetError("kernel list contains duplicate full names")


class SweepRunner:
    """Collect the scaling dataset for a set of kernels.

    *engine* is any registered engine name (or legacy :class:`Engine`
    member); *simulator*, when given, replaces the internally
    constructed :class:`GpuSimulator` — any object with the same
    ``simulate_grid`` signature works, which is how the fault-injection
    test engine (:class:`~repro.sweep.faults.FaultyEngine`) slots in.
    The runner negotiates capabilities rather than inspecting engine
    identity: a study request degrades to per-kernel grids when the
    simulator declares (or reveals) no study support, and the facade
    degrades grids to point loops below that.
    """

    def __init__(
        self,
        engine: EngineSpec = "interval",
        grid_mode: GridModeSpec = "batch",
        simulator=None,
    ):
        self._engine_name = normalize_engine(engine)
        self._simulator = (
            simulator
            if simulator is not None
            else GpuSimulator(self._engine_name)
        )
        self._mode = normalize_grid_mode(grid_mode)

    @property
    def simulator(self):
        """The simulator used for every point."""
        return self._simulator

    @property
    def engine(self):
        """The engine selection (legacy enum where one exists)."""
        try:
            return Engine(self._engine_name)
        except ValueError:
            return self._engine_name

    @property
    def engine_name(self) -> str:
        """Registry name of the selected engine."""
        return self._engine_name

    @property
    def grid_mode(self):
        """How each kernel's grid is evaluated (legacy enum alias)."""
        return GridMode(self._mode)

    @property
    def grid_mode_name(self) -> str:
        """Canonical grid-mode name (``batch``/``scalar``/``study``)."""
        return self._mode

    def run(
        self,
        kernels: Sequence[Kernel],
        space: ConfigurationSpace = PAPER_SPACE,
        progress: Optional[ProgressCallback] = None,
        strict: bool = True,
    ) -> ScalingDataset:
        """Simulate every kernel at every configuration.

        *progress*, when given, is called after each kernel row with
        ``(rows_done, rows_total)``. With ``strict=False``, failing
        kernels are quarantined on the returned dataset instead of
        aborting the sweep.
        """
        check_kernel_list(kernels)
        names = [k.full_name for k in kernels]

        n_cu, n_eng, n_mem = space.shape
        perf = np.empty((len(kernels), n_cu, n_eng, n_mem), dtype=np.float64)
        quarantined: Dict[str, str] = {}

        if self._mode == "study":
            study_perf = self._try_study(kernels, space)
            if study_perf is not None:
                for row, kernel in enumerate(kernels):
                    values = study_perf[row]
                    reason = self._row_defect(values, space)
                    if reason is None:
                        perf[row] = values
                    else:
                        error = SimulationError(kernel.full_name, reason)
                        if strict:
                            raise error
                        perf[row] = np.nan
                        quarantined[kernel.full_name] = error.reason
                    if progress is not None:
                        progress(row + 1, len(kernels))
                records = [
                    KernelRecord.from_full_name(name) for name in names
                ]
                return ScalingDataset(
                    space, records, perf, quarantined=quarantined
                )
            # Whole-study evaluation failed or is unsupported by this
            # simulator: fall through to the per-kernel loop, which
            # attributes and quarantines failures kernel by kernel.

        for row, kernel in enumerate(kernels):
            try:
                perf[row] = self._simulate_row(kernel, space)
            except Exception as exc:
                error = self._as_simulation_error(kernel, exc)
                if strict:
                    raise error
                perf[row] = np.nan
                quarantined[kernel.full_name] = error.reason
            if progress is not None:
                progress(row + 1, len(kernels))

        records = [KernelRecord.from_full_name(name) for name in names]
        return ScalingDataset(space, records, perf, quarantined=quarantined)

    def _try_study(
        self, kernels: Sequence[Kernel], space: ConfigurationSpace
    ) -> Optional[np.ndarray]:
        """One whole-study evaluation, or ``None`` to fall back.

        Capability negotiation, not identity inspection: a simulator
        that declares ``supports_study = False`` (the event engine via
        the facade, fault-injection wrappers, point-only
        registrations), lacks ``simulate_study`` entirely, or fails the
        whole-study call returns ``None`` — the per-kernel loop then
        repeats the work with full per-kernel fault attribution, which
        is what quarantine needs.
        """
        if getattr(self._simulator, "supports_study", None) is False:
            return None
        simulate_study = getattr(self._simulator, "simulate_study", None)
        if simulate_study is None:
            return None
        try:
            result = simulate_study(kernels, space)
        except Exception:
            return None
        values = np.asarray(result.items_per_second, dtype=np.float64)
        if values.shape != (len(kernels),) + space.shape:
            return None
        return values

    @staticmethod
    def _row_defect(
        values: np.ndarray, space: ConfigurationSpace
    ) -> Optional[str]:
        """Why one kernel's throughput row is unusable, if it is."""
        if values.shape != space.shape:
            return (
                f"engine returned shape {values.shape}, "
                f"expected {space.shape}"
            )
        if not np.all(np.isfinite(values)):
            return "engine produced non-finite throughput"
        if np.any(values <= 0):
            return "engine produced non-positive throughput"
        return None

    def _simulate_row(
        self, kernel: Kernel, space: ConfigurationSpace
    ) -> np.ndarray:
        """One kernel's grid, checked for silent data corruption."""
        grid = self._simulator.simulate_grid(
            kernel, space, mode=self._mode
        )
        values = np.asarray(grid.items_per_second, dtype=np.float64)
        reason = self._row_defect(values, space)
        if reason is not None:
            raise SimulationError(kernel.full_name, reason)
        return values

    @staticmethod
    def _as_simulation_error(
        kernel: Kernel, exc: Exception
    ) -> SimulationError:
        if isinstance(exc, SimulationError):
            return exc
        error = SimulationError(
            kernel.full_name, f"{type(exc).__name__}: {exc}"
        )
        error.__cause__ = exc
        return error


def collect_paper_dataset(
    engine: EngineSpec = "interval",
    space: ConfigurationSpace = PAPER_SPACE,
    progress: Optional[ProgressCallback] = None,
    grid_mode: GridModeSpec = "batch",
    strict: bool = True,
) -> ScalingDataset:
    """Run the full study: all 267 catalog kernels over the 891 configs."""
    from repro.suites import all_kernels

    return SweepRunner(engine, grid_mode).run(
        all_kernels(), space, progress, strict=strict
    )
