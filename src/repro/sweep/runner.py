"""Sweep runner: kernels x configurations -> :class:`ScalingDataset`.

Replaces the paper's measurement campaign (wall-clock timing of real
kernels under firmware CU-fusing/DVFS control) with the performance
model. The full paper-scale sweep is 267 x 891 = 237,897 simulations;
the analytical engine completes it in seconds.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.gpu.simulator import Engine, GpuSimulator
from repro.kernels.kernel import Kernel
from repro.sweep.dataset import KernelRecord, ScalingDataset
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace

ProgressCallback = Callable[[int, int], None]


class SweepRunner:
    """Collect the scaling dataset for a set of kernels."""

    def __init__(self, engine: Engine = Engine.INTERVAL):
        self._simulator = GpuSimulator(engine)

    @property
    def simulator(self) -> GpuSimulator:
        """The simulator used for every point."""
        return self._simulator

    def run(
        self,
        kernels: Sequence[Kernel],
        space: ConfigurationSpace = PAPER_SPACE,
        progress: Optional[ProgressCallback] = None,
    ) -> ScalingDataset:
        """Simulate every kernel at every configuration.

        *progress*, when given, is called after each kernel row with
        ``(rows_done, rows_total)``.
        """
        if not kernels:
            raise DatasetError("cannot sweep an empty kernel list")
        names = [k.full_name for k in kernels]
        if len(set(names)) != len(names):
            raise DatasetError("kernel list contains duplicate full names")

        n_cu, n_eng, n_mem = space.shape
        perf = np.empty((len(kernels), n_cu, n_eng, n_mem), dtype=np.float64)

        # Configs vary along the innermost loops so per-kernel state
        # (occupancy, geometry) is computed once per row by the engine's
        # own caching; the grid itself is materialised once.
        configs = [
            [
                [space.config(c, e, m) for m in range(n_mem)]
                for e in range(n_eng)
            ]
            for c in range(n_cu)
        ]

        simulate = self._simulator.simulate
        for row, kernel in enumerate(kernels):
            for c in range(n_cu):
                for e in range(n_eng):
                    row_configs = configs[c][e]
                    for m in range(n_mem):
                        result = simulate(kernel, row_configs[m])
                        perf[row, c, e, m] = result.items_per_second
            if progress is not None:
                progress(row + 1, len(kernels))

        records = [KernelRecord.from_full_name(name) for name in names]
        return ScalingDataset(space, records, perf)


def collect_paper_dataset(
    engine: Engine = Engine.INTERVAL,
    space: ConfigurationSpace = PAPER_SPACE,
    progress: Optional[ProgressCallback] = None,
) -> ScalingDataset:
    """Run the full study: all 267 catalog kernels over the 891 configs."""
    from repro.suites import all_kernels

    return SweepRunner(engine).run(all_kernels(), space, progress)
